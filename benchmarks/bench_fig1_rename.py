"""Figure 1 — the same rename syscall under three recorders.

Regenerates the paper's opening comparison: three structurally different
graphs for one operation.  The benchmark times the full four-stage
pipeline per tool.
"""

import pytest

from repro import ProvMark
from repro.graph.stats import summarize

from conftest import emit

TOOLS = ("spade", "opus", "camflow")


@pytest.mark.parametrize("tool", TOOLS)
def test_fig1_rename(benchmark, tool):
    provmark = ProvMark._internal(tool=tool, seed=1)
    result = benchmark.pedantic(
        provmark.run_benchmark, args=("rename",), rounds=1, iterations=1
    )
    assert result.classification.value == "ok"
    summary = summarize(result.target_graph)
    emit(f"fig1_rename_{tool}", [
        f"tool: {tool}",
        f"structure: {summary.describe()}",
        f"node labels: {sorted(n.label for n in result.target_graph.nodes())}",
        f"edge labels: {sorted(e.label for e in result.target_graph.edges())}",
    ])


def test_fig1_structures_differ(benchmark):
    """The point of Figure 1: three tools, three different shapes."""
    def run():
        return {
            tool: ProvMark._internal(tool=tool, seed=1).run_benchmark("rename")
            for tool in TOOLS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    signatures = {
        tool: result.target_graph.structural_signature()
        for tool, result in results.items()
    }
    assert len(set(signatures.values())) == 3
