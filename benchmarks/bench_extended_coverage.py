"""Extended coverage — the introduction's socket blind spot, quantified.

Beyond Table 2: local-socket benchmarks (socketpair/send/recv) and
multi-syscall sequences.  The paper's §1 motivation — recorders that miss
local sockets allow covert channels — becomes a measurable coverage row.
"""

import pytest

from repro import ProvMark
from repro.analysis.coverage import coverage_for
from repro.suite.extended import EXTENDED_BENCHMARKS, SOCKET_BENCHMARKS

from conftest import emit

TOOLS = ("spade", "opus", "camflow")


def test_extended_coverage(benchmark):
    def run_all():
        results = []
        for tool in TOOLS:
            provmark = ProvMark._internal(tool=tool, seed=6)
            for name in EXTENDED_BENCHMARKS:
                results.append(provmark.run_benchmark(name))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    reports = coverage_for(results)
    rows = []
    for tool in TOOLS:
        report = reports[tool]
        rows.append(
            f"{tool:<8} records: {', '.join(sorted(report.recorded)) or '-'}"
        )
        rows.append(
            f"{'':<8} blind:   {', '.join(sorted(report.blind_spots)) or '-'}"
        )
    emit("extended_coverage", rows)

    # The intro's claim: only the LSM vantage sees the socket channel.
    socket_names = set(SOCKET_BENCHMARKS)
    assert socket_names <= set(reports["camflow"].recorded)
    assert socket_names <= set(reports["spade"].blind_spots)
    assert socket_names <= set(reports["opus"].blind_spots)


@pytest.mark.parametrize("tool", TOOLS)
def test_socket_benchmark_cost(benchmark, tool):
    provmark = ProvMark._internal(tool=tool, seed=6)
    result = benchmark.pedantic(
        provmark.run_benchmark, args=("send",), rounds=1, iterations=1
    )
    expected, _ = SOCKET_BENCHMARKS["send"].expectation(tool)
    assert result.classification.value == expected
