"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper.  The
regenerated rows are printed (run with ``-s`` to see them) and collected
into ``benchmarks/output/`` so EXPERIMENTS.md can reference them.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def emit(name: str, lines: Iterable[str]) -> None:
    """Print regenerated rows and persist them under benchmarks/output/."""
    body = "\n".join(lines)
    print(f"\n=== {name} ===\n{body}")
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(body + "\n")
