"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper.  The
regenerated rows are printed (run with ``-s`` to see them) and collected
into ``benchmarks/output/`` so EXPERIMENTS.md can reference them.

Benchmarks can additionally call :func:`record_bench` with structured
payloads (per-stage timings, solver step counts, cache/store hits);
everything recorded during a session is consolidated into a per-PR file
(``benchmarks/output/BENCH_PR10.json`` currently; earlier snapshots stay
in ``BENCH_PR1.json`` through ``BENCH_PR7.json``) at session end, so
successive PRs leave a performance trajectory.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable

OUTPUT_DIR = Path(__file__).resolve().parent / "output"
CONSOLIDATED_NAME = "BENCH_PR10.json"

_recorded: Dict[str, object] = {}


def emit(name: str, lines: Iterable[str]) -> None:
    """Print regenerated rows and persist them under benchmarks/output/."""
    body = "\n".join(lines)
    print(f"\n=== {name} ===\n{body}")
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(body + "\n")


def record_bench(name: str, payload: object) -> None:
    """Queue a structured payload for the consolidated BENCH_PR1.json."""
    _recorded[name] = payload


def timings_payload(timings) -> Dict[str, object]:
    """A JSON-ready view of one run's StageTimings incl. solver counters."""
    payload: Dict[str, object] = dict(timings.as_row())
    payload["processing"] = timings.processing
    payload.update(timings.solver_row())
    return payload


def pytest_sessionfinish(session, exitstatus) -> None:
    if not _recorded:
        return
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / CONSOLIDATED_NAME
    existing: Dict[str, object] = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError:
            existing = {}
    existing.update(_recorded)
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
    print(f"\nconsolidated benchmark record: {path}")
