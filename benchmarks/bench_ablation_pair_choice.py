"""Ablation — representative-pair choice in generalization (paper §3.4).

The paper: "we choose a pair of graphs whose size is smallest.  Picking
the two largest graphs also seems to work; the choice seems arbitrary.
However, picking the largest background graph and the smallest foreground
graph leads to failure if the extra background structure is not found in
the foreground, while making the opposite choice leads to extra structure
being found in the difference."

We reproduce all four combinations under CamFlow recording jitter, which
creates both small (clean) and large (jittered, extra machine node)
similarity classes for each program variant.
"""

import pytest

from repro import PipelineConfig, ProvMark
from repro.capture.camflow import CamFlowCapture, CamFlowConfig

from conftest import emit

#: Seed chosen so that, with jitter=0.5 and 6 trials, both program
#: variants have a clean pair AND a jittered pair available (so the
#: smallest/largest choice is real for both).
SEED = 0


def run_policy(fg_policy: str, bg_policy: str):
    capture = CamFlowCapture(CamFlowConfig(structural_jitter=0.5))
    provmark = ProvMark._internal(
        capture=capture,
        config=PipelineConfig(
            tool="camflow", seed=SEED, trials=6, filtergraphs=False,
            fg_pair_policy=fg_policy, bg_pair_policy=bg_policy,
        ),
    )
    return provmark.run_benchmark("open")


@pytest.mark.parametrize("policy", ["smallest", "largest"])
def test_consistent_policies_work(benchmark, policy):
    result = benchmark.pedantic(
        run_policy, args=(policy, policy), rounds=1, iterations=1
    )
    assert result.classification.value == "ok"


def test_mismatched_policies_misbehave(benchmark):
    def all_combos():
        return {
            (fg, bg): run_policy(fg, bg)
            for fg in ("smallest", "largest")
            for bg in ("smallest", "largest")
        }

    results = benchmark.pedantic(all_combos, rounds=1, iterations=1)
    rows = []
    for (fg, bg), result in results.items():
        extra = [
            node.label for node in result.target_graph.nodes()
            if node.label == "machine"
            or node.props.get("was") == "machine"
        ]
        rows.append(
            f"fg={fg:<8} bg={bg:<8} -> {result.classification.value:<6} "
            f"target size {result.target_graph.size}"
            + (f", {len(extra)} spurious machine element(s)" if extra else "")
            + (f"  [{result.error[:48]}]" if result.error else "")
        )
    emit("ablation_pair_choice", rows)

    # Consistent choices: both fine.
    assert results[("smallest", "smallest")].classification.value == "ok"
    assert results[("largest", "largest")].classification.value == "ok"
    # Largest bg + smallest fg: extra background structure cannot embed.
    assert results[("smallest", "largest")].classification.value == "failed"
    # Smallest bg + largest fg: extra structure leaks into the difference.
    leaked = results[("largest", "smallest")]
    assert leaked.classification.value == "ok"
    assert leaked.target_graph.size > (
        results[("smallest", "smallest")].target_graph.size
    )
