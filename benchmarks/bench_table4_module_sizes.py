"""Table 4 — per-tool recording/transformation module sizes (LoC).

The paper's point: supporting a tool takes only a small recording module
plus a format transformer (none over ~200 lines of Python in the
original; our richer simulated recorders land in the same ballpark).
"""

from repro.analysis.loc import generate_table4

from conftest import emit


def test_table4_module_sizes(benchmark):
    table = benchmark(generate_table4)
    emit("table4_module_sizes", table.render().splitlines())
    for tool in ("spade", "opus", "camflow"):
        # Same order of magnitude as the paper's 118-192 (recording) and
        # 74-128 (transformation) lines.
        assert 100 <= table.recording[tool] <= 600
        assert 40 <= table.transformation[tool] <= 300
