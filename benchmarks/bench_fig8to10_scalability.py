"""Figures 8-10 — scalability with target-sequence length.

scale1/2/4/8 repeat a creat+unlink pair 1/2/4/8 times.  The paper's
observations:
* SPADE processing grows slowly, roughly doubling by scale8 (Figure 8);
* OPUS is dominated by the flat Neo4j transformation cost (Figure 9);
* CamFlow processing grows the fastest with scale (Figure 10).
"""

import pytest

from repro import ProvMark

from conftest import emit, record_bench, timings_payload

SCALES = ("scale1", "scale2", "scale4", "scale8")
#: beyond the paper: the fast-path engine keeps these within budget;
#: the registry's slow-tagged scale128/scale512 rows prove the next tier.
EXTENDED_SCALES = SCALES + ("scale16", "scale32", "scale128", "scale512")
FIGURES = {"spade": "fig8", "opus": "fig9", "camflow": "fig10"}


def run_column(tool, scales=SCALES):
    provmark = ProvMark._internal(tool=tool, seed=5)
    timings = {}
    for name in scales:
        result = provmark.run_benchmark(name)
        assert result.classification.value == "ok"
        timings[name] = result.timings
    return timings


@pytest.mark.parametrize("tool", list(FIGURES))
def test_scalability(benchmark, tool):
    timings = benchmark.pedantic(
        run_column, args=(tool, EXTENDED_SCALES), rounds=1, iterations=1
    )
    rows = [f"{'case':<8} {'transform':>10} {'generalize':>11} {'compare':>9} {'total':>9} {'steps':>7} {'comps':>6}"]
    for name, timing in timings.items():
        rows.append(
            f"{name:<8} {timing.transformation:>9.4f}s "
            f"{timing.generalization:>10.4f}s {timing.comparison:>8.4f}s "
            f"{timing.processing:>8.4f}s {timing.solver_steps:>7} "
            f"{timing.decomposed_components:>6}"
        )
        record_bench(
            f"fig8to10/{tool}/{name}", timings_payload(timing)
        )
    emit(f"{FIGURES[tool]}_scalability_{tool}", rows)
    # Processing grows with the scale factor for every tool.
    totals = [timings[name].processing for name in SCALES]
    assert totals[-1] > totals[0]
    # CamFlow's minimizing search decomposes all the way up: solver steps
    # stay ~linear from scale128 to scale512 (4x scale, well under the
    # ~16x a quadratic search would show).
    if tool == "camflow":
        ratio = (
            timings["scale512"].solver_steps
            / timings["scale128"].solver_steps
        )
        assert ratio < 8, f"superlinear solver growth: {ratio:.1f}x"
        assert timings["scale512"].decomposed_components > 0


def test_scalability_shapes(benchmark):
    def collect():
        return {tool: run_column(tool) for tool in FIGURES}

    data = benchmark.pedantic(collect, rounds=1, iterations=1)
    # Figure 9: OPUS's curve is flattened by the constant DB cost — the
    # scale8/scale1 ratio is the smallest of the three tools.
    ratios = {
        tool: timings["scale8"].processing / timings["scale1"].processing
        for tool, timings in data.items()
    }
    emit("fig8to10_ratios", [
        f"{tool}: scale8/scale1 processing ratio = {ratio:.1f}x"
        for tool, ratio in ratios.items()
    ])
    assert ratios["opus"] == min(ratios.values())
    # Figures 8/10: matching cost rises clearly with target size.
    assert ratios["camflow"] > 1.5
    assert ratios["spade"] > 1.2
