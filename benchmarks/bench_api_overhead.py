"""Façade and HTTP dispatch overhead vs direct pipeline calls (PR 3).

The typed API must be a zero-cost abstraction on the hot path: per-run
overhead of ``BenchmarkService.run(RunRequest)`` over driving the
pipeline driver directly must stay under 5% warm (request validation +
envelope construction only).  The HTTP round trip (``POST /v1/runs``
with ``wait=true`` against the embedded server) is measured alongside —
it adds serialization and a socket, so it is reported, not bounded.

Warm means a populated artifact store: every stage restores instead of
recomputing, which makes the pipeline as fast as it ever gets and the
measured ratio the *worst case* for dispatch overhead.  The HTTP
service rejects client-supplied ``store_path`` by design, so its leg is
measured storeless against a storeless direct baseline.  Results land
in ``benchmarks/output/BENCH_PR3.json``.
"""

import json
import shutil
import statistics
import tempfile
import threading
import time
import urllib.request

from repro.api import BenchmarkService, RunRequest
from repro.api.http import make_server
from repro.core.pipeline import PipelineConfig, ProvMark

from conftest import emit, record_bench

BENCHMARK = "open"
SEED = 5
REPEATS = 40
OVERHEAD_BUDGET = 0.05  # façade must stay within 5% of direct, warm


def measure(fn, repeats=REPEATS):
    """Median seconds per call after one warmup call."""
    fn()
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def test_facade_and_http_overhead():
    store = tempfile.mkdtemp(prefix="provmark-api-bench-")
    try:
        request = RunRequest(
            benchmark=BENCHMARK, tool="spade", seed=SEED, store_path=store
        )
        config = PipelineConfig(tool="spade", seed=SEED, store_path=store)
        driver = ProvMark._internal(config=config)
        service = BenchmarkService()

        driver.run_benchmark(BENCHMARK)  # populate the store once

        direct = measure(lambda: driver.run_benchmark(BENCHMARK))
        facade = measure(lambda: service.run(request))

        # HTTP leg: clients cannot pass store_path, so compare a
        # storeless POST against a storeless direct run.
        nostore_config = PipelineConfig(tool="spade", seed=SEED)
        nostore_driver = ProvMark._internal(config=nostore_config)
        direct_nostore = measure(
            lambda: nostore_driver.run_benchmark(BENCHMARK)
        )
        server = make_server(service, port=0)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        body = RunRequest(
            benchmark=BENCHMARK, tool="spade", seed=SEED
        ).to_payload()
        body["wait"] = True
        blob = json.dumps(body).encode("utf-8")

        def over_http():
            http_request = urllib.request.Request(
                f"http://{host}:{port}/v1/runs", data=blob,
                headers={"Content-Type": "application/json"}, method="POST",
            )
            with urllib.request.urlopen(http_request, timeout=60) as resp:
                resp.read()

        http = measure(over_http)
        server.shutdown()
        server.server_close()
        service.close()

        facade_overhead = facade / direct - 1.0
        http_overhead = http / direct_nostore - 1.0
        lines = [
            f"direct pipeline (warm store) : {direct * 1e3:9.3f} ms/run",
            f"BenchmarkService.run         : {facade * 1e3:9.3f} ms/run "
            f"({facade_overhead:+.1%})",
            f"direct pipeline (no store)   : {direct_nostore * 1e3:9.3f} ms/run",
            f"POST /v1/runs (wait=true)    : {http * 1e3:9.3f} ms/run "
            f"({http_overhead:+.1%} vs storeless direct)",
            f"façade budget                : <{OVERHEAD_BUDGET:.0%}",
        ]
        emit("api_overhead", lines)
        record_bench("api_overhead", {
            "benchmark": BENCHMARK,
            "repeats": REPEATS,
            "direct_warm_s": direct,
            "facade_s": facade,
            "direct_nostore_s": direct_nostore,
            "http_s": http,
            "facade_overhead": facade_overhead,
            "http_overhead": http_overhead,
            "facade_budget": OVERHEAD_BUDGET,
        })
        assert facade_overhead < OVERHEAD_BUDGET, (
            f"façade dispatch costs {facade_overhead:.1%} over direct "
            f"(budget {OVERHEAD_BUDGET:.0%})"
        )
    finally:
        shutil.rmtree(store, ignore_errors=True)
