"""Spec-defined benchmark suites: authoring overhead + cold/warm sweeps (PR 4).

The declarative BenchmarkSpec surface must be cheap enough to sit in
front of every run: JSON decoding + semantic validation + compilation
is measured per spec, registration through the service façade on top,
and then a suite of N generated spec benchmarks is swept cold
(populating an artifact store) and store-warm from a *fresh* process
state (new service, new registry — the specs resolve from the store's
``spec`` stage, exactly the ``provmark bench add`` --> ``provmark batch
--store`` flow).  Warm sweeps must beat cold ones; results land in
``benchmarks/output/BENCH_PR4.json``.
"""

import base64
import shutil
import statistics
import tempfile
import time

from repro.api import BatchRequest, BenchmarkService, BenchmarkSpec
from repro.api.specs import compile_spec, persist_spec
from repro.storage.artifacts import ArtifactStore
from repro.suite.registry import SUITE_REGISTRY, SuiteRegistry

from conftest import emit, record_bench

N_SPECS = 12
SEED = 2019
VALIDATE_REPEATS = 50


def generated_payload(i: int) -> dict:
    """Deterministic spec #i: small file workloads with some variety."""
    data = base64.b64encode(f"payload {i}".encode()).decode()
    if i % 2 == 0:
        ops = [
            {"call": "creat", "args": [f"gen_{i}.txt", 0o644],
             "result": "fd", "target": True},
            {"call": "write", "args": ["$fd", {"base64": data}],
             "target": True},
            {"call": "close", "args": ["$fd"], "target": True},
        ]
        setup = []
    else:
        ops = [
            {"call": "open", "args": [f"seed_{i}.txt", "O_RDWR"],
             "result": "fd"},
            {"call": "read", "args": ["$fd", 64], "target": True},
            {"call": "chmod", "args": [f"seed_{i}.txt", 0o600],
             "target": True},
        ]
        setup = [{"kind": "file", "path": f"seed_{i}.txt"}]
    return {
        "name": f"gen_spec_{i}",
        "description": f"generated spec benchmark #{i}",
        "tags": ["custom", "genbench"],
        "program": {"ops": ops, "setup": setup},
    }


def builtin_only_registry() -> SuiteRegistry:
    return SUITE_REGISTRY.builtin_copy()


def median_seconds(fn, repeats):
    fn()
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def test_spec_suite_authoring_and_sweeps():
    payloads = [generated_payload(i) for i in range(N_SPECS)]

    # -- authoring overhead: decode + validate + compile, per spec ------
    validate = median_seconds(
        lambda: [
            compile_spec(BenchmarkSpec.from_payload(p)) for p in payloads
        ],
        VALIDATE_REPEATS,
    ) / N_SPECS

    # -- registration through the façade --------------------------------
    specs = [BenchmarkSpec.from_payload(p) for p in payloads]

    def register_all():
        service = BenchmarkService(registry=builtin_only_registry())
        for spec in specs:
            service.register_benchmark(spec)
        return service

    registration = median_seconds(register_all, VALIDATE_REPEATS) / N_SPECS

    store_root = tempfile.mkdtemp(prefix="provmark-custom-suite-")
    try:
        store = ArtifactStore(store_root)
        persist_started = time.perf_counter()
        for spec in specs:
            persist_spec(store, spec)
        persist_elapsed = time.perf_counter() - persist_started

        request = BatchRequest(
            tags=("genbench",), tool="spade", seed=SEED,
            store_path=store_root,
        )

        # cold: fresh registry, specs resolved from the store, every
        # stage computed and persisted
        cold_service = BenchmarkService(registry=builtin_only_registry())
        cold_started = time.perf_counter()
        cold = cold_service.run_batch(request)
        cold_elapsed = time.perf_counter() - cold_started

        # warm: another fresh registry + service (a new process in
        # spirit); specs come from the spec stage, results from the
        # result/stage artifacts
        warm_service = BenchmarkService(registry=builtin_only_registry())
        warm_started = time.perf_counter()
        warm = warm_service.run_batch(request)
        warm_elapsed = time.perf_counter() - warm_started

        # store enumeration is digest-ordered, so compare as sets; cold
        # and warm sweeps share the ordering (same store, same digests)
        assert {r.result.benchmark for r in cold} == {
            f"gen_spec_{i}" for i in range(N_SPECS)
        }
        assert [r.result.benchmark for r in cold] == [
            r.result.benchmark for r in warm
        ]
        for cold_response, warm_response in zip(cold, warm):
            assert cold_response.result.target_graph == \
                warm_response.result.target_graph
        store_hits = sum(r.result.timings.store_hits for r in warm)
        assert store_hits > 0, "warm sweep did not touch the store"
        assert warm_elapsed < cold_elapsed, (
            f"warm sweep ({warm_elapsed:.3f}s) not faster than cold "
            f"({cold_elapsed:.3f}s)"
        )

        lines = [
            f"spec validate+compile        : {validate * 1e6:9.1f} us/spec",
            f"service registration         : {registration * 1e6:9.1f} us/spec",
            f"persist to store ({N_SPECS:2d} specs)  : "
            f"{persist_elapsed * 1e3:9.3f} ms",
            f"cold sweep ({N_SPECS} spec benchmarks): "
            f"{cold_elapsed * 1e3:9.3f} ms",
            f"warm sweep (store-served)    : {warm_elapsed * 1e3:9.3f} ms "
            f"({cold_elapsed / warm_elapsed:.1f}x faster, "
            f"{store_hits} stage hits)",
        ]
        emit("custom_suite", lines)
        record_bench("custom_suite", {
            "n_specs": N_SPECS,
            "seed": SEED,
            "spec_validate_compile_s": validate,
            "register_s": registration,
            "persist_s": persist_elapsed,
            "cold_sweep_s": cold_elapsed,
            "warm_sweep_s": warm_elapsed,
            "warm_store_hits": store_hits,
            "speedup": cold_elapsed / warm_elapsed,
        })
    finally:
        shutil.rmtree(store_root, ignore_errors=True)
