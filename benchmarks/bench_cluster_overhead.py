"""Wire overhead of the multi-host execution plane (PR 10).

Two questions about :mod:`repro.cluster`:

* What does one claim cost over TCP versus the local spool?  A remote
  ``claim`` adds JSON framing, a socket round trip, and the
  coordinator's dispatch on top of the same
  :meth:`~repro.exec.queue.JobQueue.claim` arbitration, so the delta is
  the pure protocol tax.  Reported, not bounded — the tax is paid per
  job, and jobs run benchmarks that are orders of magnitude slower.
* How does claim/complete throughput scale as agents join?  Worker
  threads drain a pre-filled spool through one coordinator at fleet
  sizes 1/2/4; the spool stays the single arbiter, so this measures the
  coordinator's ability to feed a growing fleet, with contention and
  the fair-share ledger in the loop.

Results land in ``benchmarks/output/BENCH_PR10.json``.
"""

import statistics
import tempfile
import threading
import time
from pathlib import Path

from repro.cluster import ClusterCoordinator, RemoteQueue
from repro.exec.queue import JobQueue

from conftest import emit, record_bench

CLAIM_REPEATS = 80
DRAIN_JOBS = 120
FLEET_SIZES = (1, 2, 4)


def fill(queue, count):
    for i in range(count):
        queue.submit("run", {"benchmark": "open", "n": i}, 1, 3,
                     client_id=f"client-{i % 4}")


def median_claim_seconds(claim, complete, repeats):
    """Median seconds for one claim (each claimed job completed so the
    ledger stays realistic, the way a real worker would drive it)."""
    samples = []
    for i in range(repeats):
        started = time.perf_counter()
        record = claim(f"bench:w{i}.g1")
        samples.append(time.perf_counter() - started)
        assert record is not None
        complete(record["job_id"])
    return statistics.median(samples)


def drain_with_agents(agents, jobs):
    """Wall seconds for ``agents`` claim/complete loops to drain the spool."""
    with tempfile.TemporaryDirectory(prefix="provmark-cluster-bench-") as tmp:
        with ClusterCoordinator(Path(tmp) / "spool") as coord:
            fill(coord.queue, jobs)

            def worker(index):
                client = RemoteQueue(coord.host, coord.port,
                                     f"node-{index}")
                try:
                    client.register(workers=1)
                    while True:
                        record = client.claim(f"node-{index}:w0.g1")
                        if record is None:
                            return
                        client.complete(record["job_id"],
                                        result={"ok": True})
                finally:
                    client.close()

            threads = [
                threading.Thread(target=worker, args=(index,), daemon=True)
                for index in range(agents)
            ]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started
            assert coord.counters["completions_total"] == jobs
    return elapsed


def test_cluster_claim_latency_and_fleet_throughput():
    # -- per-claim latency: local spool vs one TCP hop -----------------------
    with tempfile.TemporaryDirectory(prefix="provmark-cluster-bench-") as tmp:
        local_queue = JobQueue(Path(tmp) / "local-spool")
        fill(local_queue, CLAIM_REPEATS + 1)
        local = median_claim_seconds(
            local_queue.claim,
            lambda job_id: local_queue.complete(job_id, result={"ok": True}),
            CLAIM_REPEATS,
        )

        with ClusterCoordinator(Path(tmp) / "spool") as coord:
            fill(coord.queue, CLAIM_REPEATS + 1)
            client = RemoteQueue(coord.host, coord.port, "bench-node")
            try:
                client.register(workers=1)
                remote = median_claim_seconds(
                    client.claim,
                    lambda job_id: client.complete(job_id,
                                                   result={"ok": True}),
                    CLAIM_REPEATS,
                )
            finally:
                client.close()

    # -- fleet drain throughput ---------------------------------------------
    throughput = {}
    for agents in FLEET_SIZES:
        elapsed = drain_with_agents(agents, DRAIN_JOBS)
        throughput[agents] = DRAIN_JOBS / elapsed

    lines = [
        f"local claim           {local * 1e3:8.3f} ms",
        f"remote claim (1 hop)  {remote * 1e3:8.3f} ms",
        f"protocol tax          {(remote - local) * 1e3:8.3f} ms/claim",
    ] + [
        f"drain {DRAIN_JOBS} jobs, {agents} agent(s): "
        f"{throughput[agents]:8.1f} claims+completes/s"
        for agents in FLEET_SIZES
    ]
    emit("cluster_overhead", lines)
    record_bench("cluster_overhead", {
        "local_claim_s": local,
        "remote_claim_s": remote,
        "protocol_tax_s": remote - local,
        "drain_jobs": DRAIN_JOBS,
        "throughput_jobs_per_s": {
            str(agents): throughput[agents] for agents in FLEET_SIZES
        },
    })

    # sanity, not a perf bound: the wire must not be pathological
    assert remote < local + 0.05
