"""Figures 5-7 — ProvMark stage timings per tool.

For the paper's five representative syscalls (open, execve, fork, setuid,
rename) we measure the transformation / generalization / comparison time
under each tool and regenerate the per-figure rows.

Shape assertions (the paper's claims, §5.1):
* OPUS stage times dwarf SPADE's and CamFlow's (database startup/query
  cost plus larger graphs);
* within OPUS, transformation dominates;
* SPADE and CamFlow complete each benchmark in a small fraction of
  OPUS's time.
"""

import pytest

from repro import ProvMark

from conftest import emit

SYSCALLS = ("open", "execve", "fork", "setuid", "rename")
FIGURES = {"spade": "fig5", "opus": "fig6", "camflow": "fig7"}

_collected = {}


@pytest.mark.parametrize("tool", list(FIGURES))
def test_stage_timing(benchmark, tool):
    provmark = ProvMark._internal(tool=tool, seed=5)

    def run_all():
        return {name: provmark.run_benchmark(name) for name in SYSCALLS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [f"{'syscall':<8} {'transform':>10} {'generalize':>11} {'compare':>9}"]
    for name, result in results.items():
        timing = result.timings
        rows.append(
            f"{name:<8} {timing.transformation:>9.4f}s "
            f"{timing.generalization:>10.4f}s {timing.comparison:>8.4f}s"
        )
    emit(f"{FIGURES[tool]}_timing_{tool}", rows)
    _collected[tool] = results


def test_cross_tool_shape(benchmark):
    """OPUS must dominate overall; its transformation must dominate
    within-tool (Figure 6 vs Figures 5/7)."""
    def totals():
        out = {}
        for tool in FIGURES:
            provmark = ProvMark._internal(tool=tool, seed=5)
            processing = transform = 0.0
            for name in SYSCALLS:
                timing = provmark.run_benchmark(name).timings
                processing += timing.processing
                transform += timing.transformation
            out[tool] = (processing, transform)
        return out

    out = benchmark.pedantic(totals, rounds=1, iterations=1)
    emit("fig5to7_shape", [
        f"{tool}: processing={processing:.3f}s transformation={transform:.3f}s"
        for tool, (processing, transform) in out.items()
    ])
    opus_processing = out["opus"][0]
    assert opus_processing > 3 * out["spade"][0]
    assert opus_processing > 3 * out["camflow"][0]
    # Within OPUS, transformation is the largest stage overall.
    assert out["opus"][1] > opus_processing / 2
