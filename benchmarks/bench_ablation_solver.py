"""Ablation — native branch-and-bound vs the mini-ASP engine.

The paper solves its matching problems with clingo; this reproduction
offers a fast native matcher plus a faithful ASP engine executing the
paper's Listing 3/4 programs.  The ablation quantifies the cost of the
declarative route and asserts both engines agree.
"""

import pytest

from repro import PipelineConfig, ProvMark
from repro.core.recording import Recorder
from repro.core.transform import transform
from repro.capture.spade import SpadeCapture
from repro.solver import subgraph_embedding, similarity
from repro.suite.registry import get_benchmark

from conftest import emit


def trial_graphs(benchmark_name="open", seed=3):
    capture = SpadeCapture()
    session = Recorder(capture, trials=2, seed=seed).record(
        get_benchmark(benchmark_name)
    )
    fg = transform(session.foreground_trials[0].raw, "dot", gid="fg")
    bg = transform(session.background_trials[0].raw, "dot", gid="bg")
    return fg, bg


@pytest.mark.parametrize("engine", ["native", "asp"])
def test_similarity_engine(benchmark, engine):
    fg, _ = trial_graphs()
    fg2 = fg.relabel("q")
    assert benchmark(similarity, fg, fg2, engine=engine)


@pytest.mark.parametrize("engine", ["native", "asp"])
def test_embedding_engine(benchmark, engine):
    fg, bg = trial_graphs()
    matching = benchmark.pedantic(
        subgraph_embedding, args=(bg, fg), kwargs={"engine": engine},
        rounds=1, iterations=1,
    )
    assert matching is not None


def test_engines_agree_end_to_end(benchmark):
    def run_both():
        native = ProvMark._internal(
            config=PipelineConfig(tool="spade", seed=5, engine="native")
        ).run_benchmark("open")
        asp = ProvMark._internal(
            config=PipelineConfig(tool="spade", seed=5, engine="asp")
        ).run_benchmark("open")
        return native, asp

    native, asp = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert native.classification == asp.classification
    assert (
        native.target_graph.structural_signature()
        == asp.target_graph.structural_signature()
    )
    emit("ablation_solver", [
        f"native: {native.timings.generalization + native.timings.comparison:.4f}s solve time",
        f"asp:    {asp.timings.generalization + asp.timings.comparison:.4f}s solve time",
        "identical classifications and target structure",
    ])
