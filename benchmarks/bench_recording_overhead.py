"""§5.1 recording times — virtual per-trial recording cost.

The paper reports ~20 s per trial for SPADE, ~28 s for OPUS, and ~10 s
for CamFlow (dominated by start/stop/flush waits, deliberately
conservative).  The simulator reports these as *virtual* seconds while
the actual simulated recording is fast; this bench regenerates the
figures and times the real (simulated) recording work.
"""

import pytest

from repro.capture import make_capture
from repro.core.recording import Recorder
from repro.suite.registry import get_benchmark

from conftest import emit

PAPER_SECONDS = {"spade": 20.0, "opus": 28.0, "camflow": 10.0}


@pytest.mark.parametrize("tool", list(PAPER_SECONDS))
def test_recording_virtual_time(benchmark, tool):
    recorder = Recorder(make_capture(tool), trials=2, seed=3)
    session = benchmark.pedantic(
        recorder.record, args=(get_benchmark("open"),), rounds=1, iterations=1
    )
    per_trial = session.virtual_seconds / 4  # 2 fg + 2 bg trials
    emit(f"recording_overhead_{tool}", [
        f"paper: ~{PAPER_SECONDS[tool]:.0f}s per trial",
        f"reproduced (virtual): {per_trial:.1f}s per trial",
    ])
    assert PAPER_SECONDS[tool] * 0.85 <= per_trial <= PAPER_SECONDS[tool] * 1.15


def test_recording_ordering_matches_paper(benchmark):
    """OPUS slowest, CamFlow fastest (paper §5.1)."""
    def virtual_times():
        out = {}
        for tool in PAPER_SECONDS:
            recorder = Recorder(make_capture(tool), trials=2, seed=3)
            session = recorder.record(get_benchmark("open"))
            out[tool] = session.virtual_seconds / 4
        return out

    times = benchmark.pedantic(virtual_times, rounds=1, iterations=1)
    assert times["opus"] > times["spade"] > times["camflow"]
