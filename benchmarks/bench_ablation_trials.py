"""Ablation — trial count and the `filtergraphs` option under flaky
recording (paper §3.2 and appendix A.4/A.5).

CamFlow occasionally produces structurally jittered output; ProvMark
copes via more trials (similarity classes filter failed runs) and/or the
filtergraphs pre-filter.  This ablation measures benchmark success rate
and cost across those settings.
"""

import pytest

from repro import PipelineConfig, ProvMark
from repro.capture.camflow import CamFlowCapture, CamFlowConfig

from conftest import emit

JITTER = 0.45


def run_attempts(trials: int, filtergraphs: bool, attempts: int = 6):
    """Returns (completed, accurate) rates.

    *completed* — the pipeline produced a benchmark at all;
    *accurate* — and the target graph is the clean expected structure
    (no spurious 'machine' node leaked into the result).  Two jittered
    trials are similar to each other, so without filtering the pipeline
    can succeed with a contaminated answer — precisely why the paper says
    filtering "can increase the accuracy ... but decrease the efficiency"
    (appendix A.4).
    """
    completed = accurate = 0
    for attempt in range(attempts):
        capture = CamFlowCapture(CamFlowConfig(structural_jitter=JITTER))
        provmark = ProvMark._internal(
            capture=capture,
            config=PipelineConfig(
                tool="camflow", seed=100 + attempt, trials=trials,
                filtergraphs=filtergraphs,
            ),
        )
        result = provmark.run_benchmark("open")
        if result.classification.value != "failed":
            completed += 1
            clean = not any(
                "machine" in (node.label, node.props.get("was", ""))
                for graph in (result.target_graph, result.foreground)
                for node in graph.nodes()
            )
            if result.classification.value == "ok" and clean:
                accurate += 1
    return completed / attempts, accurate / attempts


@pytest.mark.parametrize("trials", [2, 5])
def test_trials_ablation(benchmark, trials):
    completed, accurate = benchmark.pedantic(
        run_attempts, args=(trials, False), rounds=1, iterations=1
    )
    emit(f"ablation_trials_{trials}", [
        f"jitter={JITTER}, filtergraphs=off, trials={trials}: "
        f"completed {completed:.0%}, accurate {accurate:.0%}",
    ])
    if trials >= 5:
        assert completed >= 0.8


def test_filtergraphs_ablation(benchmark):
    def both():
        return (
            run_attempts(3, filtergraphs=False),
            run_attempts(3, filtergraphs=True),
        )

    without, with_filter = benchmark.pedantic(both, rounds=1, iterations=1)
    emit("ablation_filtergraphs", [
        f"trials=3, jitter={JITTER}",
        f"filtergraphs off: completed {without[0]:.0%}, accurate {without[1]:.0%}",
        f"filtergraphs on:  completed {with_filter[0]:.0%}, accurate {with_filter[1]:.0%}",
    ])
    # Filtering never yields an inaccurate benchmark; every completed run
    # is accurate (the paper's accuracy/efficiency trade-off).
    assert with_filter[1] == with_filter[0]
    assert with_filter[1] >= without[1]
