"""Table 2 — the full validation matrix (44 syscalls x 3 tools).

Regenerates the paper's headline table, checks every cell against the
published classification, and times one full tool column each.
"""

import pytest

from repro.analysis.table2 import generate_table2

from conftest import emit


@pytest.mark.parametrize("tool", ["spade", "opus", "camflow"])
def test_table2_column(benchmark, tool):
    table = benchmark.pedantic(
        generate_table2, kwargs={"tools": (tool,), "seed": 2019},
        rounds=1, iterations=1,
    )
    mismatches = table.mismatches()
    rows = [
        f"{name:<12} {cells[tool].rendered}"
        for name, cells in table.rows.items()
    ]
    rows.append("")
    rows.append(f"agreement with paper: {table.agreement:.0%}")
    emit(f"table2_{tool}", rows)
    assert not mismatches, mismatches


def test_table2_full_matrix(benchmark):
    table = benchmark.pedantic(
        generate_table2, kwargs={"seed": 2019}, rounds=1, iterations=1
    )
    emit("table2_full", table.render().splitlines())
    assert table.agreement == 1.0
