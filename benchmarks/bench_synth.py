"""Coverage-guided synthesis throughput and curation quality (PR 5).

Three measurements of the ``repro.synth`` engine:

* **Generation throughput** — valid specs per second from the seeded
  generator alone (validator + dry-run oracle included), no pipeline;
* **Curation** — a full ``run_synthesis`` pass (generate + mutate +
  evaluate under spade + curate): wall clock, dedup rate, and coverage
  growth per family;
* **Warm re-synthesis** — the same pass against a populated artifact
  store, where candidate evaluation is served from cached stage
  artifacts.

Results print with ``-s`` and consolidate into
``benchmarks/output/BENCH_PR5.json``.
"""

import shutil
import tempfile
import time

from repro.suite.registry import SUITE_REGISTRY
from repro.synth.engine import run_synthesis
from repro.synth.generator import SpecGenerator

from conftest import emit, record_bench

GEN_SPECS = 60
SYNTH_COUNT = 24
SEED = 2019


def test_generation_throughput():
    generator = SpecGenerator(seed=SEED)
    start = time.perf_counter()
    specs = generator.generate_many(GEN_SPECS)
    elapsed = time.perf_counter() - start
    rate = GEN_SPECS / elapsed
    ops = sum(len(s.program.ops) for s in specs)
    lines = [
        f"generated {GEN_SPECS} valid specs in {elapsed:.3f}s "
        f"({rate:.0f} specs/s, oracle included)",
        f"mean program size: {ops / GEN_SPECS:.1f} ops",
    ]
    emit("synth_generation", lines)
    record_bench("synth_generation", {
        "specs": GEN_SPECS,
        "seconds": elapsed,
        "specs_per_second": rate,
        "mean_ops": ops / GEN_SPECS,
    })
    assert rate > 5  # generating must stay negligible next to evaluation


def test_curation_quality_and_warm_resynthesis():
    store_root = tempfile.mkdtemp(prefix="bench-synth-")
    try:
        start = time.perf_counter()
        cold = run_synthesis(
            seed=SEED, count=SYNTH_COUNT, tools=("spade",),
            registry=SUITE_REGISTRY.builtin_copy(), store_path=store_root,
        )
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        warm = run_synthesis(
            seed=SEED, count=SYNTH_COUNT, tools=("spade",),
            registry=SUITE_REGISTRY.builtin_copy(), store_path=store_root,
        )
        warm_s = time.perf_counter() - start

        kept = len(cold.survivors)
        dedup_rate = cold.duplicates / SYNTH_COUNT
        growth = {
            "syscalls": (cold.baseline.syscalls, cold.final.syscalls),
            "arg_shapes": (cold.baseline.arg_shapes, cold.final.arg_shapes),
            "motifs": (cold.baseline.motifs, cold.final.motifs),
        }
        lines = [
            f"curated {SYNTH_COUNT} candidates in {cold_s:.2f}s cold, "
            f"{warm_s:.2f}s store-warm ({cold_s / max(warm_s, 1e-9):.1f}x)",
            f"kept {kept}, duplicates {cold.duplicates} "
            f"(dedup rate {dedup_rate:.0%}), no-gain {cold.no_gain}, "
            f"failed {cold.failed}",
        ] + [
            f"coverage {family}: {before} -> {after}"
            for family, (before, after) in growth.items()
        ]
        emit("synth_curation", lines)
        record_bench("synth_curation", {
            "candidates": SYNTH_COUNT,
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "kept": kept,
            "duplicates": cold.duplicates,
            "dedup_rate": dedup_rate,
            "no_gain": cold.no_gain,
            "failed": cold.failed,
            "coverage": {
                family: {"before": before, "after": after}
                for family, (before, after) in growth.items()
            },
            "new_syscalls": cold.new_syscalls,
        })
        assert [s.name for s in warm.survivors] == \
            [s.name for s in cold.survivors]
        assert kept > 0
    finally:
        shutil.rmtree(store_root, ignore_errors=True)
