"""Scalability headroom beyond the paper's scale8 (§5.2, §5.4).

The paper evaluates 10-20 target syscalls and notes that realistic
suspicious-behaviour analysis needs much larger targets.  This bench
pushes the reproduction to scale16/scale32 plus a mixed "application"
workload (~30 heterogeneous syscalls) and records how the matching
stages behave.
"""

import pytest

from repro import ProvMark
from repro.suite.program import Op, Program

from conftest import emit


def scale_program(factor: int) -> Program:
    ops = []
    for index in range(factor):
        ops.append(Op("creat", ("scale.txt", 0o644), result=f"fd{index}",
                      target=True))
        ops.append(Op("unlink", ("scale.txt",), target=True))
    return Program(name=f"headroom_scale{factor}", ops=tuple(ops))


def mixed_workload() -> Program:
    """A build-like session: dirs, copies, permissions, cleanup."""
    ops = [
        Op("mkdir", ("build",), target=True),
        Op("chdir", ("build",), target=True),
    ]
    for index in range(4):
        ops += [
            Op("creat", (f"obj{index}.o", 0o644), result=f"fd{index}", target=True),
            Op("write", (f"$fd{index}", b"obj"), target=True),
            Op("close", (f"$fd{index}",), target=True),
        ]
    ops += [
        Op("creat", ("app", 0o755), result="out", target=True),
        Op("write", ("$out", b"linked"), target=True),
        Op("chmod", ("app", 0o755), target=True),
        Op("link", ("app", "app.release"), target=True),
        Op("chdir", ("..",), target=True),
        Op("rename", ("build/app.release", "app.final"), target=True),
    ]
    for index in range(4):
        ops.append(Op("unlink", (f"build/obj{index}.o",), target=True))
    return Program(name="headroom_mixed", ops=tuple(ops))


@pytest.mark.parametrize("factor", [16, 32])
def test_scale_headroom_spade(benchmark, factor):
    provmark = ProvMark._internal(tool="spade", seed=5)
    program = scale_program(factor)
    result = benchmark.pedantic(
        provmark.run_benchmark, args=(program,), rounds=1, iterations=1
    )
    assert result.classification.value == "ok"
    emit(f"headroom_scale{factor}", [
        f"target syscalls: {2 * factor}",
        f"target graph: {result.target_graph.node_count} nodes, "
        f"{result.target_graph.edge_count} edges",
        f"generalization: {result.timings.generalization:.3f}s, "
        f"comparison: {result.timings.comparison:.3f}s",
    ])


@pytest.mark.parametrize("tool", ["spade", "camflow"])
def test_mixed_workload(benchmark, tool):
    provmark = ProvMark._internal(tool=tool, seed=5)
    result = benchmark.pedantic(
        provmark.run_benchmark, args=(mixed_workload(),), rounds=1, iterations=1
    )
    assert result.classification.value == "ok"
    emit(f"headroom_mixed_{tool}", [
        f"target graph: {result.target_graph.node_count} nodes, "
        f"{result.target_graph.edge_count} edges",
        f"processing: {result.timings.processing:.3f}s",
    ])
    # ~25-syscall targets stay comfortably inside the solver budget.
    assert result.timings.processing < 30.0
