"""Scalability headroom beyond the paper's scale8 (§5.2, §5.4).

The paper evaluates 10-20 target syscalls and notes that realistic
suspicious-behaviour analysis needs much larger targets.  This bench
pushes the reproduction through the registry's scalability rows up to
the slow-tagged scale128/scale512 tiers, plus a mixed "application"
workload (~30 heterogeneous syscalls), and records how the matching
stages behave.
"""

import pytest

from repro import ProvMark
from repro.suite.program import Op, Program
from repro.suite.registry import SUITE_REGISTRY

from conftest import emit, record_bench, timings_payload

#: registry rows tagged ``scalability`` beyond the paper's scale8
HEADROOM_SCALES = ("scale16", "scale32", "scale128", "scale512")


def mixed_workload() -> Program:
    """A build-like session: dirs, copies, permissions, cleanup."""
    ops = [
        Op("mkdir", ("build",), target=True),
        Op("chdir", ("build",), target=True),
    ]
    for index in range(4):
        ops += [
            Op("creat", (f"obj{index}.o", 0o644), result=f"fd{index}", target=True),
            Op("write", (f"$fd{index}", b"obj"), target=True),
            Op("close", (f"$fd{index}",), target=True),
        ]
    ops += [
        Op("creat", ("app", 0o755), result="out", target=True),
        Op("write", ("$out", b"linked"), target=True),
        Op("chmod", ("app", 0o755), target=True),
        Op("link", ("app", "app.release"), target=True),
        Op("chdir", ("..",), target=True),
        Op("rename", ("build/app.release", "app.final"), target=True),
    ]
    for index in range(4):
        ops.append(Op("unlink", (f"build/obj{index}.o",), target=True))
    return Program(name="headroom_mixed", ops=tuple(ops))


@pytest.mark.parametrize("name", HEADROOM_SCALES)
@pytest.mark.parametrize("tool", ["spade", "camflow"])
def test_scale_headroom(benchmark, tool, name):
    assert "scalability" in SUITE_REGISTRY.tags(name)
    provmark = ProvMark._internal(tool=tool, seed=5)
    result = benchmark.pedantic(
        provmark.run_benchmark, args=(name,), rounds=1, iterations=1
    )
    assert result.classification.value == "ok"
    timings = result.timings
    emit(f"headroom_{tool}_{name}", [
        f"target graph: {result.target_graph.node_count} nodes, "
        f"{result.target_graph.edge_count} edges",
        f"generalization: {timings.generalization:.3f}s, "
        f"comparison: {timings.comparison:.3f}s",
        f"solver steps: {timings.solver_steps}, decomposed components: "
        f"{timings.decomposed_components} "
        f"(largest: {timings.component_steps_max} steps)",
    ])
    record_bench(f"headroom/{tool}/{name}", timings_payload(timings))
    # CamFlow decomposes at every tier; the largest single component
    # searched stays tiny even at scale512.
    if tool == "camflow":
        assert timings.decomposed_components > 0


@pytest.mark.parametrize("tool", ["spade", "camflow"])
def test_mixed_workload(benchmark, tool):
    provmark = ProvMark._internal(tool=tool, seed=5)
    result = benchmark.pedantic(
        provmark.run_benchmark, args=(mixed_workload(),), rounds=1, iterations=1
    )
    assert result.classification.value == "ok"
    emit(f"headroom_mixed_{tool}", [
        f"target graph: {result.target_graph.node_count} nodes, "
        f"{result.target_graph.edge_count} edges",
        f"processing: {result.timings.processing:.3f}s",
    ])
    # ~25-syscall targets stay comfortably inside the solver budget.
    assert result.timings.processing < 30.0
