"""Speedup of the fast-path matching engine (this PR's tentpole).

Runs the scalability benchmarks with the optimized native engine and
again with every optimization disabled (``solver_optimizations(False)``:
label/degree candidate scans, full group rescans per step, uncached
property costs, no warm starts), and
records the processing-time ratio plus the solver counters that make the
wins observable.  The per-case payloads land in
``benchmarks/output/BENCH_PR1.json`` via ``record_bench``.
"""

import pytest

from repro import ProvMark
from repro.solver.native import solver_optimizations

from conftest import emit, record_bench, timings_payload

CASES = [
    ("spade", "scale8"),
    ("spade", "scale32"),
    ("camflow", "scale8"),
    ("camflow", "scale16"),
    ("opus", "scale8"),
]


def best_processing(tool, name, rounds=3):
    provmark = ProvMark._internal(tool=tool, seed=5)
    results = [provmark.run_benchmark(name) for _ in range(rounds)]
    best = min(results, key=lambda r: r.timings.processing)
    assert best.classification.value == "ok"
    return best


@pytest.mark.parametrize("tool,name", CASES)
def test_optimization_speedup(benchmark, tool, name):
    def run_both():
        optimized = best_processing(tool, name)
        with solver_optimizations(False):
            reference = best_processing(tool, name)
        return optimized, reference

    optimized, reference = benchmark.pedantic(run_both, rounds=1, iterations=1)
    fast = optimized.timings.processing
    slow = reference.timings.processing
    ratio = slow / fast if fast else float("inf")
    emit(f"solver_opt_{tool}_{name}", [
        f"optimized processing: {fast:.4f}s "
        f"(steps={optimized.timings.solver_steps}, "
        f"warm starts={optimized.timings.matching_cache_hits}, "
        f"cost cache hits={optimized.timings.cost_cache_hits})",
        f"reference processing: {slow:.4f}s "
        f"(steps={reference.timings.solver_steps})",
        f"speedup: {ratio:.2f}x",
    ])
    record_bench(f"solver_opt/{tool}/{name}", {
        "optimized": timings_payload(optimized.timings),
        "reference": timings_payload(reference.timings),
        "speedup": ratio,
    })
    # Results must be identical; the fast path may only be faster.
    assert optimized.target_graph == reference.target_graph
    assert ratio > 0.8  # never a regression beyond noise


#: per-tool solver_steps ceilings at scale16 — observed values are
#: roughly (spade 190, camflow 260, opus 630); ~2.5x headroom for noise.
SMOKE_STEP_CEILINGS = {"spade": 500, "camflow": 700, "opus": 1600}


@pytest.mark.parametrize("tool", sorted(SMOKE_STEP_CEILINGS))
def test_perf_smoke_counter_ceilings(benchmark, tool):
    """CI perf smoke: solver counters at a fixed small scale.

    Guards the decomposed minimizing search against regressions without
    timing anything: solver_steps at scale16 must stay under a fixed
    ceiling and must not grow superlinearly from scale8 (2x scale, so
    ~2x steps when the decomposition holds; 3x is the alarm line).
    """
    def run():
        provmark = ProvMark._internal(tool=tool, seed=5)
        return {
            name: provmark.run_benchmark(name) for name in ("scale8", "scale16")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for result in results.values():
        assert result.classification.value == "ok"
        assert result.timings.decomposed_components > 0
    small = results["scale8"].timings.solver_steps
    large = results["scale16"].timings.solver_steps
    emit(f"perf_smoke_{tool}", [
        f"scale8 steps={small}  scale16 steps={large} "
        f"(ceiling {SMOKE_STEP_CEILINGS[tool]})",
    ])
    record_bench(f"perf_smoke/{tool}", {
        "scale8_steps": small,
        "scale16_steps": large,
        "ceiling": SMOKE_STEP_CEILINGS[tool],
    })
    assert large <= SMOKE_STEP_CEILINGS[tool]
    assert large < 3 * small, f"superlinear step growth: {large}/{small}"


def test_scale_headroom_within_step_budget(benchmark):
    """scale16/scale32 stay far below the 2M-step solver budget."""
    def run():
        rows = {}
        for tool in ("spade", "camflow"):
            provmark = ProvMark._internal(tool=tool, seed=5)
            for name in ("scale16", "scale32"):
                rows[(tool, name)] = provmark.run_benchmark(name)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for (tool, name), result in rows.items():
        assert result.classification.value == "ok"
        assert result.timings.solver_steps < 100_000
        lines.append(
            f"{tool}/{name}: proc={result.timings.processing:.4f}s "
            f"steps={result.timings.solver_steps}"
        )
        record_bench(
            f"scale_headroom/{tool}/{name}",
            timings_payload(result.timings),
        )
    emit("solver_opt_step_budget", lines)
