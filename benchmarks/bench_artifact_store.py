"""Artifact-store effectiveness (this PR's tentpole acceptance).

A cold ``batch --store DIR`` sweep over the default suite followed by a
warm re-run must produce identical per-benchmark results (classification,
graphs, solver counters) while the warm run serves every executed stage
from the store and spends measurably less processing wall-clock.  A
"killed" sweep re-run with ``--resume`` must replay the completed
benchmarks verbatim and compute only the remaining ones.
"""

import shutil
import tempfile
import time

from repro import ProvMark
from repro.core.pipeline import PipelineConfig
from repro.suite import TABLE2_ORDER

from conftest import emit, record_bench

SUITE = list(TABLE2_ORDER)


def identical(a, b) -> bool:
    """Result identity over everything deterministic (not wall clock)."""
    return (
        a.classification is b.classification
        and a.target_graph == b.target_graph
        and a.foreground == b.foreground
        and a.background == b.background
        and a.note == b.note
        and a.error == b.error
        and a.discarded_trials == b.discarded_trials
        and a.timings.solver_row() == b.timings.solver_row()
    )


def sweep(store: str, names=None, resume: bool = False):
    config = PipelineConfig(
        tool="spade", seed=5, store_path=store, resume=resume
    )
    provmark = ProvMark._internal(config=config)
    started = time.perf_counter()
    results = provmark.run_many(names or SUITE)
    return results, time.perf_counter() - started


def test_cold_vs_warm_sweep():
    store = tempfile.mkdtemp(prefix="provmark-store-")
    try:
        cold, cold_wall = sweep(store)
        warm, warm_wall = sweep(store)
        for cold_result, warm_result in zip(cold, warm):
            assert identical(cold_result, warm_result), cold_result.benchmark
            # every executed stage served from the store (failed
            # benchmarks short-circuit after three stages)
            assert warm_result.timings.store_misses == 0
            assert warm_result.timings.store_hits >= 3
            assert cold_result.timings.store_hits == 0
        cold_proc = sum(r.timings.processing for r in cold)
        warm_proc = sum(r.timings.processing for r in warm)
        assert warm_proc < cold_proc
        stage_hits = sum(r.timings.store_hits for r in warm)
        rows = [
            f"suite: {len(SUITE)} benchmarks (spade, seed 5)",
            f"cold sweep: {cold_wall:.3f}s wall, {cold_proc:.3f}s processing",
            f"warm sweep: {warm_wall:.3f}s wall, {warm_proc:.3f}s processing",
            f"processing speedup: {cold_proc / max(warm_proc, 1e-9):.1f}x",
            f"warm stage hits: {stage_hits}, misses: 0",
        ]
        emit("artifact_store_cold_vs_warm", rows)
        record_bench("artifact_store_cold_vs_warm", {
            "suite": len(SUITE),
            "cold_wall_s": cold_wall,
            "warm_wall_s": warm_wall,
            "cold_processing_s": cold_proc,
            "warm_processing_s": warm_proc,
            "warm_stage_hits": stage_hits,
        })
    finally:
        shutil.rmtree(store, ignore_errors=True)


def test_killed_sweep_resumes_remaining_only():
    store = tempfile.mkdtemp(prefix="provmark-store-")
    try:
        completed = SUITE[: len(SUITE) // 2]
        partial, _ = sweep(store, names=completed)  # the "killed" sweep
        resumed, resumed_wall = sweep(store, resume=True)
        replayed = resumed[: len(completed)]
        for before, after in zip(partial, replayed):
            assert identical(before, after)
            # float-equal stored wall clocks prove a verbatim replay
            assert after.timings.recording == before.timings.recording
            assert after.timings.generalization == before.timings.generalization
        fresh = resumed[len(completed):]
        assert all(r.timings.store_misses >= 3 for r in fresh)
        emit("artifact_store_resume", [
            f"killed sweep completed {len(completed)}/{len(SUITE)}",
            f"--resume replayed {len(replayed)}, "
            f"computed {len(fresh)} in {resumed_wall:.3f}s",
        ])
        record_bench("artifact_store_resume", {
            "completed": len(completed),
            "replayed": len(replayed),
            "computed": len(fresh),
            "resume_wall_s": resumed_wall,
        })
    finally:
        shutil.rmtree(store, ignore_errors=True)
