"""Table 3 — example benchmark result structures.

Regenerates the paper's per-tool target graphs for open, read, write,
dup, setuid, setresuid and checks the qualitative pattern of which cells
are empty.
"""

import pytest

from repro.analysis.table3 import TABLE3_SYSCALLS, generate_table3

from conftest import emit

#: (tool, syscall) cells that the paper shows as Empty in Table 3.
PAPER_EMPTY_CELLS = {
    ("spade", "dup"),
    ("opus", "read"), ("opus", "write"), ("opus", "setresuid"),
    ("camflow", "dup"),
}


def test_table3(benchmark):
    table = benchmark.pedantic(generate_table3, rounds=1, iterations=1)
    emit("table3_structures", table.render().splitlines())
    for tool, cells in table.cells.items():
        for syscall, cell in cells.items():
            expected_empty = (tool, syscall) in PAPER_EMPTY_CELLS
            actually_empty = cell.summary.nodes == 0
            assert actually_empty == expected_empty, (tool, syscall)


@pytest.mark.parametrize("syscall", TABLE3_SYSCALLS)
def test_table3_row_timing(benchmark, syscall):
    """Per-syscall cost of producing one Table 3 row (all three tools)."""
    table = benchmark.pedantic(
        generate_table3, kwargs={"syscalls": (syscall,)},
        rounds=1, iterations=1,
    )
    assert set(table.cells) == {"spade", "opus", "camflow"}
