"""Table 1 — benchmarked syscall families by group.

Regenerates the paper's suite inventory and times a sweep of one
benchmark execution per group (recording only).
"""

import pytest

from repro.core.recording import Recorder
from repro.capture.spade import SpadeCapture
from repro.suite.registry import (
    TABLE1_GROUPS,
    TABLE2_BENCHMARKS,
    benchmarks_in_group,
)

from conftest import emit


def test_table1_families(benchmark):
    def collect():
        rows = []
        for group, (name, families) in sorted(TABLE1_GROUPS.items()):
            members = benchmarks_in_group(group)
            rows.append(
                f"{group}  {name:<12} {', '.join(families)}  "
                f"[{len(members)} benchmarks]"
            )
        return rows

    rows = benchmark(collect)
    emit("table1_suite", rows)
    assert len(TABLE2_BENCHMARKS) == 44
    counts = [len(benchmarks_in_group(g)) for g in (1, 2, 3, 4)]
    assert counts == [23, 6, 12, 3]


@pytest.mark.parametrize("group", [1, 2, 3, 4])
def test_record_one_benchmark_per_group(benchmark, group):
    """Recording cost of a representative benchmark from each group."""
    program = benchmarks_in_group(group)[0]
    recorder = Recorder(SpadeCapture(), trials=2, seed=1)
    session = benchmark.pedantic(
        recorder.record, args=(program,), rounds=1, iterations=1
    )
    assert session.foreground_trials and session.background_trials
