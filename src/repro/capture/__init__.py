"""Simulated provenance capture systems (paper Figure 2).

Tool lookup goes through the plugin registry in
:mod:`repro.capture.registry`; ``TOOLS`` remains available as a live
read-only view of it (tool name -> capture class) for existing callers.
"""

import warnings
from collections.abc import Mapping
from typing import Iterator, Type

from repro.capture.base import CaptureSystem, RawOutput, RecordingCost
from repro.capture.camflow import CamFlowCapture, CamFlowConfig, RECORDED_HOOKS
from repro.capture.opus import OpusCapture, OpusConfig, WRAPPED_FUNCTIONS
from repro.capture.registry import (
    Backend,
    BackendProfile,
    UnknownToolError,
    get_backend,
    iter_backends,
    make_capture,
    register_tool,
    registered_tools,
    unregister_tool,
)
from repro.capture.spade import (
    BASE_RENDER_SET,
    NO_SIMPLIFY_EXTRA,
    SpadeCapture,
    SpadeConfig,
)
from repro.capture.spade_camflow import SpadeCamFlowCapture, SpadeCamFlowConfig


def _warn_legacy_tools(replacement: str) -> None:
    warnings.warn(
        f"the legacy TOOLS view is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class _ToolClassView(Mapping):
    """Read-only ``name -> capture class`` view over the registry.

    Stays live: tools registered through ``register_tool`` appear here
    immediately, so legacy ``TOOLS`` consumers see plugins too.
    Deprecated — look backends up through
    :func:`repro.capture.registry.get_backend` (or
    ``BenchmarkService.tools()``) instead.
    """

    def __getitem__(self, name: str) -> Type[CaptureSystem]:
        _warn_legacy_tools("repro.capture.registry.get_backend()")
        try:
            return get_backend(name).cls
        except UnknownToolError:
            # Mapping protocol (``in``, ``.get``) expects KeyError here.
            raise KeyError(name) from None

    def __iter__(self) -> Iterator[str]:
        _warn_legacy_tools("repro.capture.registry.registered_tools()")
        return iter(registered_tools())

    def __len__(self) -> int:
        return len(registered_tools())

    def __repr__(self) -> str:
        return f"TOOLS({dict(self)!r})"


#: Tool name -> capture class, mirroring ProvMark's tool profiles
#: (``spg``/``opu``/``cam`` in the paper's appendix).  Backed by the
#: plugin registry; use ``register_tool`` to extend it.
TOOLS: Mapping[str, Type[CaptureSystem]] = _ToolClassView()


__all__ = [
    "BASE_RENDER_SET",
    "Backend",
    "BackendProfile",
    "CamFlowCapture",
    "CamFlowConfig",
    "CaptureSystem",
    "NO_SIMPLIFY_EXTRA",
    "OpusCapture",
    "OpusConfig",
    "RECORDED_HOOKS",
    "RawOutput",
    "RecordingCost",
    "SpadeCamFlowCapture",
    "SpadeCamFlowConfig",
    "SpadeCapture",
    "SpadeConfig",
    "TOOLS",
    "UnknownToolError",
    "WRAPPED_FUNCTIONS",
    "get_backend",
    "iter_backends",
    "make_capture",
    "register_tool",
    "registered_tools",
    "unregister_tool",
]
