"""Simulated provenance capture systems (paper Figure 2)."""

from typing import Optional

from repro.capture.base import CaptureSystem, RawOutput, RecordingCost
from repro.capture.camflow import CamFlowCapture, CamFlowConfig, RECORDED_HOOKS
from repro.capture.opus import OpusCapture, OpusConfig, WRAPPED_FUNCTIONS
from repro.capture.spade import (
    BASE_RENDER_SET,
    NO_SIMPLIFY_EXTRA,
    SpadeCapture,
    SpadeConfig,
)
from repro.capture.spade_camflow import SpadeCamFlowCapture, SpadeCamFlowConfig

#: Tool name -> capture class, mirroring ProvMark's tool profiles
#: (``spg``/``opu``/``cam`` in the paper's appendix).
TOOLS = {
    "spade": SpadeCapture,
    "opus": OpusCapture,
    "camflow": CamFlowCapture,
    "spade-camflow": SpadeCamFlowCapture,
}


def make_capture(tool: str, config: Optional[object] = None) -> CaptureSystem:
    """Instantiate a capture system by name with an optional config."""
    try:
        cls = TOOLS[tool]
    except KeyError:
        raise ValueError(
            f"unknown tool {tool!r}; available: {sorted(TOOLS)}"
        ) from None
    if config is None:
        return cls()
    return cls(config)  # type: ignore[arg-type]


__all__ = [
    "BASE_RENDER_SET",
    "CamFlowCapture",
    "CamFlowConfig",
    "CaptureSystem",
    "NO_SIMPLIFY_EXTRA",
    "OpusCapture",
    "OpusConfig",
    "RECORDED_HOOKS",
    "RawOutput",
    "RecordingCost",
    "SpadeCamFlowCapture",
    "SpadeCamFlowConfig",
    "SpadeCapture",
    "SpadeConfig",
    "TOOLS",
    "WRAPPED_FUNCTIONS",
    "make_capture",
]
