"""SPADE with CamFlow as its reporter (paper §2/§3.3).

The paper notes that "CamFlow can also be used (instead of Linux Audit)
to report provenance to SPADE, though we have not yet experimented with
this configuration".  This module implements that configuration: SPADE's
OPM-style graph and Graphviz storage, fed from the *LSM hook stream*
instead of the audit stream.

The consequence the combination predicts: coverage follows CamFlow's
recorded-hook set (sockets and `tee` appear; `dup` and `mknod` stay
invisible; failed permission checks stay unrecorded by default), while
the output vocabulary stays SPADE's (Process/Artifact vertices,
Used/WasGeneratedBy/WasTriggeredBy edges) — so existing SPADE queries
keep working over CamFlow-grade coverage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.capture.base import CaptureSystem, RawOutput
from repro.capture.camflow import RECORDED_HOOKS
from repro.graph.dot import graph_to_dot
from repro.graph.model import PropertyGraph
from repro.kernel.trace import LsmEvent, ObjectInfo, Trace


@dataclass
class SpadeCamFlowConfig:
    """Configuration surface of the combined deployment."""

    record_failed: bool = False


class SpadeCamFlowCapture(CaptureSystem):
    """SPADE storage + vocabulary over the CamFlow reporter."""

    name = "spade-camflow"
    output_format = "dot"
    #: CamFlow's kernel-side collection is cheap; SPADE's storage adds a
    #: little on top of CamFlow's 10 s figure.
    recording_seconds = 12.0

    def __init__(self, config: Optional[SpadeCamFlowConfig] = None) -> None:
        self.config = config or SpadeCamFlowConfig()

    def record(self, trace: Trace, rng: random.Random) -> RawOutput:
        builder = _OpmFromLsmBuilder(rng)
        for event in trace.lsm:
            if not event.success and not self.config.record_failed:
                continue
            if event.hook not in RECORDED_HOOKS:
                continue
            builder.feed(event)
        return graph_to_dot(builder.graph, name="spade_camflow")


#: hook -> (edge label, direction) in SPADE's OPM vocabulary.
#: direction "used": process -> artifact; "generated": artifact -> process.
_HOOK_EDGES = {
    "file_open": ("Used", "used", "open"),
    "mmap_file": ("Used", "used", "mmap"),
    "inode_create": ("WasGeneratedBy", "generated", "create"),
    "inode_link": ("WasGeneratedBy", "generated", "link"),
    "inode_rename": ("WasGeneratedBy", "generated", "rename"),
    "inode_unlink": ("Used", "used", "unlink"),
    "inode_setattr": ("WasGeneratedBy", "generated", "setattr"),
    "path_truncate": ("WasGeneratedBy", "generated", "truncate"),
    "file_splice_pipe_to_pipe": ("Used", "used", "tee"),
    "socket_create": ("WasGeneratedBy", "generated", "socketpair"),
    "socket_sendmsg": ("WasGeneratedBy", "generated", "send"),
    "socket_recvmsg": ("Used", "used", "recv"),
}


class _OpmFromLsmBuilder:
    """Renders LSM hook events into SPADE's Process/Artifact vocabulary."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.graph = PropertyGraph("spade_camflow")
        self._seq = 0
        self._process_vertex: Dict[int, str] = {}
        self._artifact_vertex: Dict[str, str] = {}

    def _next_id(self, prefix: str) -> str:
        self._seq += 1
        return f"{prefix}{self.rng.randrange(16**8):08x}{self._seq}"

    def _ensure_process(self, event: LsmEvent) -> str:
        task_id = event.subject.task_id
        existing = self._process_vertex.get(task_id)
        if existing is not None:
            return existing
        vertex = self.graph.add_node(self._next_id("v"), "Process", {
            "pid": str(event.subject.pid),
            "name": event.subject.comm,
            "uid": str(event.subject.uid),
            "source": "camflow",
            "start time": str(event.time_ns),
        })
        self._process_vertex[task_id] = vertex.id
        return vertex.id

    def _artifact_key(self, obj: ObjectInfo) -> str:
        if obj.kind in ("pipe", "socket"):
            return f"{obj.kind}:{obj.pipe_id}"
        return f"ino:{obj.ino}"

    def _ensure_artifact(self, obj: ObjectInfo, event: LsmEvent) -> str:
        key = self._artifact_key(obj)
        existing = self._artifact_vertex.get(key)
        if existing is not None:
            return existing
        vertex = self.graph.add_node(self._next_id("v"), "Artifact", {
            "subtype": obj.kind,
            "path": obj.path or "",
            "ino": str(obj.ino or obj.pipe_id or 0),
            "source": "camflow",
            "time": str(event.time_ns),
        })
        self._artifact_vertex[key] = vertex.id
        return vertex.id

    def feed(self, event: LsmEvent) -> None:
        process = self._ensure_process(event)
        if event.hook in ("task_alloc",):
            child = next(
                (o for o in event.objects if o.role == "child"), None
            )
            if child is not None and child.task_id is not None:
                child_vertex = self.graph.add_node(
                    self._next_id("v"), "Process", {
                        "pid": str(child.pid),
                        "source": "camflow",
                        "start time": str(event.time_ns),
                    },
                )
                self._process_vertex[child.task_id] = child_vertex.id
                self.graph.add_edge(
                    self._next_id("e"), child_vertex.id, process,
                    "WasTriggeredBy", {"operation": "fork"},
                )
            return
        if event.hook in (
            "task_fix_setuid", "task_fix_setgid", "bprm_committed_creds",
        ):
            new_vertex = self.graph.add_node(self._next_id("v"), "Process", {
                "pid": str(event.subject.pid),
                "name": event.subject.comm,
                "source": "camflow",
            })
            self.graph.add_edge(
                self._next_id("e"), new_vertex.id, process,
                "WasTriggeredBy", {"operation": event.hook},
            )
            self._process_vertex[event.subject.task_id] = new_vertex.id
            task_obj = next(
                (o for o in event.objects if o.role == "task"), None
            )
            if task_obj is not None and task_obj.task_id is not None:
                self._process_vertex[task_obj.task_id] = new_vertex.id
            return
        if event.hook == "file_permission":
            obj = next((o for o in event.objects if o.fd is not None), None)
            if obj is None:
                return
            artifact = self._ensure_artifact(obj, event)
            mask = dict(event.details).get("mask", "r")
            if mask == "w":
                self.graph.add_edge(
                    self._next_id("e"), artifact, process,
                    "WasGeneratedBy", {"operation": "write"},
                )
            else:
                self.graph.add_edge(
                    self._next_id("e"), process, artifact,
                    "Used", {"operation": "read"},
                )
            return
        mapping = _HOOK_EDGES.get(event.hook)
        if mapping is None:
            if event.hook == "bprm_creds_for_exec":
                obj = next((o for o in event.objects if o.role == "exe"), None)
                if obj is not None:
                    artifact = self._ensure_artifact(obj, event)
                    self.graph.add_edge(
                        self._next_id("e"), process, artifact,
                        "Used", {"operation": "load"},
                    )
            return
        label, direction, operation = mapping
        target_obj = next(
            (o for o in event.objects if o.kind != "process"), None
        )
        if target_obj is None:
            return
        artifact = self._ensure_artifact(target_obj, event)
        if direction == "used":
            self.graph.add_edge(
                self._next_id("e"), process, artifact, label,
                {"operation": operation},
            )
        else:
            self.graph.add_edge(
                self._next_id("e"), artifact, process, label,
                {"operation": operation},
            )
