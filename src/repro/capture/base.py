"""Capture-system interface.

A capture system is a black box that observes one vantage point of the
kernel trace and produces provenance output in its own native format
(paper Figure 2).  ProvMark's recording stage drives these objects; the
transformation stage understands their ``output_format``.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Union

from repro.kernel.trace import Trace
from repro.storage.neo4jsim import Neo4jSim

#: Native outputs: DOT text (SPADE), a Neo4jSim store (OPUS), or
#: PROV-JSON text (CamFlow).
RawOutput = Union[str, Neo4jSim]


@dataclass(frozen=True)
class RecordingCost:
    """Virtual per-trial recording time (paper §5.1).

    The simulator runs in microseconds; these figures report what the real
    systems cost per trial (SPADE ≈ 20 s, OPUS ≈ 28 s, CamFlow ≈ 10 s,
    dominated by start/stop/flush waits) so the recording-overhead bench
    can reproduce the paper's numbers as metadata.
    """

    seconds: float


class CaptureSystem(abc.ABC):
    """Base class for the three simulated provenance recorders."""

    #: short identifier, e.g. ``"spade"``
    name: str = "base"
    #: one of ``"dot"``, ``"neo4j"``, ``"provjson"``
    output_format: str = "none"
    #: virtual seconds one recording trial costs (paper §5.1)
    recording_seconds: float = 0.0

    @abc.abstractmethod
    def record(self, trace: Trace, rng: random.Random) -> RawOutput:
        """Consume one recording window and emit native provenance output.

        ``rng`` drives run-to-run volatility internal to the tool itself
        (e.g. CamFlow's occasional structural variation, paper §3.2); the
        kernel's own volatility already lives in ``trace``.
        """

    def recording_cost(self, rng: random.Random) -> RecordingCost:
        """Virtual recording time for one trial, with small jitter."""
        jitter = 1.0 + rng.uniform(-0.1, 0.1)
        return RecordingCost(seconds=self.recording_seconds * jitter)
