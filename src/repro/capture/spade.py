"""Simulated SPADEv2 with the Linux Audit reporter.

SPADE runs in user space and assembles an OPM-style graph (Process /
Artifact / Agent vertices; Used / WasGeneratedBy / WasTriggeredBy /
WasDerivedFrom / WasControlledBy edges) from audit records.  Key behaviours
reproduced from the paper:

* default audit rules report **successful** calls only (§3.1, Alice);
* a fixed syscall set is rendered; ``dup``/``mknod``/``chown``/pipes are
  not (Table 2 notes NR / SC);
* with ``simplify`` enabled (default), ``setresuid``/``setresgid`` are not
  explicitly audited, but changes to process credentials observed on later
  records are rendered as a process update (note SC);
* with ``simplify`` disabled they are audited explicitly — and the
  benchmarked SPADE version had a bug where one property of the emitted
  edge was initialized to a random value, surfacing as a disconnected
  subgraph (§3.1, Bob); ``simplify_bug_fixed`` models the upstream fix;
* the ``IORuns`` filter should coalesce runs of reads/writes but matched
  the wrong property name in the benchmarked version, so it had no effect
  (§3.1, Bob); ``ioruns_bug_fixed`` models the fix;
* ``vfork`` children appear as disconnected process vertices because Linux
  Audit reports the parent's vfork after the child already ran (§4.2,
  note DV);
* optional artifact ``versioning`` (off in the baseline configuration).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.capture.base import CaptureSystem, RawOutput
from repro.storage.neo4jsim import Neo4jSim
from repro.graph.dot import graph_to_dot
from repro.graph.model import PropertyGraph
from repro.kernel.trace import AuditEvent, ObjectInfo, Trace

#: Syscalls rendered by the baseline configuration (simplify on).
BASE_RENDER_SET = frozenset({
    "open", "openat", "creat", "close",
    "read", "pread", "write", "pwrite",
    "link", "linkat", "symlink", "symlinkat",
    "rename", "renameat", "truncate", "ftruncate",
    "unlink", "unlinkat",
    "fork", "vfork", "clone", "execve",
    "chmod", "fchmod", "fchmodat",
    "setuid", "setreuid", "setgid", "setregid",
})

#: Extra syscalls audited when ``simplify`` is disabled (paper §3.1, Bob).
NO_SIMPLIFY_EXTRA = frozenset({"setresuid", "setresgid"})

_USED = "Used"
_WGB = "WasGeneratedBy"
_WTB = "WasTriggeredBy"
_WDF = "WasDerivedFrom"
_WCB = "WasControlledBy"


@dataclass
class SpadeConfig:
    """Knobs mirroring the real SPADE configuration surface."""

    simplify: bool = True
    simplify_bug_fixed: bool = False
    ioruns_filter: bool = False
    ioruns_bug_fixed: bool = False
    versioning: bool = False
    audit_success_only: bool = True
    #: "dot" (Graphviz storage, the paper's ``spg`` profile) or "neo4j"
    #: (the ``spn`` profile).
    storage: str = "dot"


class SpadeCapture(CaptureSystem):
    """SPADE + Linux Audit reporter + Graphviz or Neo4j storage."""

    name = "spade"
    output_format = "dot"
    recording_seconds = 20.0

    def __init__(self, config: Optional[SpadeConfig] = None) -> None:
        self.config = config or SpadeConfig()
        if self.config.storage not in ("dot", "neo4j"):
            raise ValueError(f"unknown SPADE storage {self.config.storage!r}")
        self.output_format = self.config.storage

    # -- public API ---------------------------------------------------------

    def record(self, trace: Trace, rng: random.Random) -> RawOutput:
        builder = _SpadeGraphBuilder(self.config, rng)
        for event in trace.audit:
            builder.feed(event)
        graph = builder.graph
        if self.config.ioruns_filter:
            graph = _apply_ioruns_filter(graph, self.config.ioruns_bug_fixed)
        if self.config.storage == "neo4j":
            return _graph_to_store(graph)
        return graph_to_dot(graph, name="spade")

    def render_set(self) -> frozenset:
        if self.config.simplify:
            return BASE_RENDER_SET
        return BASE_RENDER_SET | NO_SIMPLIFY_EXTRA


class _SpadeGraphBuilder:
    """Streams audit events into an OPM property graph."""

    def __init__(self, config: SpadeConfig, rng: random.Random) -> None:
        self.config = config
        self.rng = rng
        self.graph = PropertyGraph("spade")
        self._seq = 0
        #: pid -> current process vertex id
        self._process_vertex: Dict[int, str] = {}
        #: pid -> creds snapshot used for change detection (note SC)
        self._last_creds: Dict[int, Tuple[str, ...]] = {}
        #: (ino or path) -> artifact vertex id
        self._artifact_vertex: Dict[str, str] = {}
        #: uid -> agent vertex id
        self._agent_vertex: Dict[str, str] = {}

    # -- id allocation (volatile across runs, like SPADE's hashes) ------------

    def _vertex_id(self) -> str:
        self._seq += 1
        return f"v{self.rng.randrange(16**8):08x}{self._seq}"

    def _edge_id(self) -> str:
        self._seq += 1
        return f"e{self.rng.randrange(16**8):08x}{self._seq}"

    # -- vertex management -------------------------------------------------------

    def _ensure_process(self, event: AuditEvent, pid: Optional[int] = None) -> str:
        subject = event.subject
        key = pid if pid is not None else subject.pid
        existing = self._process_vertex.get(key)
        if existing is not None:
            return existing
        props = {
            "pid": str(key),
            "ppid": str(subject.ppid) if key == subject.pid else str(subject.pid),
            "name": subject.comm,
            "exe": subject.exe,
            "uid": str(subject.uid),
            "euid": str(subject.euid),
            "gid": str(subject.gid),
            "source": "syscall",
            "start time": str(event.time_ns),
        }
        vertex = self.graph.add_node(self._vertex_id(), "Process", props)
        self._process_vertex[key] = vertex.id
        if key == subject.pid:
            self._last_creds[key] = self._creds_key(event)
        return vertex.id

    def _creds_key(self, event: AuditEvent) -> Tuple[str, ...]:
        subject = event.subject
        return (
            str(subject.uid), str(subject.euid), str(subject.gid),
            str(subject.egid), str(subject.suid), str(subject.sgid),
        )

    def _artifact_key(self, obj: ObjectInfo) -> str:
        if obj.kind == "pipe":
            return f"pipe:{obj.pipe_id}"
        if obj.ino is not None:
            return f"ino:{obj.ino}"
        return f"path:{obj.path}"

    def _ensure_artifact(self, obj: ObjectInfo, event: AuditEvent) -> str:
        key = self._artifact_key(obj)
        existing = self._artifact_vertex.get(key)
        if existing is not None:
            return existing
        props = {
            "subtype": obj.kind,
            "path": obj.path or "",
            "ino": str(obj.ino) if obj.ino is not None else "",
            "version": str(obj.version or 0),
            "time": str(event.time_ns),
        }
        vertex = self.graph.add_node(self._vertex_id(), "Artifact", props)
        self._artifact_vertex[key] = vertex.id
        return vertex.id

    def _new_artifact_version(self, obj: ObjectInfo, event: AuditEvent) -> str:
        """With versioning on, a write creates a fresh artifact vertex
        derived from the previous one."""
        key = self._artifact_key(obj)
        previous = self._artifact_vertex.get(key)
        if previous is None or not self.config.versioning:
            return self._ensure_artifact(obj, event)
        props = dict(self.graph.node(previous).props)
        props["version"] = str(int(props.get("version") or 0) + 1)
        vertex = self.graph.add_node(self._vertex_id(), "Artifact", props)
        self.graph.add_edge(
            self._edge_id(), vertex.id, previous, _WDF,
            {"operation": "update", "time": str(event.time_ns)},
        )
        self._artifact_vertex[key] = vertex.id
        return vertex.id

    def _ensure_agent(self, event: AuditEvent) -> str:
        uid = str(event.subject.euid)
        existing = self._agent_vertex.get(uid)
        if existing is not None:
            return existing
        vertex = self.graph.add_node(
            self._vertex_id(), "Agent",
            {"uid": uid, "gid": str(event.subject.egid), "source": "syscall"},
        )
        self._agent_vertex[uid] = vertex.id
        return vertex.id

    def _edge(
        self, src: str, tgt: str, label: str, event: AuditEvent, operation: str,
        extra: Optional[Dict[str, str]] = None,
    ) -> None:
        props = {
            "operation": operation,
            "time": str(event.time_ns),
            "pid": str(event.subject.pid),
        }
        if extra:
            props.update(extra)
        self.graph.add_edge(self._edge_id(), src, tgt, label, props)

    # -- event dispatch ------------------------------------------------------------

    def render_set(self) -> frozenset:
        if self.config.simplify:
            return BASE_RENDER_SET
        return BASE_RENDER_SET | NO_SIMPLIFY_EXTRA

    def feed(self, event: AuditEvent) -> None:
        if self.config.audit_success_only and not event.success:
            return
        process = self._ensure_process(event)
        self._detect_cred_change(event, process)
        process = self._process_vertex[event.subject.pid]
        if event.syscall not in self.render_set():
            return
        handler = getattr(self, f"_on_{event.syscall}", None)
        if handler is not None:
            handler(event, process)

    def _detect_cred_change(self, event: AuditEvent, process: str) -> None:
        """Note SC: render observed credential changes as process updates."""
        pid = event.subject.pid
        current = self._creds_key(event)
        last = self._last_creds.get(pid)
        self._last_creds[pid] = current
        if last is None or last == current:
            return
        if event.syscall.startswith("set") and event.syscall in self.render_set():
            # The explicit handler renders this change itself.
            return
        old_vertex = self._process_vertex[pid]
        props = dict(self.graph.node(old_vertex).props)
        props.update({
            "uid": str(event.subject.uid),
            "euid": str(event.subject.euid),
            "gid": str(event.subject.gid),
        })
        new_vertex = self.graph.add_node(self._vertex_id(), "Process", props)
        self._process_vertex[pid] = new_vertex.id
        self._edge(new_vertex.id, old_vertex, _WTB, event, "update")

    # -- per-syscall rendering -------------------------------------------------------

    def _object(self, event: AuditEvent, role: str) -> Optional[ObjectInfo]:
        for obj in event.objects:
            if obj.role == role:
                return obj
        return None

    def _on_open(self, event: AuditEvent, process: str) -> None:
        obj = self._object(event, "path")
        if obj is None:
            return
        artifact = self._ensure_artifact(obj, event)
        self._edge(process, artifact, _USED, event, "open")

    _on_openat = _on_open

    def _on_creat(self, event: AuditEvent, process: str) -> None:
        obj = self._object(event, "path")
        if obj is None:
            return
        artifact = self._ensure_artifact(obj, event)
        self._edge(artifact, process, _WGB, event, "creat")

    def _on_close(self, event: AuditEvent, process: str) -> None:
        obj = self._object(event, "fd")
        if obj is None:
            return
        artifact = self._ensure_artifact(obj, event)
        self._edge(process, artifact, _USED, event, "close")

    def _on_read(self, event: AuditEvent, process: str) -> None:
        obj = self._object(event, "fd")
        if obj is None or obj.kind == "pipe":
            return
        artifact = self._ensure_artifact(obj, event)
        self._edge(process, artifact, _USED, event, event.syscall,
                   {"size": "64"})

    _on_pread = _on_read

    def _on_write(self, event: AuditEvent, process: str) -> None:
        obj = self._object(event, "fd")
        if obj is None or obj.kind == "pipe":
            return
        artifact = self._new_artifact_version(obj, event)
        self._edge(artifact, process, _WGB, event, event.syscall,
                   {"size": "5"})

    _on_pwrite = _on_write

    def _on_link(self, event: AuditEvent, process: str) -> None:
        old_obj = self._object(event, "oldpath")
        new_obj = self._object(event, "newpath") or self._object(event, "linkpath")
        if old_obj is None or new_obj is None:
            return
        old_artifact = self._ensure_artifact(old_obj, event)
        # A hard link shares the inode; key the new name by path.
        new_key_obj = ObjectInfo(
            kind=new_obj.kind, role=new_obj.role, ino=None, path=new_obj.path,
            version=new_obj.version,
        )
        new_artifact = self._ensure_artifact(new_key_obj, event)
        self._edge(new_artifact, old_artifact, _WDF, event, event.syscall)
        self._edge(new_artifact, process, _WGB, event, event.syscall)
        self._edge(process, old_artifact, _USED, event, event.syscall)

    _on_linkat = _on_link

    def _on_symlink(self, event: AuditEvent, process: str) -> None:
        link_obj = self._object(event, "linkpath")
        if link_obj is None:
            return
        artifact = self._ensure_artifact(link_obj, event)
        self._edge(artifact, process, _WGB, event, event.syscall)

    _on_symlinkat = _on_symlink

    def _on_rename(self, event: AuditEvent, process: str) -> None:
        old_obj = self._object(event, "oldpath")
        new_obj = self._object(event, "newpath")
        if old_obj is None or new_obj is None:
            return
        old_key_obj = ObjectInfo(
            kind=old_obj.kind, role=old_obj.role, ino=None, path=old_obj.path,
            version=old_obj.version,
        )
        new_key_obj = ObjectInfo(
            kind=new_obj.kind, role=new_obj.role, ino=None, path=new_obj.path,
            version=new_obj.version,
        )
        old_artifact = self._ensure_artifact(old_key_obj, event)
        new_artifact = self._ensure_artifact(new_key_obj, event)
        self._edge(new_artifact, old_artifact, _WDF, event, event.syscall)
        self._edge(new_artifact, process, _WGB, event, event.syscall)
        self._edge(process, old_artifact, _USED, event, event.syscall)

    _on_renameat = _on_rename

    def _on_truncate(self, event: AuditEvent, process: str) -> None:
        obj = self._object(event, "path") or self._object(event, "fd")
        if obj is None:
            return
        artifact = self._new_artifact_version(obj, event)
        self._edge(artifact, process, _WGB, event, event.syscall)

    _on_ftruncate = _on_truncate

    def _on_unlink(self, event: AuditEvent, process: str) -> None:
        obj = self._object(event, "path")
        if obj is None:
            return
        artifact = self._ensure_artifact(obj, event)
        self._edge(artifact, process, _WGB, event, event.syscall)

    _on_unlinkat = _on_unlink

    def _on_fork(self, event: AuditEvent, process: str) -> None:
        child_obj = self._object(event, "child")
        if child_obj is None or child_obj.pid is None:
            return
        if child_obj.pid in self._process_vertex:
            # The child was already seen executing (vfork ordering): SPADE
            # keeps the existing, disconnected vertex (paper §4.2, note DV).
            return
        child = self._ensure_process(event, pid=child_obj.pid)
        self._edge(child, process, _WTB, event, event.syscall)

    _on_vfork = _on_fork
    _on_clone = _on_fork

    def _on_execve(self, event: AuditEvent, process: str) -> None:
        exe_obj = self._object(event, "exe")
        old_exe_obj = self._object(event, "old_exe")
        pid = event.subject.pid
        old_vertex = self._process_vertex[pid]
        props = dict(self.graph.node(old_vertex).props)
        props.update({
            "name": event.subject.comm,
            "exe": event.subject.exe,
            "commandline": " ".join(event.args),
        })
        new_vertex = self.graph.add_node(self._vertex_id(), "Process", props)
        self._process_vertex[pid] = new_vertex.id
        self._edge(new_vertex.id, old_vertex, _WTB, event, "execve")
        if exe_obj is not None:
            exe_artifact = self._ensure_artifact(exe_obj, event)
            self._edge(new_vertex.id, exe_artifact, _USED, event, "load")
        if old_exe_obj is not None:
            old_artifact = self._ensure_artifact(old_exe_obj, event)
            self._edge(process, old_artifact, _USED, event, "load")
        agent = self._ensure_agent(event)
        self._edge(new_vertex.id, agent, _WCB, event, "execve")

    def _on_chmod(self, event: AuditEvent, process: str) -> None:
        obj = self._object(event, "path") or self._object(event, "fd")
        if obj is None:
            return
        artifact = self._new_artifact_version(obj, event)
        self._edge(artifact, process, _WGB, event, event.syscall,
                   {"mode": obj.mode or ""})

    _on_fchmod = _on_chmod
    _on_fchmodat = _on_chmod

    def _cred_syscall(self, event: AuditEvent, process: str) -> None:
        """Explicitly audited credential calls (setuid family)."""
        pid = event.subject.pid
        old_vertex = self._process_vertex[pid]
        props = dict(self.graph.node(old_vertex).props)
        props.update({
            "uid": str(event.subject.uid),
            "euid": str(event.subject.euid),
            "gid": str(event.subject.gid),
        })
        new_vertex = self.graph.add_node(self._vertex_id(), "Process", props)
        self._process_vertex[pid] = new_vertex.id
        self._edge(new_vertex.id, old_vertex, _WTB, event, event.syscall)

    _on_setuid = _cred_syscall
    _on_setreuid = _cred_syscall
    _on_setgid = _cred_syscall
    _on_setregid = _cred_syscall

    def _cred_syscall_nosimplify(self, event: AuditEvent, process: str) -> None:
        """setres[ug]id with simplify disabled.

        The benchmarked SPADE had a bug here: one property of the emitted
        edge — the vertex hash it pointed at — was initialized from
        uninitialized memory, so the edge dangles at a vertex that does not
        exist, surfacing as a disconnected subgraph in the benchmark
        (paper §3.1, Bob).  ``simplify_bug_fixed`` renders the intended
        structure instead.
        """
        pid = event.subject.pid
        old_vertex = self._process_vertex[pid]
        props = dict(self.graph.node(old_vertex).props)
        props.update({
            "uid": str(event.subject.uid),
            "euid": str(event.subject.euid),
            "gid": str(event.subject.gid),
        })
        new_vertex = self.graph.add_node(self._vertex_id(), "Process", props)
        self._process_vertex[pid] = new_vertex.id
        if self.config.simplify_bug_fixed:
            self._edge(new_vertex.id, old_vertex, _WTB, event, event.syscall)
        else:
            bogus = self.graph.add_node(
                f"v{self.rng.randrange(16**12):012x}", "Process",
                {"source": "uninitialized"},
            )
            self._edge(new_vertex.id, bogus.id, _WTB, event, event.syscall)

    _on_setresuid = _cred_syscall_nosimplify
    _on_setresgid = _cred_syscall_nosimplify


def _apply_ioruns_filter(graph: PropertyGraph, bug_fixed: bool) -> PropertyGraph:
    """SPADE's IORuns filter: coalesce runs of identical read/write edges.

    The benchmarked version matched on a property name the Audit reporter
    no longer generated, so it never coalesced anything (paper §3.1, Bob).
    We model it as the filter matching the stale key ``"opname"`` versus
    the actual key ``"operation"`` once fixed.
    """
    match_key = "operation" if bug_fixed else "opname"
    out = PropertyGraph(graph.gid)
    for node in graph.nodes():
        out.add_node(node.id, node.label, node.props)
    seen_runs: Dict[Tuple[str, str, str, str], str] = {}
    for edge in graph.edges():
        operation = edge.props.get(match_key, "")
        if operation in ("read", "pread", "write", "pwrite"):
            run_key = (edge.src, edge.tgt, edge.label, operation)
            existing = seen_runs.get(run_key)
            if existing is not None:
                count = int(out.edge(existing).props.get("count", "1")) + 1
                out.set_prop(existing, "count", str(count))
                continue
            new_edge = out.add_edge(edge.id, edge.src, edge.tgt, edge.label, edge.props)
            seen_runs[run_key] = new_edge.id
        else:
            out.add_edge(edge.id, edge.src, edge.tgt, edge.label, edge.props)
    return out


def _graph_to_store(graph: PropertyGraph) -> Neo4jSim:
    """SPADE's Neo4j storage (the ``spn`` profile): vertices and edges go
    into the database keyed by sequential internal ids."""
    store = Neo4jSim()
    index = {}
    next_id = 1
    for node in graph.nodes():
        index[node.id] = next_id
        props = dict(node.props)
        props["hash"] = node.id
        store.create_node(next_id, node.label, props)
        next_id += 1
    for edge in graph.edges():
        props = dict(edge.props)
        props["hash"] = edge.id
        store.create_relationship(
            next_id, index[edge.src], index[edge.tgt], edge.label, props
        )
        next_id += 1
    return store
