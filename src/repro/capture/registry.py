"""Capture-backend plugin registry.

The tool knowledge that used to live in two hard-coded tables —
``TOOLS`` in :mod:`repro.capture` and ``TOOL_PROFILES`` in
:mod:`repro.core.pipeline` — lives here as a single registry of
:class:`Backend` entries.  Each entry pairs the capture class with its
:class:`BackendProfile` (default trial count and graph filtering, the
paper's config.ini knobs), so the pipeline, the CLI tool choices, and
the profile loader all read one source of truth.

New capture systems plug in without touching the driver::

    from repro.capture.registry import BackendProfile, register_tool

    register_tool("dtrace", DTraceCapture,
                  BackendProfile(trials=3, description="DTrace probes"))

after which ``ProvMark(tool="dtrace")``, ``provmark run --tool dtrace``
and ``provmark list --tools`` all work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple, Type

from repro.capture.base import CaptureSystem
from repro.capture.camflow import CamFlowCapture
from repro.capture.opus import OpusCapture
from repro.capture.spade import SpadeCapture
from repro.capture.spade_camflow import SpadeCamFlowCapture


class UnknownToolError(ValueError):
    """Raised for tool names with no registered capture backend."""


@dataclass(frozen=True)
class BackendProfile:
    """Per-tool pipeline defaults (ProvMark's config.ini profile)."""

    trials: int = 2
    filtergraphs: bool = False
    description: str = ""


@dataclass(frozen=True)
class Backend:
    """One registered capture backend: name, class, and defaults."""

    name: str
    cls: Type[CaptureSystem]
    profile: BackendProfile

    def make(self, config: Optional[object] = None) -> CaptureSystem:
        if config is None:
            return self.cls()
        return self.cls(config)  # type: ignore[call-arg]


_REGISTRY: Dict[str, Backend] = {}


def register_tool(
    name: str,
    cls: Type[CaptureSystem],
    profile: Optional[BackendProfile] = None,
    replace: bool = False,
) -> Backend:
    """Register a capture backend under ``name``.

    ``replace`` must be passed to overwrite an existing registration;
    accidental double-registration is an error.
    """
    if not name:
        raise ValueError("tool name must be non-empty")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"tool {name!r} is already registered; pass replace=True "
            "to override it"
        )
    backend = Backend(name=name, cls=cls, profile=profile or BackendProfile())
    _REGISTRY[name] = backend
    return backend


def unregister_tool(name: str) -> None:
    """Remove a registration (primarily for tests of plugin backends)."""
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> Backend:
    """Look a backend up by name.

    This is the single place unknown-tool errors are produced, so every
    caller — ``make_capture``, config resolution, the CLI — reports the
    same message listing the registered tools.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownToolError(
            f"unknown tool {name!r}; registered tools: {sorted(_REGISTRY)}"
        ) from None


def tool_profile(name: str) -> BackendProfile:
    return get_backend(name).profile


def registered_tools() -> Tuple[str, ...]:
    """Registered tool names, sorted (the CLI's ``--tool`` choices)."""
    return tuple(sorted(_REGISTRY))


def iter_backends() -> Iterator[Backend]:
    for name in sorted(_REGISTRY):
        yield _REGISTRY[name]


def make_capture(name: str, config: Optional[object] = None) -> CaptureSystem:
    """Instantiate a registered capture system by name."""
    return get_backend(name).make(config)


def _register_builtins() -> None:
    register_tool("spade", SpadeCapture, BackendProfile(
        trials=2, filtergraphs=False,
        description="SPADE over Linux Audit (DOT output)",
    ))
    register_tool("opus", OpusCapture, BackendProfile(
        trials=2, filtergraphs=False,
        description="OPUS userspace interposition (Neo4j store)",
    ))
    # CamFlow defaults mirror the paper's appendix A.4/A.6: graph
    # filtering on, more trials to survive recording-restart jitter.
    register_tool("camflow", CamFlowCapture, BackendProfile(
        trials=5, filtergraphs=True,
        description="CamFlow LSM hooks (PROV-JSON output)",
    ))
    register_tool("spade-camflow", SpadeCamFlowCapture, BackendProfile(
        trials=2, filtergraphs=False,
        description="SPADE vocabulary over the CamFlow reporter",
    ))


_register_builtins()
