"""Simulated OPUS: observational provenance in user space.

OPUS intercepts C-library calls and builds a Provenance Versioning Model
(PVM) graph stored in Neo4j.  Behaviours reproduced from the paper:

* it observes the *libc* stream, so it sees **failed** calls too and
  renders the same structure with a ``retval`` of ``-1`` (§3.1, Alice);
* it is blind to anything that does not go through an intercepted
  library function: ``clone``, ``mknodat``, ``fchmod``, ``fchown``,
  ``setres[ug]id``, ``tee`` are not wrapped (Table 2, note NR), and
  reads/writes are not recorded in the default configuration;
* process nodes carry the environment, which makes OPUS graphs much
  larger than SPADE's or CamFlow's (§5.1) — we render one ``Env`` node
  per variable, re-captured for each ``fork``/``vfork`` child (which is
  why the paper's fork graphs are large for OPUS);
* after ``execve`` the interposition layer re-initializes, so the new
  image's startup activity is missed and the execve graph stays small
  (§4.2);
* everything lands in :class:`~repro.storage.neo4jsim.Neo4jSim`, whose
  startup/query costs dominate ProvMark's OPUS timings (Figures 6 and 9).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.capture.base import CaptureSystem, RawOutput
from repro.kernel.trace import LibcEvent, Trace
from repro.storage.neo4jsim import Neo4jSim

#: libc functions wrapped by the default OPUS interposition set.
WRAPPED_FUNCTIONS = frozenset({
    "open", "openat", "creat", "close",
    "dup", "dup2", "dup3",
    "link", "linkat", "symlink", "symlinkat", "mknod",
    "rename", "renameat", "truncate", "ftruncate",
    "unlink", "unlinkat",
    "fork", "vfork", "execve",
    "chmod", "fchmodat", "chown", "fchownat",
    "setuid", "setreuid", "setgid", "setregid",
    "pipe", "pipe2",
})


@dataclass
class OpusConfig:
    """Default OPUS 0.1.x configuration surface."""

    record_io: bool = False  # reads/writes are ignored by default
    capture_environment: bool = True
    environment_size: int = 8


class OpusCapture(CaptureSystem):
    """OPUS + PVM + Neo4j storage."""

    name = "opus"
    output_format = "neo4j"
    recording_seconds = 28.0

    def __init__(self, config: Optional[OpusConfig] = None) -> None:
        self.config = config or OpusConfig()

    def record(self, trace: Trace, rng: random.Random) -> RawOutput:
        builder = _PvmBuilder(self.config, rng)
        for event in trace.libc:
            builder.feed(event)
        store = Neo4jSim()
        builder.flush(store)
        return store

    def wrapped(self, function: str) -> bool:
        if function in ("read", "pread", "write", "pwrite"):
            return self.config.record_io
        return function in WRAPPED_FUNCTIONS


class _PvmBuilder:
    """Builds the PVM node/relationship set from libc events."""

    def __init__(self, config: OpusConfig, rng: random.Random) -> None:
        self.config = config
        self.rng = rng
        self._next_id = rng.randrange(10_000, 90_000)
        self.nodes: List[Tuple[int, str, Dict[str, str]]] = []
        self.rels: List[Tuple[int, int, int, str, Dict[str, str]]] = []
        #: pid -> process node id
        self._process_node: Dict[int, int] = {}
        #: pids whose interposition layer is re-initializing after execve
        self._exec_blackout: Dict[int, bool] = {}
        #: global name -> (global node id, current version node id, version)
        self._globals: Dict[str, Tuple[int, int, int]] = {}

    def _alloc(self) -> int:
        self._next_id += 1
        return self._next_id

    def _add_node(self, label: str, props: Dict[str, str]) -> int:
        node_id = self._alloc()
        self.nodes.append((node_id, label, props))
        return node_id

    def _add_rel(
        self, start: int, end: int, rel_type: str,
        props: Optional[Dict[str, str]] = None,
    ) -> int:
        rel_id = self._alloc()
        self.rels.append((rel_id, start, end, rel_type, props or {}))
        return rel_id

    # -- process and environment ------------------------------------------------

    def _ensure_process(self, event: LibcEvent) -> int:
        pid = event.subject.pid
        existing = self._process_node.get(pid)
        if existing is not None:
            return existing
        node = self._add_node("Process", {
            "pid": str(pid),
            "cmd": event.subject.exe,
            "user": str(event.subject.uid),
            "timestamp": str(event.time_ns),
            "sys_meta": "linux",
        })
        self._process_node[pid] = node
        if self.config.capture_environment:
            self._dump_environment(node, event)
        return node

    def _dump_environment(self, process_node: int, event: LibcEvent) -> None:
        """One ``Env`` node per variable — the reason OPUS graphs are big."""
        env = {
            "PATH": "/usr/local/bin:/usr/bin:/bin",
            "HOME": "/home/bench",
            "LANG": "C.UTF-8",
            "SHELL": "/bin/sh",
            "USER": f"uid{event.subject.uid}",
            "TERM": "xterm",
            "PWD": "/home/bench/staging",
            "OPUS_MASTER": f"port-{self.rng.randrange(30000, 60000)}",
        }
        for index, (key, value) in enumerate(sorted(env.items())):
            if index >= self.config.environment_size:
                break
            env_node = self._add_node("Env", {"name": key, "value": value})
            self._add_rel(process_node, env_node, "ENV", {})

    # -- globals and versions -------------------------------------------------------

    def _global_version(
        self, name: str, event: LibcEvent, bump: bool
    ) -> Tuple[int, int]:
        """Return (global node, current version node), bumping if asked."""
        entry = self._globals.get(name)
        if entry is None:
            global_node = self._add_node("Global", {"name": name})
            version_node = self._add_node("GlobalVersion", {
                "name": name, "version": "1", "timestamp": str(event.time_ns),
            })
            self._add_rel(version_node, global_node, "NAMED", {})
            self._globals[name] = (global_node, version_node, 1)
            return global_node, version_node
        global_node, version_node, version = entry
        if bump:
            new_version = self._add_node("GlobalVersion", {
                "name": name,
                "version": str(version + 1),
                "timestamp": str(event.time_ns),
            })
            self._add_rel(new_version, version_node, "PREV_VERSION", {})
            self._add_rel(new_version, global_node, "NAMED", {})
            self._globals[name] = (global_node, new_version, version + 1)
            return global_node, new_version
        return global_node, version_node

    def _call_node(self, event: LibcEvent, process_node: int) -> int:
        call = self._add_node("Call", {
            "function": event.function,
            "args": ", ".join(event.args),
            "retval": str(event.retval),
            "errno": event.errno or "0",
            "timestamp": str(event.time_ns),
        })
        self._add_rel(call, process_node, "PROC_OBJ", {})
        return call

    def _object_path(self, event: LibcEvent, *roles: str) -> Optional[str]:
        for role in roles:
            for obj in event.objects:
                if obj.role == role and obj.path:
                    return obj.path
        # Fall back to the first path-bearing object.
        for obj in event.objects:
            if obj.path:
                return obj.path
        return None

    # -- event dispatch ----------------------------------------------------------------

    def feed(self, event: LibcEvent) -> None:
        if event.function in ("read", "pread", "write", "pwrite"):
            if not self.config.record_io:
                return
        elif event.function not in WRAPPED_FUNCTIONS:
            return
        pid = event.subject.pid
        if self._exec_blackout.get(pid):
            # Interposition re-init after execve: the loader's own library
            # activity is missed; the first non-loader call re-arms capture.
            if self._is_loader_activity(event):
                return
            self._exec_blackout[pid] = False
        process_node = self._ensure_process(event)
        handler = getattr(self, f"_on_{event.function}", self._on_generic)
        handler(event, process_node)

    @staticmethod
    def _is_loader_activity(event: LibcEvent) -> bool:
        """Dynamic-loader calls reference the system library directories."""
        paths = [obj.path for obj in event.objects if obj.path]
        return bool(paths) and all(
            path.startswith(("/lib", "/usr/lib")) for path in paths
        )

    # -- per-call rendering ---------------------------------------------------------------

    def _on_generic(self, event: LibcEvent, process_node: int) -> None:
        self._call_node(event, process_node)

    def _on_open(self, event: LibcEvent, process_node: int) -> None:
        path = self._object_path(event, "path")
        if path is None:
            return
        call = self._call_node(event, process_node)
        local = self._add_node("LocalVersion", {
            "fd": str(event.retval), "flags": "O_RDWR",
        })
        self._add_rel(local, call, "GENERATED_BY", {})
        if event.success:
            _, version = self._global_version(path, event, bump=False)
            self._add_rel(local, version, "BINDS_TO", {})
        else:
            name_node, _ = self._global_version(path, event, bump=False)

    _on_openat = _on_open
    _on_creat = _on_open

    def _on_close(self, event: LibcEvent, process_node: int) -> None:
        call = self._call_node(event, process_node)
        for obj in event.objects:
            if obj.path:
                _, version = self._global_version(obj.path, event, bump=False)
                self._add_rel(call, version, "CLOSES", {})
                break

    def _on_dup(self, event: LibcEvent, process_node: int) -> None:
        # Two components, both hanging off the process node (paper §4.1).
        self._call_node(event, process_node)
        resource = self._add_node("LocalVersion", {
            "fd": str(event.retval), "origin": "dup",
        })
        self._add_rel(resource, process_node, "PROC_OBJ", {})

    _on_dup2 = _on_dup
    _on_dup3 = _on_dup

    def _on_read(self, event: LibcEvent, process_node: int) -> None:
        call = self._call_node(event, process_node)
        path = self._object_path(event)
        if path is not None:
            _, version = self._global_version(path, event, bump=False)
            self._add_rel(call, version, "READS", {})

    _on_pread = _on_read

    def _on_write(self, event: LibcEvent, process_node: int) -> None:
        call = self._call_node(event, process_node)
        path = self._object_path(event)
        if path is not None:
            _, version = self._global_version(path, event, bump=event.success)
            self._add_rel(version, call, "GENERATED_BY", {})

    _on_pwrite = _on_write

    def _two_name_call(
        self, event: LibcEvent, process_node: int,
        old_role: str, new_role: str, derive: bool,
    ) -> None:
        call = self._call_node(event, process_node)
        old_path = self._object_path(event, old_role)
        new_path = self._object_path(event, new_role)
        old_version = None
        if old_path is not None:
            _, old_version = self._global_version(old_path, event, bump=False)
            self._add_rel(call, old_version, "READS", {})
        if new_path is not None:
            _, new_version = self._global_version(
                new_path, event, bump=event.success
            )
            self._add_rel(new_version, call, "GENERATED_BY", {})
            if derive and old_version is not None:
                self._add_rel(new_version, old_version, "DERIVED_FROM", {})

    def _on_rename(self, event: LibcEvent, process_node: int) -> None:
        self._two_name_call(event, process_node, "oldpath", "newpath", derive=True)

    _on_renameat = _on_rename

    def _on_link(self, event: LibcEvent, process_node: int) -> None:
        self._two_name_call(event, process_node, "oldpath", "newpath", derive=True)

    _on_linkat = _on_link

    def _on_symlink(self, event: LibcEvent, process_node: int) -> None:
        call = self._call_node(event, process_node)
        link_path = self._object_path(event, "linkpath")
        if link_path is not None:
            _, version = self._global_version(link_path, event, bump=event.success)
            self._add_rel(version, call, "GENERATED_BY", {})

    _on_symlinkat = _on_symlink
    _on_mknod = _on_symlink

    def _single_name_write(self, event: LibcEvent, process_node: int) -> None:
        call = self._call_node(event, process_node)
        path = self._object_path(event, "path", "fd")
        if path is not None:
            _, version = self._global_version(path, event, bump=event.success)
            self._add_rel(version, call, "GENERATED_BY", {})

    _on_truncate = _single_name_write
    _on_ftruncate = _single_name_write
    _on_chmod = _single_name_write
    _on_fchmodat = _single_name_write
    _on_chown = _single_name_write
    _on_fchownat = _single_name_write

    def _on_unlink(self, event: LibcEvent, process_node: int) -> None:
        call = self._call_node(event, process_node)
        path = self._object_path(event, "path")
        if path is not None:
            _, version = self._global_version(path, event, bump=False)
            self._add_rel(call, version, "DELETES", {})

    _on_unlinkat = _on_unlink

    def _on_fork(self, event: LibcEvent, process_node: int) -> None:
        call = self._call_node(event, process_node)
        if not event.success:
            return
        child_pid = event.retval
        child_node = self._add_node("Process", {
            "pid": str(child_pid),
            "cmd": event.subject.exe,
            "user": str(event.subject.uid),
            "timestamp": str(event.time_ns),
            "sys_meta": "linux",
        })
        self._process_node[child_pid] = child_node
        self._add_rel(child_node, call, "GENERATED_BY", {})
        self._add_rel(child_node, process_node, "FORKED_FROM", {})
        # OPUS re-captures the environment in the child — the reason its
        # fork graphs are large (paper §4.2).
        if self.config.capture_environment:
            self._dump_environment(child_node, event)

    _on_vfork = _on_fork

    def _on_execve(self, event: LibcEvent, process_node: int) -> None:
        call = self._call_node(event, process_node)
        path = self._object_path(event, "exe")
        if path is not None:
            _, version = self._global_version(path, event, bump=False)
            self._add_rel(call, version, "READS", {})
        if event.success:
            new_process = self._add_node("Process", {
                "pid": str(event.subject.pid),
                "cmd": event.subject.exe,
                "user": str(event.subject.uid),
                "timestamp": str(event.time_ns),
                "sys_meta": "linux",
            })
            self._add_rel(new_process, call, "GENERATED_BY", {})
            self._process_node[event.subject.pid] = new_process
            # Interposition re-initializes: loader activity is missed.
            self._exec_blackout[event.subject.pid] = True

    def _on_pipe(self, event: LibcEvent, process_node: int) -> None:
        call = self._call_node(event, process_node)
        for obj in event.objects:
            if obj.kind == "pipe":
                resource = self._add_node("LocalVersion", {
                    "fd": str(obj.fd), "origin": "pipe", "end": obj.role,
                })
                self._add_rel(resource, call, "GENERATED_BY", {})

    _on_pipe2 = _on_pipe

    def _cred_call(self, event: LibcEvent, process_node: int) -> None:
        call = self._call_node(event, process_node)
        state = self._add_node("ProcessState", {
            "uid": str(event.subject.uid),
            "euid": str(event.subject.euid),
            "gid": str(event.subject.gid),
        })
        self._add_rel(state, call, "GENERATED_BY", {})

    _on_setuid = _cred_call
    _on_setreuid = _cred_call
    _on_setgid = _cred_call
    _on_setregid = _cred_call

    # -- output ---------------------------------------------------------------------------

    def flush(self, store: Neo4jSim) -> None:
        for node_id, label, props in self.nodes:
            store.create_node(node_id, label, props)
        for rel_id, start, end, rel_type, props in self.rels:
            store.create_relationship(rel_id, start, end, rel_type, props)
