"""Simulated CamFlow 0.4.5: whole-system provenance from LSM hooks.

CamFlow generates the provenance graph inside the kernel from Linux
Security Module hooks and ships it to user space as W3C PROV-JSON.
Behaviours reproduced from the paper:

* coverage is defined by the *recorded hook set*: ``dup`` and pipe
  creation fire no recorded hook (note NR), ``symlink``/``mknod`` hooks
  were not recorded by 0.4.5 (note NR), ``task_kill`` is not recorded,
  and nothing fires for ``close`` inside the recording window (the
  kernel frees the structures later — note LP);
* failed permission checks are visible to LSM but **not recorded** by
  the default configuration (§3.1, Alice);
* entities are versioned: writes and attribute changes produce a new
  inode version linked by ``wasDerivedFrom``; cred changes and execve
  produce a new task version linked by ``wasInformedBy``;
* a rename appears as a new path entity attached to the file object —
  the old path does not appear (§4.1);
* recording restarts occasionally produce small structural variation
  (§3.2); ``structural_jitter`` reproduces this, and ProvMark's
  similarity-class selection plus the ``filtergraphs`` option (paper
  appendix A.4) deal with it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.capture.base import CaptureSystem, RawOutput
from repro.graph.model import PropertyGraph
from repro.graph.provjson import graph_to_provjson
from repro.kernel.trace import LsmEvent, ObjectInfo, Trace

#: LSM hooks recorded by the default CamFlow 0.4.5 configuration.
RECORDED_HOOKS = frozenset({
    "inode_create", "inode_link", "inode_rename", "inode_unlink",
    "inode_setattr", "path_truncate",
    "file_open", "file_permission", "mmap_file",
    "task_alloc", "task_fix_setuid", "task_fix_setgid",
    "bprm_creds_for_exec", "bprm_committed_creds",
    "file_splice_pipe_to_pipe",
    "socket_create", "socket_sendmsg", "socket_recvmsg",
})


@dataclass
class CamFlowConfig:
    """Default CamFlow configuration surface."""

    record_failed: bool = False  # permission denials visible but unrecorded
    track_provmark: bool = False  # §3.2: ProvMark excludes its own activity
    structural_jitter: float = 0.0  # probability of a spurious extra node
    whole_system: bool = True


class CamFlowCapture(CaptureSystem):
    """CamFlow LSM capture with PROV-JSON output."""

    name = "camflow"
    output_format = "provjson"
    recording_seconds = 10.0

    def __init__(self, config: Optional[CamFlowConfig] = None) -> None:
        self.config = config or CamFlowConfig()

    def record(self, trace: Trace, rng: random.Random) -> RawOutput:
        builder = _CamFlowBuilder(self.config, rng, trace.boot_id, trace.machine_id)
        for event in trace.lsm:
            builder.feed(event)
        if self.config.structural_jitter and rng.random() < self.config.structural_jitter:
            builder.add_jitter_artifact()
        return graph_to_provjson(builder.graph)


class _CamFlowBuilder:
    """Streams LSM hook events into a PROV-style property graph."""

    def __init__(
        self, config: CamFlowConfig, rng: random.Random,
        boot_id: str, machine_id: str,
    ) -> None:
        self.config = config
        self.rng = rng
        self.boot_id = boot_id
        self.machine_id = machine_id
        self.graph = PropertyGraph("camflow")
        self._next = rng.randrange(10**6, 9 * 10**6)
        #: task_id -> current activity node
        self._task_node: Dict[int, str] = {}
        #: inode number or pipe id -> current entity node
        self._entity_node: Dict[str, str] = {}
        #: (entity key) -> version counter
        self._entity_version: Dict[str, int] = {}
        #: path string -> path entity node
        self._path_node: Dict[Tuple[str, str], str] = {}

    def _identifier(self, kind: str) -> str:
        self._next += 1
        return f"cf:{kind}:{self._next}"

    # -- node management -----------------------------------------------------

    def _node_props(self, extra: Dict[str, str]) -> Dict[str, str]:
        props = {
            "cf:boot_id": self.boot_id,
            "cf:machine_id": self.machine_id,
        }
        props.update(extra)
        return props

    def _ensure_task(self, event: LsmEvent) -> str:
        task_id = event.subject.task_id
        existing = self._task_node.get(task_id)
        if existing is not None:
            return existing
        node = self.graph.add_node(
            self._identifier("task"), "task",
            self._node_props({
                "prov:kind": "activity",
                "cf:pid": str(event.subject.pid),
                "cf:uid": str(event.subject.uid),
                "cf:gid": str(event.subject.gid),
                "cf:utime": str(event.time_ns),
                "cf:name": event.subject.comm,
            }),
        )
        self._task_node[task_id] = node.id
        return node.id

    def _new_task_version(self, event: LsmEvent, relation: str) -> str:
        task_id = event.subject.task_id
        old = self._task_node.get(task_id)
        node = self.graph.add_node(
            self._identifier("task"), "task",
            self._node_props({
                "prov:kind": "activity",
                "cf:pid": str(event.subject.pid),
                "cf:uid": str(event.subject.uid),
                "cf:gid": str(event.subject.gid),
                "cf:utime": str(event.time_ns),
                "cf:name": event.subject.comm,
            }),
        )
        self._task_node[task_id] = node.id
        if old is not None:
            self.graph.add_edge(
                self._identifier("rel"), node.id, old, relation,
                {"cf:type": "version_activity"},
            )
        return node.id

    def _entity_key(self, obj: ObjectInfo) -> str:
        if obj.kind == "pipe":
            return f"pipe:{obj.pipe_id}"
        return f"ino:{obj.ino}"

    def _ensure_entity(self, obj: ObjectInfo, event: LsmEvent) -> str:
        key = self._entity_key(obj)
        existing = self._entity_node.get(key)
        if existing is not None:
            return existing
        label = {"pipe": "pipe", "socket": "socket"}.get(obj.kind, "inode")
        node = self.graph.add_node(
            self._identifier(label), label,
            self._node_props({
                "prov:kind": "entity",
                "cf:ino": str(obj.ino or obj.pipe_id or 0),
                "cf:mode": obj.mode or "",
                "cf:uid": str(obj.uid if obj.uid is not None else ""),
                "cf:version": "0",
                "cf:subtype": obj.kind,
            }),
        )
        self._entity_node[key] = node.id
        self._entity_version[key] = 0
        return node.id

    def _new_entity_version(self, obj: ObjectInfo, event: LsmEvent) -> str:
        key = self._entity_key(obj)
        old = self._entity_node.get(key)
        if old is None:
            return self._ensure_entity(obj, event)
        version = self._entity_version.get(key, 0) + 1
        self._entity_version[key] = version
        old_node = self.graph.node(old)
        props = dict(old_node.props)
        props["cf:version"] = str(version)
        node = self.graph.add_node(
            self._identifier(old_node.label), old_node.label, props
        )
        self._entity_node[key] = node.id
        self.graph.add_edge(
            self._identifier("rel"), node.id, old, "wasDerivedFrom",
            {"cf:type": "version_entity"},
        )
        return node.id

    def _ensure_path(self, obj: ObjectInfo, entity: str) -> Optional[str]:
        if not obj.path:
            return None
        key = (entity, obj.path)
        existing = self._path_node.get(key)
        if existing is not None:
            return existing
        node = self.graph.add_node(
            self._identifier("path"), "path",
            self._node_props({
                "prov:kind": "entity",
                "cf:pathname": obj.path,
            }),
        )
        self._path_node[key] = node.id
        self.graph.add_edge(
            self._identifier("rel"), entity, node.id, "wasDerivedFrom",
            {"cf:type": "named"},
        )
        return node.id

    def _used(self, task: str, entity: str, hook: str, event: LsmEvent) -> None:
        self.graph.add_edge(
            self._identifier("rel"), task, entity, "used",
            {"cf:type": hook, "cf:jiffies": str(event.time_ns // 10_000_000)},
        )

    def _generated(self, entity: str, task: str, hook: str, event: LsmEvent) -> None:
        self.graph.add_edge(
            self._identifier("rel"), entity, task, "wasGeneratedBy",
            {"cf:type": hook, "cf:jiffies": str(event.time_ns // 10_000_000)},
        )

    # -- event dispatch ----------------------------------------------------------

    def feed(self, event: LsmEvent) -> None:
        if not event.success:
            # Permission denials are visible to LSM but unrecorded by the
            # default configuration (§3.1, Alice).
            if self.config.record_failed and event.hook in (
                RECORDED_HOOKS | {"inode_permission"}
            ):
                self._render_denial(event)
            return
        if event.hook not in RECORDED_HOOKS:
            return
        handler = getattr(self, f"_on_{event.hook}", None)
        if handler is not None:
            handler(event)

    def _render_denial(self, event: LsmEvent) -> None:
        """A denied check: task --used(denied)--> object entity."""
        task = self._ensure_task(event)
        obj = next(iter(event.objects), None)
        if obj is None or obj.kind == "process":
            return
        entity = self._ensure_entity(obj, event)
        self.graph.add_edge(
            self._identifier("rel"), task, entity, "used",
            {"cf:type": f"{event.hook}_denied", "cf:permission": "denied"},
        )

    def _object(self, event: LsmEvent, *roles: str) -> Optional[ObjectInfo]:
        for role in roles:
            for obj in event.objects:
                if obj.role == role:
                    return obj
        return None

    # -- per-hook rendering ---------------------------------------------------------

    def _on_file_open(self, event: LsmEvent) -> None:
        task = self._ensure_task(event)
        obj = self._object(event, "path", "fd")
        if obj is None:
            return
        entity = self._ensure_entity(obj, event)
        self._ensure_path(obj, entity)
        self._used(task, entity, "open", event)

    def _on_file_permission(self, event: LsmEvent) -> None:
        task = self._ensure_task(event)
        obj = self._object(event, "fd", "pipe_in", "pipe_out")
        if obj is None:
            return
        mask = dict(event.details).get("mask", "r")
        if mask == "r":
            entity = self._ensure_entity(obj, event)
            self._used(task, entity, "read", event)
        else:
            new_entity = self._new_entity_version(obj, event)
            self._generated(new_entity, task, "write", event)

    def _on_mmap_file(self, event: LsmEvent) -> None:
        task = self._ensure_task(event)
        obj = self._object(event, "fd")
        if obj is None:
            return
        entity = self._ensure_entity(obj, event)
        self._used(task, entity, "mmap_read_exec", event)

    def _on_inode_create(self, event: LsmEvent) -> None:
        task = self._ensure_task(event)
        obj = self._object(event, "path")
        if obj is None:
            return
        entity = self._ensure_entity(obj, event)
        self._ensure_path(obj, entity)
        self._generated(entity, task, "create", event)

    def _on_inode_link(self, event: LsmEvent) -> None:
        task = self._ensure_task(event)
        obj = self._object(event, "oldpath")
        new_obj = self._object(event, "newpath")
        if obj is None or new_obj is None:
            return
        entity = self._ensure_entity(obj, event)
        path = self._ensure_path(new_obj, entity)
        if path is not None:
            self._generated(path, task, "link", event)

    def _on_inode_rename(self, event: LsmEvent) -> None:
        # A rename adds a new path to the file object; the old path does
        # not appear in the result (paper §4.1).
        task = self._ensure_task(event)
        new_obj = self._object(event, "newpath")
        if new_obj is None:
            return
        entity = self._ensure_entity(new_obj, event)
        path = self._ensure_path(new_obj, entity)
        if path is not None:
            self._generated(path, task, "rename", event)

    def _on_inode_unlink(self, event: LsmEvent) -> None:
        task = self._ensure_task(event)
        obj = self._object(event, "path")
        if obj is None:
            return
        entity = self._ensure_entity(obj, event)
        self._used(task, entity, "unlink", event)

    def _on_inode_setattr(self, event: LsmEvent) -> None:
        task = self._ensure_task(event)
        obj = self._object(event, "path", "fd")
        if obj is None:
            return
        entity = self._new_entity_version(obj, event)
        self._generated(entity, task, "setattr", event)

    def _on_path_truncate(self, event: LsmEvent) -> None:
        task = self._ensure_task(event)
        obj = self._object(event, "path", "fd")
        if obj is None:
            return
        entity = self._new_entity_version(obj, event)
        self._generated(entity, task, "truncate", event)

    def _on_task_alloc(self, event: LsmEvent) -> None:
        parent = self._ensure_task(event)
        obj = self._object(event, "child")
        if obj is None or obj.task_id is None:
            return
        child = self.graph.add_node(
            self._identifier("task"), "task",
            self._node_props({
                "prov:kind": "activity",
                "cf:pid": str(obj.pid),
                "cf:uid": str(event.subject.uid),
                "cf:gid": str(event.subject.gid),
                "cf:utime": str(event.time_ns),
                "cf:name": event.subject.comm,
            }),
        )
        self._task_node[obj.task_id] = child.id
        self.graph.add_edge(
            self._identifier("rel"), child.id, parent, "wasInformedBy",
            {"cf:type": "clone"},
        )

    def _on_task_fix_setuid(self, event: LsmEvent) -> None:
        self._new_task_version(event, "wasInformedBy")

    _on_task_fix_setgid = _on_task_fix_setuid

    def _on_bprm_creds_for_exec(self, event: LsmEvent) -> None:
        task = self._ensure_task(event)
        obj = self._object(event, "exe")
        if obj is None:
            return
        entity = self._ensure_entity(obj, event)
        self._ensure_path(obj, entity)
        self._used(task, entity, "exec", event)

    def _on_bprm_committed_creds(self, event: LsmEvent) -> None:
        node = self._new_task_version(event, "wasInformedBy")
        # Subsequent hooks carry the post-exec task identity; alias it to
        # the new version so the graph stays connected.
        task_obj = self._object(event, "task")
        if task_obj is not None and task_obj.task_id is not None:
            self._task_node[task_obj.task_id] = node

    def _on_file_splice_pipe_to_pipe(self, event: LsmEvent) -> None:
        task = self._ensure_task(event)
        in_obj = self._object(event, "pipe_in")
        out_obj = self._object(event, "pipe_out")
        if in_obj is None or out_obj is None:
            return
        in_entity = self._ensure_entity(in_obj, event)
        out_entity = self._new_entity_version(out_obj, event)
        self._used(task, in_entity, "splice_read", event)
        self._generated(out_entity, task, "splice_write", event)

    def _on_socket_create(self, event: LsmEvent) -> None:
        task = self._ensure_task(event)
        obj = self._object(event, "end_a")
        if obj is None:
            return
        entity = self._ensure_entity(obj, event)
        self._generated(entity, task, "socket_create", event)

    def _on_socket_sendmsg(self, event: LsmEvent) -> None:
        task = self._ensure_task(event)
        obj = self._object(event, "fd")
        if obj is None:
            return
        entity = self._new_entity_version(obj, event)
        self._generated(entity, task, "send_packet", event)

    def _on_socket_recvmsg(self, event: LsmEvent) -> None:
        task = self._ensure_task(event)
        obj = self._object(event, "fd")
        if obj is None:
            return
        entity = self._ensure_entity(obj, event)
        self._used(task, entity, "receive_packet", event)

    # -- recording-restart jitter ------------------------------------------------------

    def add_jitter_artifact(self) -> None:
        """A spurious machine node occasionally left over by a recording
        restart (§3.2) — what the ``filtergraphs`` option removes."""
        node = self.graph.add_node(
            self._identifier("machine"), "machine",
            self._node_props({"prov:kind": "agent", "cf:restart": "true"}),
        )
        tasks = [n for n in self.graph.nodes() if n.label == "task"]
        if tasks:
            self.graph.add_edge(
                self._identifier("rel"), tasks[0].id, node.id,
                "wasAssociatedWith", {"cf:type": "machine"},
            )
