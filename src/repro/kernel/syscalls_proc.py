"""Process-management and permission syscalls (Table 1 groups 2 and 3)."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.kernel.errors import Errno, KernelError
from repro.kernel.fs import InodeType
from repro.kernel.machine import Machine, SyscallOutcome
from repro.kernel.process import Credentials, Process
from repro.kernel.trace import ObjectInfo


class ProcessSyscalls:
    """Mixin over :class:`Machine` implementing process and cred syscalls."""

    # -- process creation ---------------------------------------------------

    def _spawn_child(self: Machine, parent: Process) -> Process:
        child = self._make_process(
            ppid=parent.pid,
            creds=parent.creds.copy(),
            exe=parent.exe,
            comm=parent.comm,
        )
        child.cwd = parent.cwd
        child.argv = list(parent.argv)
        child.env = dict(parent.env)
        child.fds = parent.clone_fd_table()
        child.next_fd = parent.next_fd
        return child

    def _fork_common(
        self: Machine, process: Process, name: str, defer_audit: bool
    ) -> SyscallOutcome:
        child = self._spawn_child(process)
        hooks = [(
            "task_alloc",
            [self.process_object(child, "child")],
            {"clone_flags": "0" if name != "clone" else "CLONE_VM"},
        )]
        outcome = SyscallOutcome(
            retval=child.pid,
            objects=[self.process_object(child, "child")],
            hooks=hooks,
        )
        outcome.defer_audit = defer_audit
        return outcome

    def sys_fork(self: Machine, process: Process) -> int:
        return self.syscall(
            process, "fork", (),
            lambda: self._fork_common(process, "fork", defer_audit=False),
        )

    def sys_vfork(self: Machine, process: Process) -> int:
        """vfork suspends the parent; Linux Audit therefore reports the
        child's syscalls *before* the parent's vfork record (paper §4.2,
        the cause of SPADE's disconnected vfork node, note DV)."""
        process.vfork_parent_suspended = True
        return self.syscall(
            process, "vfork", (),
            lambda: self._fork_common(process, "vfork", defer_audit=True),
        )

    def sys_clone(self: Machine, process: Process, flags: str = "CLONE_VM|SIGCHLD") -> int:
        return self.syscall(
            process, "clone", (flags,),
            lambda: self._fork_common(process, "clone", defer_audit=False),
        )

    def sys_execve(
        self: Machine, process: Process, path: str,
        argv: Optional[List[str]] = None,
    ) -> int:
        def run() -> SyscallOutcome:
            creds = process.creds
            full = self.fs.normalize(path, process.cwd)
            hooks: List[Tuple[str, List[ObjectInfo], Dict[str, str]]] = []
            inode = self.fs.resolve(full, creds.euid, creds.egid)
            exe_obj = self.file_object(inode, full, "exe")
            if inode.type is not InodeType.REGULAR:
                raise KernelError(Errno.EACCES, full).with_context([exe_obj], hooks)
            try:
                self.fs.check_access(inode, creds.euid, creds.egid, 1)
            except KernelError as denied:
                hooks.append(("bprm_creds_for_exec", [exe_obj], {}))
                raise denied.with_context([exe_obj], hooks)
            old_exe = process.exe
            process.exe = full
            process.comm = self.fs.split(full)[1]
            process.argv = list(argv or [full])
            # The kernel gives the post-exec task a fresh identity (CamFlow
            # versions the task node on exec).
            process.task_id = self.ids.object_id()
            hooks.extend([
                ("bprm_creds_for_exec", [exe_obj], {}),
                ("bprm_check_security", [exe_obj], {"old_exe": old_exe}),
                ("bprm_committed_creds", [self.process_object(process, "task"), exe_obj], {}),
            ])
            objects = [
                exe_obj,
                self.process_object(process, "task"),
                ObjectInfo(kind="file", role="old_exe", path=old_exe),
            ]
            return SyscallOutcome(retval=0, objects=objects, hooks=hooks)
        return self.syscall(process, "execve", (path,), run)

    def sys_exit(self: Machine, process: Process, code: int = 0) -> int:
        def run() -> SyscallOutcome:
            process.alive = False
            process.exit_code = code
            if process.vfork_parent_suspended:
                pass  # the loader resumes the parent and flushes audit
            # task_free fires asynchronously, outside the recording window.
            return SyscallOutcome(retval=0, objects=[self.process_object(process, "task")])
        result = self.syscall(process, "exit", (code,), run)
        parent = self.processes.get(process.ppid)
        if parent is not None and parent.vfork_parent_suspended:
            parent.vfork_parent_suspended = False
            self.flush_deferred_audit()
        return result

    def sys_kill(self: Machine, process: Process, pid: int, signal: str = "SIGKILL") -> int:
        def run() -> SyscallOutcome:
            target = self.process(pid)
            hooks = [(
                "task_kill",
                [self.process_object(target, "target")],
                {"signal": signal},
            )]
            if signal in ("SIGKILL", "SIGTERM"):
                target.alive = False
                target.exit_code = -1
            return SyscallOutcome(
                retval=0,
                objects=[self.process_object(target, "target")],
                hooks=hooks,
            )
        return self.syscall(process, "kill", (pid, signal), run)

    # -- file permission / ownership changes --------------------------------------

    def _chmod_inode(
        self: Machine, process: Process, inode, path: Optional[str],
        mode: int, fd: Optional[int],
    ) -> SyscallOutcome:
        creds = process.creds
        obj = self.file_object(inode, path, "fd" if fd is not None else "path", fd=fd)
        hooks: List[Tuple[str, List[ObjectInfo], Dict[str, str]]] = []
        if creds.euid != 0 and creds.euid != inode.uid:
            hooks.append(("inode_setattr", [obj], {"mode": oct(mode)}))
            raise KernelError(Errno.EPERM).with_context([obj], hooks)
        inode.mode = mode
        inode.bump_version()
        inode.ctime_ns = self.clock.tick()
        hooks.append(("inode_setattr", [obj], {"mode": oct(mode)}))
        return SyscallOutcome(retval=0, objects=[obj], hooks=hooks)

    def sys_chmod(self: Machine, process: Process, path: str, mode: int = 0o600) -> int:
        def run() -> SyscallOutcome:
            full = self.fs.normalize(path, process.cwd)
            inode = self.fs.resolve(full, process.creds.euid, process.creds.egid)
            return self._chmod_inode(process, inode, full, mode, None)
        return self.syscall(process, "chmod", (path, oct(mode)), run)

    def sys_fchmod(self: Machine, process: Process, fd: int, mode: int = 0o600) -> int:
        def run() -> SyscallOutcome:
            description = process.get_fd(fd)
            inode = self.fs.inode(description.ino)
            return self._chmod_inode(process, inode, description.path, mode, fd)
        return self.syscall(process, "fchmod", (fd, oct(mode)), run)

    def sys_fchmodat(self: Machine, process: Process, path: str, mode: int = 0o600) -> int:
        def run() -> SyscallOutcome:
            full = self.fs.normalize(path, process.cwd)
            inode = self.fs.resolve(full, process.creds.euid, process.creds.egid)
            return self._chmod_inode(process, inode, full, mode, None)
        return self.syscall(process, "fchmodat", ("AT_FDCWD", path, oct(mode)), run)

    def _chown_inode(
        self: Machine, process: Process, inode, path: Optional[str],
        uid: int, gid: int, fd: Optional[int],
    ) -> SyscallOutcome:
        creds = process.creds
        obj = self.file_object(inode, path, "fd" if fd is not None else "path", fd=fd)
        hooks: List[Tuple[str, List[ObjectInfo], Dict[str, str]]] = []
        changing_owner = uid != -1 and uid != inode.uid
        if creds.euid != 0 and (changing_owner or creds.euid != inode.uid):
            hooks.append(("inode_setattr", [obj], {"uid": str(uid), "gid": str(gid)}))
            raise KernelError(Errno.EPERM).with_context([obj], hooks)
        if uid != -1:
            inode.uid = uid
        if gid != -1:
            inode.gid = gid
        inode.bump_version()
        inode.ctime_ns = self.clock.tick()
        hooks.append(("inode_setattr", [obj], {"uid": str(uid), "gid": str(gid)}))
        return SyscallOutcome(retval=0, objects=[obj], hooks=hooks)

    def sys_chown(
        self: Machine, process: Process, path: str, uid: int = -1, gid: int = -1
    ) -> int:
        def run() -> SyscallOutcome:
            full = self.fs.normalize(path, process.cwd)
            inode = self.fs.resolve(full, process.creds.euid, process.creds.egid)
            return self._chown_inode(process, inode, full, uid, gid, None)
        return self.syscall(process, "chown", (path, uid, gid), run)

    def sys_fchown(
        self: Machine, process: Process, fd: int, uid: int = -1, gid: int = -1
    ) -> int:
        def run() -> SyscallOutcome:
            description = process.get_fd(fd)
            inode = self.fs.inode(description.ino)
            return self._chown_inode(process, inode, description.path, uid, gid, fd)
        return self.syscall(process, "fchown", (fd, uid, gid), run)

    def sys_fchownat(
        self: Machine, process: Process, path: str, uid: int = -1, gid: int = -1
    ) -> int:
        def run() -> SyscallOutcome:
            full = self.fs.normalize(path, process.cwd)
            inode = self.fs.resolve(full, process.creds.euid, process.creds.egid)
            return self._chown_inode(process, inode, full, uid, gid, None)
        return self.syscall(process, "fchownat", ("AT_FDCWD", path, uid, gid), run)

    # -- credential changes ----------------------------------------------------------

    def _cred_outcome(
        self: Machine, process: Process, hook: str, before: Credentials,
    ) -> SyscallOutcome:
        after = process.creds
        changed = before.as_props() != after.as_props()
        hooks = [(
            hook,
            [self.process_object(process, "task")],
            {"changed": str(changed).lower(), **after.as_props()},
        )]
        outcome = SyscallOutcome(
            retval=0,
            objects=[
                ObjectInfo(
                    kind="process", role="task", pid=process.pid,
                    task_id=process.task_id,
                )
            ],
            hooks=hooks,
        )
        return outcome

    @staticmethod
    def _may_set_id(creds_euid: int, requested: int, allowed: Tuple[int, ...]) -> bool:
        return creds_euid == 0 or requested in allowed

    def sys_setuid(self: Machine, process: Process, uid: int) -> int:
        def run() -> SyscallOutcome:
            creds = process.creds
            before = creds.copy()
            if creds.euid == 0:
                creds.uid = creds.euid = creds.suid = uid
            elif uid in (creds.uid, creds.suid):
                creds.euid = uid
            else:
                raise KernelError(Errno.EPERM).with_context(
                    [self.process_object(process, "task")],
                    [("task_fix_setuid", [self.process_object(process, "task")], {})],
                )
            return self._cred_outcome(process, "task_fix_setuid", before)
        return self.syscall(process, "setuid", (uid,), run)

    def sys_setgid(self: Machine, process: Process, gid: int) -> int:
        def run() -> SyscallOutcome:
            creds = process.creds
            before = creds.copy()
            if creds.euid == 0:
                creds.gid = creds.egid = creds.sgid = gid
            elif gid in (creds.gid, creds.sgid):
                creds.egid = gid
            else:
                raise KernelError(Errno.EPERM).with_context(
                    [self.process_object(process, "task")],
                    [("task_fix_setgid", [self.process_object(process, "task")], {})],
                )
            return self._cred_outcome(process, "task_fix_setgid", before)
        return self.syscall(process, "setgid", (gid,), run)

    def sys_setreuid(self: Machine, process: Process, ruid: int, euid: int) -> int:
        def run() -> SyscallOutcome:
            creds = process.creds
            before = creds.copy()
            if creds.euid != 0:
                for requested in (ruid, euid):
                    if requested != -1 and requested not in (creds.uid, creds.euid, creds.suid):
                        raise KernelError(Errno.EPERM).with_context(
                            [self.process_object(process, "task")], []
                        )
            if ruid != -1:
                creds.uid = ruid
            if euid != -1:
                creds.euid = euid
                creds.suid = euid
            return self._cred_outcome(process, "task_fix_setuid", before)
        return self.syscall(process, "setreuid", (ruid, euid), run)

    def sys_setregid(self: Machine, process: Process, rgid: int, egid: int) -> int:
        def run() -> SyscallOutcome:
            creds = process.creds
            before = creds.copy()
            if creds.euid != 0:
                for requested in (rgid, egid):
                    if requested != -1 and requested not in (creds.gid, creds.egid, creds.sgid):
                        raise KernelError(Errno.EPERM).with_context(
                            [self.process_object(process, "task")], []
                        )
            if rgid != -1:
                creds.gid = rgid
            if egid != -1:
                creds.egid = egid
                creds.sgid = egid
            return self._cred_outcome(process, "task_fix_setgid", before)
        return self.syscall(process, "setregid", (rgid, egid), run)

    def sys_setresuid(
        self: Machine, process: Process, ruid: int, euid: int, suid: int
    ) -> int:
        def run() -> SyscallOutcome:
            creds = process.creds
            before = creds.copy()
            if creds.euid != 0:
                for requested in (ruid, euid, suid):
                    if requested != -1 and requested not in (creds.uid, creds.euid, creds.suid):
                        raise KernelError(Errno.EPERM).with_context(
                            [self.process_object(process, "task")], []
                        )
            if ruid != -1:
                creds.uid = ruid
            if euid != -1:
                creds.euid = euid
            if suid != -1:
                creds.suid = suid
            return self._cred_outcome(process, "task_fix_setuid", before)
        return self.syscall(process, "setresuid", (ruid, euid, suid), run)

    def sys_setresgid(
        self: Machine, process: Process, rgid: int, egid: int, sgid: int
    ) -> int:
        def run() -> SyscallOutcome:
            creds = process.creds
            before = creds.copy()
            if creds.euid != 0:
                for requested in (rgid, egid, sgid):
                    if requested != -1 and requested not in (creds.gid, creds.egid, creds.sgid):
                        raise KernelError(Errno.EPERM).with_context(
                            [self.process_object(process, "task")], []
                        )
            if rgid != -1:
                creds.gid = rgid
            if egid != -1:
                creds.egid = egid
            if sgid != -1:
                creds.sgid = sgid
            return self._cred_outcome(process, "task_fix_setgid", before)
        return self.syscall(process, "setresgid", (rgid, egid, sgid), run)

    # -- support calls used by process startup ---------------------------------------

    def sys_access(self: Machine, process: Process, path: str, mode: int = 4) -> int:
        def run() -> SyscallOutcome:
            creds = process.creds
            full = self.fs.normalize(path, process.cwd)
            inode = self.fs.resolve(full, creds.euid, creds.egid)
            obj = self.file_object(inode, full, "path")
            hooks = [("inode_permission", [obj], {"mask": str(mode)})]
            if not self.fs.may_access(inode, creds.euid, creds.egid, mode):
                raise KernelError(Errno.EACCES).with_context([obj], hooks)
            return SyscallOutcome(retval=0, objects=[obj], hooks=hooks)
        return self.syscall(process, "access", (path, mode), run)

    def sys_mmap(self: Machine, process: Process, fd: int, prot: str = "PROT_READ") -> int:
        def run() -> SyscallOutcome:
            description = process.get_fd(fd)
            inode = self.fs.inode(description.ino)
            obj = self.file_object(inode, description.path, "fd", fd=fd)
            hooks = [("mmap_file", [obj], {"prot": prot})]
            return SyscallOutcome(retval=0, objects=[obj], hooks=hooks)
        return self.syscall(process, "mmap", (fd, prot), run)

    def sys_getpid(self: Machine, process: Process) -> int:
        return self.syscall(
            process, "getpid", (), lambda: SyscallOutcome(retval=process.pid)
        )
