"""Additional syscalls beyond the paper's Table 2 set.

Directory management, descriptor positioning, and metadata queries —
needed by richer benchmark scenarios (multi-step sequences, detection
workloads) and by future benchmark families.  Each call follows the same
validate/mutate/report discipline as the Table 2 syscalls.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.kernel.errors import Errno, KernelError
from repro.kernel.fs import InodeType
from repro.kernel.machine import Machine, SyscallOutcome
from repro.kernel.process import Process
from repro.kernel.trace import ObjectInfo

_WANT_WRITE = 2


class MiscSyscalls:
    """Mixin over :class:`Machine`: directories, offsets, metadata."""

    # -- directories -----------------------------------------------------------

    def sys_mkdir(self: Machine, process: Process, path: str, mode: int = 0o755) -> int:
        def run() -> SyscallOutcome:
            creds = process.creds
            full = self.fs.normalize(path, process.cwd)
            hooks: List[Tuple[str, List[ObjectInfo], Dict[str, str]]] = []
            parent, name = self.fs.lookup_parent(full, creds.euid, creds.egid)
            parent_obj = self.file_object(parent, self.fs.split(full)[0], "dir")
            try:
                self.fs.check_access(parent, creds.euid, creds.egid, _WANT_WRITE)
            except KernelError as denied:
                hooks.append(("inode_permission", [parent_obj], {"mask": "w"}))
                raise denied.with_context([parent_obj], hooks)
            inode = self.fs.create_entry(
                parent, name, InodeType.DIRECTORY, mode, creds.euid, creds.egid
            )
            new_obj = self.file_object(inode, full, "path")
            hooks.append(("inode_mkdir", [parent_obj, new_obj], {"mode": oct(mode)}))
            return SyscallOutcome(retval=0, objects=[new_obj], hooks=hooks)
        return self.syscall(process, "mkdir", (path, oct(mode)), run)

    def sys_rmdir(self: Machine, process: Process, path: str) -> int:
        def run() -> SyscallOutcome:
            creds = process.creds
            full = self.fs.normalize(path, process.cwd)
            hooks: List[Tuple[str, List[ObjectInfo], Dict[str, str]]] = []
            parent, name = self.fs.lookup_parent(full, creds.euid, creds.egid)
            parent_obj = self.file_object(parent, self.fs.split(full)[0], "dir")
            child_ino = parent.entries.get(name)
            if child_ino is None:
                raise KernelError(Errno.ENOENT, full).with_context([parent_obj], hooks)
            child = self.fs.inode(child_ino)
            child_obj = self.file_object(child, full, "path")
            if child.type is not InodeType.DIRECTORY:
                raise KernelError(Errno.ENOTDIR, full).with_context([child_obj], hooks)
            if set(child.entries) - {".", ".."}:
                raise KernelError(Errno.ENOTEMPTY, full).with_context([child_obj], hooks)
            try:
                self.fs.check_access(parent, creds.euid, creds.egid, _WANT_WRITE)
            except KernelError as denied:
                hooks.append(("inode_permission", [parent_obj], {"mask": "w"}))
                raise denied.with_context([child_obj, parent_obj], hooks)
            del parent.entries[name]
            parent.nlink -= 1
            parent.bump_version()
            hooks.append(("inode_rmdir", [parent_obj, child_obj], {}))
            return SyscallOutcome(retval=0, objects=[child_obj], hooks=hooks)
        return self.syscall(process, "rmdir", (path,), run)

    def sys_chdir(self: Machine, process: Process, path: str) -> int:
        def run() -> SyscallOutcome:
            creds = process.creds
            full = self.fs.normalize(path, process.cwd)
            inode = self.fs.resolve(full, creds.euid, creds.egid)
            obj = self.file_object(inode, full, "path")
            if inode.type is not InodeType.DIRECTORY:
                raise KernelError(Errno.ENOTDIR, full).with_context([obj], [])
            hooks = [("inode_permission", [obj], {"mask": "x"})]
            if not self.fs.may_access(inode, creds.euid, creds.egid, 1):
                raise KernelError(Errno.EACCES, full).with_context([obj], hooks)
            process.cwd = full
            return SyscallOutcome(retval=0, objects=[obj], hooks=hooks)
        return self.syscall(process, "chdir", (path,), run)

    def sys_getcwd(self: Machine, process: Process) -> int:
        def run() -> SyscallOutcome:
            return SyscallOutcome(retval=0, objects=[
                ObjectInfo(kind="directory", role="cwd", path=process.cwd)
            ])
        return self.syscall(process, "getcwd", (), run)

    # -- descriptor positioning ---------------------------------------------------

    def sys_lseek(
        self: Machine, process: Process, fd: int, offset: int,
        whence: str = "SEEK_SET",
    ) -> int:
        def run() -> SyscallOutcome:
            description = process.get_fd(fd)
            if description.object_kind in ("pipe", "socket"):
                raise KernelError(Errno.ESPIPE)
            inode = self.fs.inode(description.ino)
            obj = self.file_object(inode, description.path, "fd", fd=fd)
            if whence == "SEEK_SET":
                new_offset = offset
            elif whence == "SEEK_CUR":
                new_offset = description.offset + offset
            elif whence == "SEEK_END":
                new_offset = inode.size + offset
            else:
                raise KernelError(Errno.EINVAL, whence).with_context([obj], [])
            if new_offset < 0:
                raise KernelError(Errno.EINVAL).with_context([obj], [])
            description.offset = new_offset
            return SyscallOutcome(retval=new_offset, objects=[obj])
        return self.syscall(process, "lseek", (fd, offset, whence), run)

    # -- metadata ---------------------------------------------------------------------

    def sys_stat(self: Machine, process: Process, path: str) -> int:
        def run() -> SyscallOutcome:
            creds = process.creds
            full = self.fs.normalize(path, process.cwd)
            inode = self.fs.resolve(full, creds.euid, creds.egid)
            obj = self.file_object(inode, full, "path")
            hooks = [("inode_getattr", [obj], {})]
            return SyscallOutcome(retval=0, objects=[obj], hooks=hooks)
        return self.syscall(process, "stat", (path,), run)

    def sys_fstat(self: Machine, process: Process, fd: int) -> int:
        def run() -> SyscallOutcome:
            description = process.get_fd(fd)
            if description.object_kind in ("pipe", "socket"):
                obj = ObjectInfo(
                    kind=description.object_kind, role="fd", fd=fd,
                    pipe_id=description.pipe_id,
                )
                return SyscallOutcome(retval=0, objects=[obj])
            inode = self.fs.inode(description.ino)
            obj = self.file_object(inode, description.path, "fd", fd=fd)
            hooks = [("inode_getattr", [obj], {})]
            return SyscallOutcome(retval=0, objects=[obj], hooks=hooks)
        return self.syscall(process, "fstat", (fd,), run)

    def sys_umask(self: Machine, process: Process, mask: int) -> int:
        def run() -> SyscallOutcome:
            previous = getattr(process, "umask", 0o022)
            process.umask = mask  # type: ignore[attr-defined]
            return SyscallOutcome(retval=previous)
        return self.syscall(process, "umask", (oct(mask),), run)
