"""In-memory filesystem: inodes, directories, links, permissions.

The filesystem is the object store the capture systems observe: each inode
has a run-volatile inode number, an owner, a mode, and a version counter
bumped on every mutation (the hook the versioning models of OPUS/SPADE
need).
"""

from __future__ import annotations

import enum
import stat
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.kernel.clock import IdAllocator, VirtualClock
from repro.kernel.errors import Errno, KernelError

MAX_SYMLINK_DEPTH = 8


class InodeType(enum.Enum):
    REGULAR = "file"
    DIRECTORY = "directory"
    SYMLINK = "link"
    FIFO = "fifo"
    CHARDEV = "chardev"
    BLOCKDEV = "blockdev"
    SOCKET = "socket"


@dataclass
class Inode:
    """One filesystem object."""

    ino: int
    type: InodeType
    mode: int
    uid: int
    gid: int
    nlink: int = 0
    size: int = 0
    version: int = 0
    ctime_ns: int = 0
    mtime_ns: int = 0
    data: bytes = b""
    symlink_target: str = ""
    entries: Dict[str, int] = field(default_factory=dict)
    device: Tuple[int, int] = (0, 0)

    def bump_version(self) -> None:
        self.version += 1


class FileSystem:
    """Path namespace over an inode table.

    All methods operate on absolute, already-resolved parent directories;
    path resolution (``resolve``) follows symlinks with a depth limit.
    Permission checks live here because they are what the LSM hook stream
    reports on.
    """

    def __init__(self, ids: IdAllocator, clock: VirtualClock) -> None:
        self.ids = ids
        self.clock = clock
        self.inodes: Dict[int, Inode] = {}
        self.root_ino = self._new_inode(InodeType.DIRECTORY, 0o755, 0, 0).ino
        root = self.inodes[self.root_ino]
        root.entries["."] = self.root_ino
        root.entries[".."] = self.root_ino
        root.nlink = 2

    # -- inode management ---------------------------------------------------

    def _new_inode(
        self, itype: InodeType, mode: int, uid: int, gid: int
    ) -> Inode:
        now = self.clock.tick()
        inode = Inode(
            ino=self.ids.ino(),
            type=itype,
            mode=mode,
            uid=uid,
            gid=gid,
            ctime_ns=now,
            mtime_ns=now,
        )
        self.inodes[inode.ino] = inode
        return inode

    def inode(self, ino: int) -> Inode:
        try:
            return self.inodes[ino]
        except KeyError:
            raise KernelError(Errno.ENOENT, f"stale inode {ino}") from None

    # -- permissions ----------------------------------------------------------

    def may_access(
        self, inode: Inode, euid: int, egid: int, want: int
    ) -> bool:
        """POSIX rwx check; ``want`` is a mask of R_OK=4, W_OK=2, X_OK=1."""
        if euid == 0:
            if want & 1 and inode.type is InodeType.REGULAR:
                return bool(inode.mode & 0o111)
            return True
        if euid == inode.uid:
            bits = (inode.mode >> 6) & 7
        elif egid == inode.gid:
            bits = (inode.mode >> 3) & 7
        else:
            bits = inode.mode & 7
        return (bits & want) == want

    def check_access(
        self, inode: Inode, euid: int, egid: int, want: int
    ) -> None:
        if not self.may_access(inode, euid, egid, want):
            raise KernelError(Errno.EACCES)

    # -- path handling ----------------------------------------------------------

    @staticmethod
    def split(path: str) -> Tuple[str, str]:
        """(dirname, basename), treating ``path`` as absolute."""
        path = path.rstrip("/") or "/"
        if "/" not in path:
            return "/", path
        head, _, tail = path.rpartition("/")
        return head or "/", tail

    @staticmethod
    def normalize(path: str, cwd: str = "/") -> str:
        if not path.startswith("/"):
            path = cwd.rstrip("/") + "/" + path
        parts: List[str] = []
        for piece in path.split("/"):
            if piece in ("", "."):
                continue
            if piece == "..":
                if parts:
                    parts.pop()
            else:
                parts.append(piece)
        return "/" + "/".join(parts)

    def resolve(
        self,
        path: str,
        euid: int = 0,
        egid: int = 0,
        follow: bool = True,
        _depth: int = 0,
    ) -> Inode:
        """Resolve an absolute path to its inode.

        Directory traversal requires execute permission on every directory
        on the way (the LSM ``inode_permission`` checks).
        """
        if _depth > MAX_SYMLINK_DEPTH:
            raise KernelError(Errno.ELOOP)
        path = self.normalize(path)
        current = self.inode(self.root_ino)
        if path == "/":
            return current
        parts = path.strip("/").split("/")
        for index, part in enumerate(parts):
            if current.type is not InodeType.DIRECTORY:
                raise KernelError(Errno.ENOTDIR, path)
            self.check_access(current, euid, egid, 1)
            child_ino = current.entries.get(part)
            if child_ino is None:
                raise KernelError(Errno.ENOENT, path)
            child = self.inode(child_ino)
            is_last = index == len(parts) - 1
            if child.type is InodeType.SYMLINK and (follow or not is_last):
                prefix = "/" + "/".join(parts[:index])
                target = child.symlink_target
                if not target.startswith("/"):
                    target = prefix + "/" + target
                rest = "/".join(parts[index + 1:])
                full = target + ("/" + rest if rest else "")
                return self.resolve(full, euid, egid, follow, _depth + 1)
            current = child
        return current

    def lookup_parent(
        self, path: str, euid: int = 0, egid: int = 0
    ) -> Tuple[Inode, str]:
        """Resolve the parent directory of ``path``; returns (dir, name)."""
        dirname, basename = self.split(self.normalize(path))
        if not basename:
            raise KernelError(Errno.EINVAL, path)
        parent = self.resolve(dirname, euid, egid)
        if parent.type is not InodeType.DIRECTORY:
            raise KernelError(Errno.ENOTDIR, dirname)
        return parent, basename

    def exists(self, path: str) -> bool:
        try:
            self.resolve(path)
            return True
        except KernelError:
            return False

    # -- directory operations ------------------------------------------------------

    def create_entry(
        self,
        parent: Inode,
        name: str,
        itype: InodeType,
        mode: int,
        uid: int,
        gid: int,
    ) -> Inode:
        if name in parent.entries:
            raise KernelError(Errno.EEXIST, name)
        inode = self._new_inode(itype, mode, uid, gid)
        inode.nlink = 1
        if itype is InodeType.DIRECTORY:
            inode.entries["."] = inode.ino
            inode.entries[".."] = parent.ino
            inode.nlink = 2
            parent.nlink += 1
        parent.entries[name] = inode.ino
        parent.bump_version()
        parent.mtime_ns = self.clock.tick()
        return inode

    def link_entry(self, parent: Inode, name: str, inode: Inode) -> None:
        if name in parent.entries:
            raise KernelError(Errno.EEXIST, name)
        if inode.type is InodeType.DIRECTORY:
            raise KernelError(Errno.EPERM, "hard link to directory")
        parent.entries[name] = inode.ino
        inode.nlink += 1
        inode.bump_version()
        parent.bump_version()

    def unlink_entry(self, parent: Inode, name: str) -> Inode:
        child_ino = parent.entries.get(name)
        if child_ino is None:
            raise KernelError(Errno.ENOENT, name)
        child = self.inode(child_ino)
        if child.type is InodeType.DIRECTORY:
            raise KernelError(Errno.EISDIR, name)
        del parent.entries[name]
        child.nlink -= 1
        child.bump_version()
        parent.bump_version()
        if child.nlink <= 0:
            # The inode table entry survives until last close; the kernel
            # layer handles that.  We keep it for simplicity — provenance
            # systems refer to dead inodes too.
            pass
        return child

    def mkdir(self, path: str, mode: int = 0o755, uid: int = 0, gid: int = 0) -> Inode:
        parent, name = self.lookup_parent(path)
        return self.create_entry(parent, name, InodeType.DIRECTORY, mode, uid, gid)

    def write_file(
        self, path: str, data: bytes = b"", mode: int = 0o644,
        uid: int = 0, gid: int = 0,
    ) -> Inode:
        """Create or replace a regular file (setup helper, not a syscall)."""
        parent, name = self.lookup_parent(path)
        existing = parent.entries.get(name)
        if existing is not None:
            inode = self.inode(existing)
        else:
            inode = self.create_entry(parent, name, InodeType.REGULAR, mode, uid, gid)
        inode.data = data
        inode.size = len(data)
        inode.bump_version()
        return inode

    def mode_string(self, inode: Inode) -> str:
        kind = {
            InodeType.REGULAR: stat.S_IFREG,
            InodeType.DIRECTORY: stat.S_IFDIR,
            InodeType.SYMLINK: stat.S_IFLNK,
            InodeType.FIFO: stat.S_IFIFO,
            InodeType.CHARDEV: stat.S_IFCHR,
            InodeType.BLOCKDEV: stat.S_IFBLK,
            InodeType.SOCKET: stat.S_IFSOCK,
        }[inode.type]
        return stat.filemode(kind | inode.mode)
