"""Errno values and the kernel error type."""

from __future__ import annotations

import enum
from typing import Optional


class Errno(enum.IntEnum):
    """The subset of Linux errno values the simulator produces."""

    EPERM = 1
    ENOENT = 2
    ESRCH = 3
    EBADF = 9
    EACCES = 13
    EBUSY = 16
    EEXIST = 17
    EXDEV = 18
    ENODEV = 19
    ENOTDIR = 20
    EISDIR = 21
    EINVAL = 22
    EMFILE = 24
    ESPIPE = 29
    ELOOP = 40
    ENOTEMPTY = 39


class KernelError(Exception):
    """A failed syscall: carries the errno reported to user space.

    Implementations may attach the ``objects`` the call had already touched
    and the LSM ``hooks`` that had already fired before the failure, so the
    observation streams can describe failed calls (OPUS sees failed libc
    calls; LSM hooks fire for permission denials).
    """

    def __init__(self, errno: Errno, message: str = "") -> None:
        super().__init__(message or errno.name)
        self.errno = errno
        self.objects: list = []
        self.hooks: list = []

    def with_context(self, objects: list, hooks: Optional[list] = None) -> "KernelError":
        self.objects = objects
        self.hooks = hooks or []
        return self

    def __repr__(self) -> str:
        return f"KernelError({self.errno.name})"
