"""The simulated machine: kernel state plus syscall dispatch plumbing.

:class:`Machine` owns the filesystem, process table, pipes, virtual clock,
and the observation trace.  The actual syscall implementations live in the
two mixins (:mod:`repro.kernel.syscalls_fs`, :mod:`repro.kernel.syscalls_proc`)
and are composed into :class:`repro.kernel.Kernel`.

Every syscall goes through :meth:`Machine.syscall`, which emits the audit,
libc, and LSM records for the three capture vantage points and converts
:class:`KernelError` into a ``-1`` return with an errno, like the real ABI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.kernel.clock import IdAllocator, VirtualClock, make_rng
from repro.kernel.errors import Errno, KernelError
from repro.kernel.fs import FileSystem, Inode, InodeType
from repro.kernel.process import Credentials, OpenFileDescription, Process
from repro.kernel.trace import (
    AuditEvent,
    LibcEvent,
    LsmEvent,
    ObjectInfo,
    SubjectInfo,
    Trace,
)

#: Default uid/gid of the unprivileged benchmark user.
BENCH_UID = 1000
BENCH_GID = 1000


@dataclass
class Pipe:
    """An anonymous pipe: a byte buffer with two ends."""

    pipe_id: int
    buffer: bytes = b""
    read_open: bool = True
    write_open: bool = True


@dataclass
class SocketPair:
    """A connected local (AF_UNIX) socket pair.

    Each end can send and receive; ``buffers`` holds the two directed
    byte streams (index 0: a→b, index 1: b→a).
    """

    socket_id: int
    buffers: List[bytes] = field(default_factory=lambda: [b"", b""])

    def send(self, end: str, data: bytes) -> int:
        index = 0 if end == "a" else 1
        self.buffers[index] += data
        return len(data)

    def recv(self, end: str, length: int) -> bytes:
        index = 1 if end == "a" else 0
        chunk = self.buffers[index][:length]
        self.buffers[index] = self.buffers[index][len(chunk):]
        return chunk


@dataclass
class SyscallOutcome:
    """What a syscall implementation reports back to the dispatcher."""

    retval: int
    objects: List[ObjectInfo] = field(default_factory=list)
    hooks: List[Tuple[str, List[ObjectInfo], Dict[str, str]]] = field(
        default_factory=list
    )
    #: Audit emission is deferred for vfork (paper §4.2): Linux Audit reports
    #: the parent's vfork only after the child has run.
    defer_audit: bool = False


class Machine:
    """Kernel state container and syscall dispatcher."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self.rng = make_rng(seed)
        self.clock = VirtualClock(self.rng)
        self.ids = IdAllocator(self.rng)
        self.fs = FileSystem(self.ids, self.clock)
        self.processes: Dict[int, Process] = {}
        self.pipes: Dict[int, Pipe] = {}
        self.sockets: Dict[int, SocketPair] = {}
        self.trace = Trace(boot_id=self.ids.boot_id, machine_id=self.ids.machine_id)
        self.seq = 0
        #: objects reported by the most recent syscall (pipe() writes its
        #: fds into a user array; callers read them back from here)
        self.last_objects: Tuple[ObjectInfo, ...] = ()
        self._deferred_audit: List[AuditEvent] = []
        self._populate_filesystem()
        self.init_process = self._make_process(
            ppid=0, creds=Credentials.for_user(0, 0), exe="/sbin/init", comm="init"
        )
        self.shell = self._make_process(
            ppid=self.init_process.pid,
            creds=Credentials.for_user(BENCH_UID, BENCH_GID),
            exe="/bin/sh",
            comm="sh",
        )
        self.shell.cwd = "/home/bench"

    # -- boot-time state -----------------------------------------------------

    def _populate_filesystem(self) -> None:
        fs = self.fs
        for directory in (
            "/bin", "/sbin", "/etc", "/lib", "/tmp", "/usr", "/usr/bin",
            "/usr/local", "/usr/local/bin", "/home", "/home/bench", "/dev",
            "/var", "/var/log",
        ):
            fs.mkdir(directory)
        fs.write_file("/etc/passwd", b"root:x:0:0::/root:/bin/sh\n", mode=0o644)
        fs.write_file("/etc/shadow", b"root:!:0:::::\n", mode=0o600)
        fs.write_file("/lib/libc.so.6", b"\x7fELF libc", mode=0o755)
        fs.write_file("/lib/ld-linux.so.2", b"\x7fELF ld", mode=0o755)
        for binary in ("/bin/sh", "/bin/true", "/sbin/init"):
            fs.write_file(binary, b"\x7fELF bin", mode=0o755)
        home = fs.resolve("/home/bench")
        home.uid, home.gid = BENCH_UID, BENCH_GID
        home.mode = 0o755
        tmp = fs.resolve("/tmp")
        tmp.mode = 0o777

    def _make_process(
        self, ppid: int, creds: Credentials, exe: str, comm: str
    ) -> Process:
        process = Process(
            pid=self.ids.pid(),
            ppid=ppid,
            creds=creds,
            exe=exe,
            comm=comm,
            task_id=self.ids.object_id(),
            start_time_ns=self.clock.tick(),
        )
        self.processes[process.pid] = process
        return process

    # -- event emission ---------------------------------------------------------

    def _subject(self, process: Process) -> SubjectInfo:
        creds = process.creds
        return SubjectInfo(
            pid=process.pid,
            ppid=process.ppid,
            exe=process.exe,
            comm=process.comm,
            task_id=process.task_id,
            uid=creds.uid,
            gid=creds.gid,
            euid=creds.euid,
            egid=creds.egid,
            suid=creds.suid,
            sgid=creds.sgid,
        )

    def file_object(
        self,
        inode: Inode,
        path: Optional[str],
        role: str,
        fd: Optional[int] = None,
    ) -> ObjectInfo:
        kind = {
            InodeType.REGULAR: "file",
            InodeType.DIRECTORY: "directory",
            InodeType.SYMLINK: "link",
            InodeType.FIFO: "fifo",
            InodeType.CHARDEV: "chardev",
            InodeType.BLOCKDEV: "blockdev",
            InodeType.SOCKET: "socket",
        }[inode.type]
        return ObjectInfo(
            kind=kind,
            role=role,
            ino=inode.ino,
            path=path,
            fd=fd,
            version=inode.version,
            mode=self.fs.mode_string(inode),
            uid=inode.uid,
            gid=inode.gid,
        )

    def process_object(self, process: Process, role: str) -> ObjectInfo:
        return ObjectInfo(
            kind="process",
            role=role,
            pid=process.pid,
            task_id=process.task_id,
        )

    def pipe_object(
        self, pipe: Pipe, role: str, fd: Optional[int] = None
    ) -> ObjectInfo:
        return ObjectInfo(kind="pipe", role=role, pipe_id=pipe.pipe_id, fd=fd)

    # -- dispatch -----------------------------------------------------------------

    def syscall(
        self,
        process: Process,
        name: str,
        args: Sequence[object],
        implementation: Callable[[], SyscallOutcome],
        libc_function: Optional[str] = None,
    ) -> int:
        """Run a syscall implementation and emit its observation records.

        Returns the retval; failed calls return ``-1`` (errno is recorded
        in the trace) rather than raising, mirroring the C ABI that the
        benchmark programs see.
        """
        if not process.alive:
            raise KernelError(Errno.ESRCH, f"process {process.pid} is dead")
        self.seq += 1
        seq = self.seq
        time_ns = self.clock.tick()
        rendered_args = tuple(str(a) for a in args)
        # LSM hooks run *during* the call and see the pre-call subject;
        # audit and libc report at syscall exit and see the post-call
        # subject (so e.g. setuid's audit record carries the new uid).
        subject_entry = self._subject(process)
        try:
            outcome = implementation()
            success, errno_name = True, None
        except KernelError as error:
            success, errno_name = False, error.errno.name
            outcome = SyscallOutcome(retval=-1, objects=list(error.__dict__.get("objects", [])))
            hooks = getattr(error, "hooks", None)
            if hooks:
                outcome.hooks = hooks
        subject_exit = self._subject(process)
        self.last_objects = tuple(outcome.objects)
        audit_event = AuditEvent(
            seq=seq,
            time_ns=time_ns,
            syscall=name,
            args=rendered_args,
            retval=outcome.retval,
            success=success,
            errno=errno_name,
            subject=subject_exit,
            objects=tuple(outcome.objects),
        )
        if outcome.defer_audit:
            self._deferred_audit.append(audit_event)
        else:
            self.trace.audit.append(audit_event)
        self.trace.libc.append(
            LibcEvent(
                seq=seq,
                time_ns=time_ns,
                function=libc_function or name,
                args=rendered_args,
                retval=outcome.retval,
                success=success,
                errno=errno_name,
                subject=subject_exit,
                objects=tuple(outcome.objects),
            )
        )
        for hook_name, hook_objects, details in outcome.hooks:
            self.trace.lsm.append(
                LsmEvent(
                    seq=seq,
                    time_ns=self.clock.tick(),
                    hook=hook_name,
                    syscall=name,
                    success=success,
                    subject=subject_entry,
                    objects=tuple(hook_objects),
                    details=tuple(sorted(details.items())),
                )
            )
        return outcome.retval

    def flush_deferred_audit(self) -> None:
        """Emit audit records held back by vfork semantics."""
        self.trace.audit.extend(self._deferred_audit)
        self._deferred_audit.clear()

    # -- helpers shared by syscall mixins -------------------------------------------

    def alloc_pipe(self) -> Pipe:
        pipe = Pipe(pipe_id=self.ids.object_id())
        self.pipes[pipe.pipe_id] = pipe
        return pipe

    def alloc_socketpair(self) -> SocketPair:
        pair = SocketPair(socket_id=self.ids.object_id())
        self.sockets[pair.socket_id] = pair
        return pair

    def socket_object(
        self, pair: SocketPair, role: str, fd: Optional[int] = None
    ) -> ObjectInfo:
        return ObjectInfo(
            kind="socket", role=role, pipe_id=pair.socket_id, fd=fd
        )

    def description_for_pipe(self, pipe: Pipe, end: str) -> OpenFileDescription:
        return OpenFileDescription(
            ino=0,
            path=f"pipe:[{pipe.pipe_id}]",
            flags="O_RDONLY" if end == "read" else "O_WRONLY",
            object_kind="pipe",
            pipe_id=pipe.pipe_id,
            pipe_end=end,
        )

    def process(self, pid: int) -> Process:
        try:
            return self.processes[pid]
        except KeyError:
            raise KernelError(Errno.ESRCH, f"pid {pid}") from None
