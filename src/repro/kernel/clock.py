"""Virtual time and volatile identifier allocation.

Every run of the simulated machine draws a fresh seed, so pids, inode
numbers, boot ids, and timestamps differ across runs exactly like the
transient data ProvMark's generalization stage must abstract away
(paper §1, §3.4).  Within a run everything is deterministic.
"""

from __future__ import annotations

import random
import uuid
from typing import Optional


class VirtualClock:
    """Monotonic nanosecond clock with a randomized epoch per boot."""

    def __init__(self, rng: random.Random) -> None:
        self._now_ns = rng.randrange(1_500_000_000, 1_900_000_000) * 1_000_000_000
        self._rng = rng

    def tick(self, min_ns: int = 1_000, max_ns: int = 90_000) -> int:
        """Advance time by a small pseudo-random amount and return it."""
        self._now_ns += self._rng.randrange(min_ns, max_ns)
        return self._now_ns

    @property
    def now_ns(self) -> int:
        return self._now_ns

    @property
    def now_seconds(self) -> float:
        return self._now_ns / 1e9


class IdAllocator:
    """Allocates run-volatile identifiers: pids, inode numbers, object ids."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._next_pid = rng.randrange(1_000, 30_000)
        self._next_ino = rng.randrange(100_000, 900_000)
        self._next_object_id = rng.randrange(10_000, 500_000)
        self.boot_id = str(uuid.UUID(int=rng.getrandbits(128)))
        self.machine_id = f"machine-{rng.randrange(10**8):08d}"

    def pid(self) -> int:
        self._next_pid += self._rng.randrange(1, 4)
        return self._next_pid

    def ino(self) -> int:
        self._next_ino += self._rng.randrange(1, 16)
        return self._next_ino

    def object_id(self) -> int:
        self._next_object_id += 1
        return self._next_object_id


def make_rng(seed: Optional[int]) -> random.Random:
    """Seeded RNG for a boot; ``None`` draws entropy (non-reproducible)."""
    if seed is None:
        return random.Random()
    return random.Random(seed)
