"""Observation streams emitted by the simulated kernel.

Each executed syscall produces up to three records, one per vantage point
(paper Figure 2):

* :class:`AuditEvent` — what the Linux Audit service reports at syscall
  exit (SPADE's source).  Carries success/retval and subject/object ids.
* :class:`LibcEvent` — the C-library wrapper invocation (OPUS's source).
  Present for calls that go through an intercepted dynamic library,
  including failed ones.
* :class:`LsmEvent` — the sequence of Linux Security Module hooks invoked
  while the kernel serviced the call (CamFlow's source).

The capture systems consume these streams; they never inspect kernel
state directly, which keeps the black-box property the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class SubjectInfo:
    """Snapshot of the calling process at event time."""

    pid: int
    ppid: int
    exe: str
    comm: str
    task_id: int
    uid: int
    gid: int
    euid: int
    egid: int
    suid: int
    sgid: int

    def as_props(self) -> Dict[str, str]:
        return {
            "pid": str(self.pid),
            "ppid": str(self.ppid),
            "exe": self.exe,
            "comm": self.comm,
            "uid": str(self.uid),
            "gid": str(self.gid),
            "euid": str(self.euid),
            "egid": str(self.egid),
        }


@dataclass(frozen=True)
class ObjectInfo:
    """Snapshot of one kernel object touched by a syscall."""

    kind: str  # "file" | "directory" | "link" | "fifo" | "pipe" | "process" | ...
    role: str  # e.g. "path", "oldpath", "newpath", "fd", "child", "target"
    ino: Optional[int] = None
    path: Optional[str] = None
    fd: Optional[int] = None
    version: Optional[int] = None
    pipe_id: Optional[int] = None
    pid: Optional[int] = None
    task_id: Optional[int] = None
    mode: Optional[str] = None
    uid: Optional[int] = None
    gid: Optional[int] = None


@dataclass(frozen=True)
class AuditEvent:
    seq: int
    time_ns: int
    syscall: str
    args: Tuple[str, ...]
    retval: int
    success: bool
    errno: Optional[str]
    subject: SubjectInfo
    objects: Tuple[ObjectInfo, ...]


@dataclass(frozen=True)
class LibcEvent:
    seq: int
    time_ns: int
    function: str
    args: Tuple[str, ...]
    retval: int
    success: bool
    errno: Optional[str]
    subject: SubjectInfo
    objects: Tuple[ObjectInfo, ...]


@dataclass(frozen=True)
class LsmEvent:
    seq: int
    time_ns: int
    hook: str
    syscall: str
    success: bool
    subject: SubjectInfo
    objects: Tuple[ObjectInfo, ...]
    details: Tuple[Tuple[str, str], ...] = ()


@dataclass
class Trace:
    """Everything one run of the machine produced."""

    boot_id: str = ""
    machine_id: str = ""
    audit: List[AuditEvent] = field(default_factory=list)
    libc: List[LibcEvent] = field(default_factory=list)
    lsm: List[LsmEvent] = field(default_factory=list)

    def window(self, start_seq: int, end_seq: int) -> "Trace":
        """Sub-trace covering a recording window (inclusive bounds)."""
        selected = Trace(boot_id=self.boot_id, machine_id=self.machine_id)
        selected.audit = [
            e for e in self.audit if start_seq <= e.seq <= end_seq
        ]
        selected.libc = [e for e in self.libc if start_seq <= e.seq <= end_seq]
        selected.lsm = [e for e in self.lsm if start_seq <= e.seq <= end_seq]
        return selected

    @property
    def event_count(self) -> int:
        return len(self.audit) + len(self.libc) + len(self.lsm)
