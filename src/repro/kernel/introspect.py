"""Introspection over the simulated kernel's syscall surface.

The benchmark-spec validator already derives a ``call -> arity`` table by
scanning the :class:`~repro.kernel.Kernel` ``sys_*`` methods
(:func:`repro.api.specs.syscall_table`); the synthesis engine needs more:
*what each argument means*, so a generator can sample plausible values
(a path, an open file descriptor, a mode, a uid) instead of guessing
from type annotations alone.

This module classifies every positional parameter of every syscall into
an :class:`ArgKind` by (name, annotation), derived in one pass over the
class — so the classification can never drift from what the executor
dispatches to.  Anything unrecognized is :data:`ArgKind.OPAQUE`: the
generator simply refuses to synthesize calls it cannot type, rather
than emitting garbage.
"""

from __future__ import annotations

import enum
import inspect
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


class ArgKind(enum.Enum):
    """Semantic role of one syscall parameter."""

    PATH = "path"          # a filesystem path (str)
    NEW_PATH = "new_path"  # a path expected not to exist yet (str)
    FD = "fd"              # an open file descriptor (int, usually $var)
    NEW_FD = "new_fd"      # an explicit descriptor slot (dup2/dup3)
    MODE = "mode"          # permission bits (int)
    FLAGS = "flags"        # symbolic flag string (O_*, S_*, CLONE_*, ...)
    LENGTH = "length"      # byte count (int >= 0)
    OFFSET = "offset"      # file offset (int >= 0)
    DATA = "data"          # payload bytes
    UID = "uid"            # user id (int)
    GID = "gid"            # group id (int)
    PID = "pid"            # process id (int, usually $var)
    SIGNAL = "signal"      # signal name (str)
    CODE = "code"          # exit code (int)
    ARGV = "argv"          # execve argument vector (unchecked)
    WHENCE = "whence"      # lseek anchor (SEEK_*)
    MASK = "mask"          # umask/access mask (int)
    OPAQUE = "opaque"      # unclassified: not safe to synthesize


#: (parameter name, annotation string) -> kind; checked before the
#: name-only fallbacks below
_BY_NAME_AND_TYPE: Dict[Tuple[str, str], ArgKind] = {
    ("mode", "str"): ArgKind.FLAGS,   # mknod's "S_IFIFO"
    ("mode", "int"): ArgKind.MODE,
}

_BY_NAME: Dict[str, ArgKind] = {
    "path": ArgKind.PATH,
    "oldpath": ArgKind.PATH,
    "target": ArgKind.PATH,
    "newpath": ArgKind.NEW_PATH,
    "linkpath": ArgKind.NEW_PATH,
    "fd": ArgKind.FD,
    "oldfd": ArgKind.FD,
    "fd_in": ArgKind.FD,
    "fd_out": ArgKind.FD,
    "newfd": ArgKind.NEW_FD,
    "flags": ArgKind.FLAGS,
    "prot": ArgKind.FLAGS,
    "length": ArgKind.LENGTH,
    "offset": ArgKind.OFFSET,
    "data": ArgKind.DATA,
    "uid": ArgKind.UID,
    "ruid": ArgKind.UID,
    "euid": ArgKind.UID,
    "suid": ArgKind.UID,
    "gid": ArgKind.GID,
    "rgid": ArgKind.GID,
    "egid": ArgKind.GID,
    "sgid": ArgKind.GID,
    "pid": ArgKind.PID,
    "signal": ArgKind.SIGNAL,
    "code": ArgKind.CODE,
    "argv": ArgKind.ARGV,
    "whence": ArgKind.WHENCE,
    "mask": ArgKind.MASK,
}


@dataclass(frozen=True)
class SyscallParam:
    """One positional parameter of a ``sys_*`` method."""

    name: str
    kind: ArgKind
    required: bool
    #: the literal default for optional parameters (None when required)
    default: object = None


@dataclass(frozen=True)
class SyscallSignature:
    """The full introspected shape of one syscall."""

    call: str
    params: Tuple[SyscallParam, ...]

    @property
    def required(self) -> int:
        return sum(1 for p in self.params if p.required)

    @property
    def maximum(self) -> int:
        return len(self.params)


_SIGNATURES: Optional[Dict[str, SyscallSignature]] = None


def _annotation_name(annotation: object) -> str:
    if annotation is inspect.Parameter.empty:
        return ""
    if isinstance(annotation, str):
        return annotation
    return getattr(annotation, "__name__", str(annotation))


def _classify(name: str, annotation: object) -> ArgKind:
    typed = _BY_NAME_AND_TYPE.get((name, _annotation_name(annotation)))
    if typed is not None:
        return typed
    return _BY_NAME.get(name, ArgKind.OPAQUE)


def syscall_signatures() -> Dict[str, SyscallSignature]:
    """``call -> SyscallSignature`` over every ``sys_*`` kernel method.

    Built lazily in one pass (like the spec validator's arity table) and
    cached; the ``self``/``process`` parameters are dropped, so indexes
    line up with :class:`~repro.suite.program.Op` argument positions.
    """
    global _SIGNATURES
    if _SIGNATURES is not None:
        return _SIGNATURES
    from repro.kernel import Kernel  # late: this module is imported by the package

    positional = (
        inspect.Parameter.POSITIONAL_ONLY,
        inspect.Parameter.POSITIONAL_OR_KEYWORD,
    )
    signatures: Dict[str, SyscallSignature] = {}
    for attr in dir(Kernel):
        if not attr.startswith("sys_"):
            continue
        params = [
            p for p in inspect.signature(getattr(Kernel, attr)).parameters.values()
            if p.kind in positional
        ][2:]  # drop self, process
        call = attr[len("sys_"):]
        signatures[call] = SyscallSignature(
            call=call,
            params=tuple(
                SyscallParam(
                    name=p.name,
                    kind=_classify(p.name, p.annotation),
                    required=p.default is inspect.Parameter.empty,
                    default=(
                        None if p.default is inspect.Parameter.empty
                        else p.default
                    ),
                )
                for p in params
            ),
        )
    _SIGNATURES = signatures
    return signatures


def signature_for(call: str) -> SyscallSignature:
    """The signature of one syscall (KeyError names the known calls)."""
    signatures = syscall_signatures()
    try:
        return signatures[call]
    except KeyError:
        raise KeyError(
            f"unknown syscall {call!r}; the kernel implements: "
            f"{sorted(signatures)}"
        ) from None
