"""Processes, credentials, and file descriptor tables."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.kernel.errors import Errno, KernelError


@dataclass
class Credentials:
    """POSIX real/effective/saved user and group ids."""

    uid: int = 0
    gid: int = 0
    euid: int = 0
    egid: int = 0
    suid: int = 0
    sgid: int = 0

    @classmethod
    def for_user(cls, uid: int, gid: int) -> "Credentials":
        return cls(uid=uid, gid=gid, euid=uid, egid=gid, suid=uid, sgid=gid)

    def copy(self) -> "Credentials":
        return replace(self)

    def as_props(self) -> Dict[str, str]:
        return {
            "uid": str(self.uid),
            "gid": str(self.gid),
            "euid": str(self.euid),
            "egid": str(self.egid),
            "suid": str(self.suid),
            "sgid": str(self.sgid),
        }


@dataclass
class OpenFileDescription:
    """A kernel open-file description (shared by dup'ed descriptors).

    ``object_kind`` distinguishes files from pipe ends so the capture
    systems can label artifacts correctly.
    """

    ino: int
    path: str
    flags: str
    offset: int = 0
    object_kind: str = "file"
    pipe_id: Optional[int] = None
    pipe_end: Optional[str] = None  # "read" | "write"
    refcount: int = 1


@dataclass
class Process:
    """A simulated task."""

    pid: int
    ppid: int
    creds: Credentials
    exe: str
    comm: str
    cwd: str = "/"
    argv: List[str] = field(default_factory=list)
    env: Dict[str, str] = field(default_factory=dict)
    alive: bool = True
    exit_code: Optional[int] = None
    task_id: int = 0  # volatile kernel task identifier (CamFlow node id)
    fds: Dict[int, OpenFileDescription] = field(default_factory=dict)
    next_fd: int = 3
    start_time_ns: int = 0
    vfork_parent_suspended: bool = False

    # -- descriptor table -----------------------------------------------------

    def alloc_fd(self, description: OpenFileDescription, at_least: int = 0) -> int:
        fd = max(self.next_fd, at_least)
        while fd in self.fds:
            fd += 1
        self.fds[fd] = description
        self.next_fd = max(self.next_fd, fd + 1)
        return fd

    def get_fd(self, fd: int) -> OpenFileDescription:
        try:
            return self.fds[fd]
        except KeyError:
            raise KernelError(Errno.EBADF, f"fd {fd}") from None

    def install_fd(self, fd: int, description: OpenFileDescription) -> None:
        self.fds[fd] = description
        description.refcount += 1

    def drop_fd(self, fd: int) -> OpenFileDescription:
        description = self.get_fd(fd)
        del self.fds[fd]
        description.refcount -= 1
        return description

    def clone_fd_table(self) -> Dict[int, OpenFileDescription]:
        """fork/vfork share open-file descriptions, not the table itself."""
        table = dict(self.fds)
        for description in table.values():
            description.refcount += 1
        return table

    def as_props(self) -> Dict[str, str]:
        props = {
            "pid": str(self.pid),
            "ppid": str(self.ppid),
            "exe": self.exe,
            "comm": self.comm,
            "cwd": self.cwd,
        }
        props.update(self.creds.as_props())
        return props
