"""Simulated Linux-like kernel substrate.

:class:`Kernel` composes the machine core with the syscall mixins.  It
replaces the real Linux + auditd + LSM + libc stack that the paper's
capture systems observe; see DESIGN.md §2 for the substitution argument.
"""

from repro.kernel.clock import IdAllocator, VirtualClock, make_rng
from repro.kernel.errors import Errno, KernelError
from repro.kernel.introspect import (
    ArgKind,
    SyscallParam,
    SyscallSignature,
    signature_for,
    syscall_signatures,
)
from repro.kernel.fs import FileSystem, Inode, InodeType
from repro.kernel.machine import (
    BENCH_GID,
    BENCH_UID,
    Machine,
    Pipe,
    SocketPair,
    SyscallOutcome,
)
from repro.kernel.process import Credentials, OpenFileDescription, Process
from repro.kernel.syscalls_fs import FileSyscalls, SocketSyscalls
from repro.kernel.syscalls_misc import MiscSyscalls
from repro.kernel.syscalls_proc import ProcessSyscalls
from repro.kernel.trace import (
    AuditEvent,
    LibcEvent,
    LsmEvent,
    ObjectInfo,
    SubjectInfo,
    Trace,
)


class Kernel(FileSyscalls, SocketSyscalls, MiscSyscalls, ProcessSyscalls, Machine):
    """The full simulated kernel: machine state + every syscall."""


__all__ = [
    "AuditEvent",
    "BENCH_GID",
    "BENCH_UID",
    "Credentials",
    "Errno",
    "FileSystem",
    "FileSyscalls",
    "SocketSyscalls",
    "IdAllocator",
    "Inode",
    "InodeType",
    "Kernel",
    "KernelError",
    "LibcEvent",
    "LsmEvent",
    "Machine",
    "MiscSyscalls",
    "ObjectInfo",
    "OpenFileDescription",
    "Pipe",
    "SocketPair",
    "Process",
    "ProcessSyscalls",
    "SubjectInfo",
    "SyscallOutcome",
    "Trace",
    "VirtualClock",
    "ArgKind",
    "SyscallParam",
    "SyscallSignature",
    "make_rng",
    "signature_for",
    "syscall_signatures",
]
