"""File-system and pipe syscalls (Table 1 groups 1 and 4).

Each ``sys_*`` method validates like the real call (permission checks,
existence, descriptor state), mutates kernel state, and reports the objects
touched plus the LSM hooks that fired.  Failed calls raise
:class:`KernelError` with the partial object/hook context attached, so the
capture systems that observe failures (OPUS via libc, CamFlow via LSM)
still get their view.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.kernel.errors import Errno, KernelError
from repro.kernel.fs import Inode, InodeType
from repro.kernel.machine import Machine, SyscallOutcome
from repro.kernel.process import OpenFileDescription, Process
from repro.kernel.trace import ObjectInfo

_WANT_READ = 4
_WANT_WRITE = 2
_WANT_EXEC = 1


def _flags_want(flags: str) -> int:
    want = 0
    if "O_RDONLY" in flags or "O_RDWR" in flags:
        want |= _WANT_READ
    if "O_WRONLY" in flags or "O_RDWR" in flags or "O_APPEND" in flags:
        want |= _WANT_WRITE
    return want or _WANT_READ


class FileSyscalls:
    """Mixin over :class:`Machine` implementing file and pipe syscalls."""

    # -- open family -----------------------------------------------------------

    def sys_open(
        self: Machine, process: Process, path: str, flags: str = "O_RDWR",
        mode: int = 0o644,
    ) -> int:
        def run() -> SyscallOutcome:
            return self._open_common(process, path, flags, mode, "open")
        return self.syscall(process, "open", (path, flags), run)

    def sys_openat(
        self: Machine, process: Process, path: str, flags: str = "O_RDWR",
        mode: int = 0o644,
    ) -> int:
        def run() -> SyscallOutcome:
            return self._open_common(process, path, flags, mode, "openat")
        return self.syscall(process, "openat", ("AT_FDCWD", path, flags), run)

    def sys_creat(self: Machine, process: Process, path: str, mode: int = 0o644) -> int:
        def run() -> SyscallOutcome:
            return self._open_common(
                process, path, "O_CREAT|O_WRONLY|O_TRUNC", mode, "creat"
            )
        return self.syscall(process, "creat", (path, oct(mode)), run)

    def _open_common(
        self: Machine, process: Process, path: str, flags: str, mode: int,
        syscall_name: str,
    ) -> SyscallOutcome:
        creds = process.creds
        full = self.fs.normalize(path, process.cwd)
        hooks: List[Tuple[str, List[ObjectInfo], Dict[str, str]]] = []
        created = False
        try:
            inode = self.fs.resolve(full, creds.euid, creds.egid)
        except KernelError as error:
            if error.errno is not Errno.ENOENT or "O_CREAT" not in flags:
                raise error.with_context(
                    [ObjectInfo(kind="file", role="path", path=full)], hooks
                )
            parent, name = self.fs.lookup_parent(full, creds.euid, creds.egid)
            parent_obj = self.file_object(parent, self.fs.split(full)[0], "dir")
            try:
                self.fs.check_access(parent, creds.euid, creds.egid, _WANT_WRITE)
            except KernelError as denied:
                hooks.append(("inode_permission", [parent_obj], {"mask": "w"}))
                raise denied.with_context([parent_obj], hooks)
            inode = self.fs.create_entry(
                parent, name, InodeType.REGULAR, mode, creds.euid, creds.egid
            )
            created = True
            hooks.append((
                "inode_create",
                [parent_obj, self.file_object(inode, full, "path")],
                {"mode": oct(mode)},
            ))
        file_obj = self.file_object(inode, full, "path")
        if inode.type is InodeType.DIRECTORY and _flags_want(flags) & _WANT_WRITE:
            raise KernelError(Errno.EISDIR, full).with_context([file_obj], hooks)
        if not created:
            want = _flags_want(flags)
            try:
                self.fs.check_access(inode, creds.euid, creds.egid, want)
            except KernelError as denied:
                hooks.append(("inode_permission", [file_obj], {"mask": "rw"}))
                raise denied.with_context([file_obj], hooks)
            hooks.append(("inode_permission", [file_obj], {"mask": "rw"}))
        if "O_TRUNC" in flags and inode.type is InodeType.REGULAR and not created:
            inode.data = b""
            inode.size = 0
            inode.bump_version()
        hooks.append(("file_open", [file_obj], {"flags": flags}))
        description = OpenFileDescription(ino=inode.ino, path=full, flags=flags)
        fd = process.alloc_fd(description)
        outcome = SyscallOutcome(retval=fd)
        outcome.objects = [self.file_object(inode, full, "path", fd=fd)]
        outcome.hooks = hooks
        if created:
            outcome.objects.append(ObjectInfo(kind="file", role="created", path=full, ino=inode.ino))
        return outcome

    def sys_close(self: Machine, process: Process, fd: int) -> int:
        def run() -> SyscallOutcome:
            description = process.drop_fd(fd)
            objects = [
                ObjectInfo(
                    kind=description.object_kind,
                    role="fd",
                    ino=description.ino or None,
                    path=description.path,
                    fd=fd,
                    pipe_id=description.pipe_id,
                )
            ]
            # No LSM hook fires at close time; the underlying structures are
            # freed lazily (paper §4.1: CamFlow records the eventual free,
            # which ProvMark does not reliably observe).
            return SyscallOutcome(retval=0, objects=objects)
        return self.syscall(process, "close", (fd,), run)

    # -- descriptor duplication -----------------------------------------------

    def _dup_common(
        self: Machine, process: Process, oldfd: int, newfd: Optional[int]
    ) -> SyscallOutcome:
        description = process.get_fd(oldfd)
        if newfd is None:
            fd = process.alloc_fd(description)
            description.refcount += 1
        else:
            if newfd in process.fds:
                process.drop_fd(newfd)
            process.install_fd(newfd, description)
            fd = newfd
        objects = [
            ObjectInfo(
                kind=description.object_kind, role="oldfd",
                ino=description.ino or None, path=description.path, fd=oldfd,
                pipe_id=description.pipe_id,
            ),
            ObjectInfo(
                kind=description.object_kind, role="newfd",
                ino=description.ino or None, path=description.path, fd=fd,
                pipe_id=description.pipe_id,
            ),
        ]
        # dup involves no security decision: no LSM hook fires, which is why
        # CamFlow records nothing for dup (Table 2, note NR).
        return SyscallOutcome(retval=fd, objects=objects)

    def sys_dup(self: Machine, process: Process, oldfd: int) -> int:
        return self.syscall(
            process, "dup", (oldfd,), lambda: self._dup_common(process, oldfd, None)
        )

    def sys_dup2(self: Machine, process: Process, oldfd: int, newfd: int) -> int:
        return self.syscall(
            process, "dup2", (oldfd, newfd),
            lambda: self._dup_common(process, oldfd, newfd),
        )

    def sys_dup3(self: Machine, process: Process, oldfd: int, newfd: int) -> int:
        return self.syscall(
            process, "dup3", (oldfd, newfd, "O_CLOEXEC"),
            lambda: self._dup_common(process, oldfd, newfd),
        )

    # -- read / write -----------------------------------------------------------

    def _io_common(
        self: Machine, process: Process, fd: int, length: int, write: bool,
        positional: bool,
        data: bytes = b"",
    ) -> SyscallOutcome:
        description = process.get_fd(fd)
        hooks: List[Tuple[str, List[ObjectInfo], Dict[str, str]]] = []
        if description.object_kind == "pipe":
            pipe = self.pipes[description.pipe_id or 0]
            obj = self.pipe_object(pipe, "fd", fd=fd)
            if positional:
                raise KernelError(Errno.ESPIPE).with_context([obj], hooks)
            hooks.append((
                "file_permission", [obj], {"mask": "w" if write else "r"}
            ))
            if write:
                if description.pipe_end != "write":
                    raise KernelError(Errno.EBADF).with_context([obj], hooks)
                pipe.buffer += data or b"x" * length
                moved = len(data) or length
            else:
                if description.pipe_end != "read":
                    raise KernelError(Errno.EBADF).with_context([obj], hooks)
                moved = min(length, len(pipe.buffer))
                pipe.buffer = pipe.buffer[moved:]
            return SyscallOutcome(retval=moved, objects=[obj], hooks=hooks)
        inode = self.fs.inode(description.ino)
        obj = self.file_object(inode, description.path, "fd", fd=fd)
        want_flag = _flags_want(description.flags)
        if write and not (want_flag & _WANT_WRITE):
            raise KernelError(Errno.EBADF).with_context([obj], hooks)
        if not write and not (want_flag & _WANT_READ):
            raise KernelError(Errno.EBADF).with_context([obj], hooks)
        hooks.append((
            "file_permission", [obj], {"mask": "w" if write else "r"}
        ))
        if write:
            payload = data or b"x" * length
            offset = 0 if positional else description.offset
            buffer = inode.data[:offset].ljust(offset, b"\0") + payload
            inode.data = buffer + inode.data[offset + len(payload):]
            inode.size = len(inode.data)
            inode.bump_version()
            inode.mtime_ns = self.clock.tick()
            if not positional:
                description.offset += len(payload)
            moved = len(payload)
        else:
            offset = 0 if positional else description.offset
            chunk = inode.data[offset:offset + length]
            if not positional:
                description.offset += len(chunk)
            moved = len(chunk)
        return SyscallOutcome(retval=moved, objects=[obj], hooks=hooks)

    def sys_read(self: Machine, process: Process, fd: int, length: int = 64) -> int:
        return self.syscall(
            process, "read", (fd, length),
            lambda: self._io_common(process, fd, length, write=False, positional=False),
        )

    def sys_pread(self: Machine, process: Process, fd: int, length: int = 64, offset: int = 0) -> int:
        return self.syscall(
            process, "pread", (fd, length, offset),
            lambda: self._io_common(process, fd, length, write=False, positional=True),
        )

    def sys_write(
        self: Machine, process: Process, fd: int, data: bytes = b"hello"
    ) -> int:
        return self.syscall(
            process, "write", (fd, len(data)),
            lambda: self._io_common(
                process, fd, len(data), write=True, positional=False, data=data
            ),
        )

    def sys_pwrite(
        self: Machine, process: Process, fd: int, data: bytes = b"hello", offset: int = 0
    ) -> int:
        return self.syscall(
            process, "pwrite", (fd, len(data), offset),
            lambda: self._io_common(
                process, fd, len(data), write=True, positional=True, data=data
            ),
        )

    # -- links --------------------------------------------------------------------

    def _link_common(
        self: Machine, process: Process, oldpath: str, newpath: str
    ) -> SyscallOutcome:
        creds = process.creds
        old_full = self.fs.normalize(oldpath, process.cwd)
        new_full = self.fs.normalize(newpath, process.cwd)
        hooks: List[Tuple[str, List[ObjectInfo], Dict[str, str]]] = []
        target = self.fs.resolve(old_full, creds.euid, creds.egid, follow=False)
        target_obj = self.file_object(target, old_full, "oldpath")
        parent, name = self.fs.lookup_parent(new_full, creds.euid, creds.egid)
        parent_obj = self.file_object(parent, self.fs.split(new_full)[0], "dir")
        try:
            self.fs.check_access(parent, creds.euid, creds.egid, _WANT_WRITE)
        except KernelError as denied:
            hooks.append(("inode_permission", [parent_obj], {"mask": "w"}))
            raise denied.with_context([target_obj, parent_obj], hooks)
        self.fs.link_entry(parent, name, target)
        new_obj = self.file_object(target, new_full, "newpath")
        hooks.append(("inode_link", [target_obj, parent_obj, new_obj], {}))
        return SyscallOutcome(
            retval=0, objects=[target_obj, new_obj], hooks=hooks
        )

    def sys_link(self: Machine, process: Process, oldpath: str, newpath: str) -> int:
        return self.syscall(
            process, "link", (oldpath, newpath),
            lambda: self._link_common(process, oldpath, newpath),
        )

    def sys_linkat(self: Machine, process: Process, oldpath: str, newpath: str) -> int:
        return self.syscall(
            process, "linkat", ("AT_FDCWD", oldpath, "AT_FDCWD", newpath),
            lambda: self._link_common(process, oldpath, newpath),
        )

    def _symlink_common(
        self: Machine, process: Process, target: str, linkpath: str
    ) -> SyscallOutcome:
        creds = process.creds
        link_full = self.fs.normalize(linkpath, process.cwd)
        hooks: List[Tuple[str, List[ObjectInfo], Dict[str, str]]] = []
        parent, name = self.fs.lookup_parent(link_full, creds.euid, creds.egid)
        parent_obj = self.file_object(parent, self.fs.split(link_full)[0], "dir")
        try:
            self.fs.check_access(parent, creds.euid, creds.egid, _WANT_WRITE)
        except KernelError as denied:
            hooks.append(("inode_permission", [parent_obj], {"mask": "w"}))
            raise denied.with_context([parent_obj], hooks)
        inode = self.fs.create_entry(
            parent, name, InodeType.SYMLINK, 0o777, creds.euid, creds.egid
        )
        inode.symlink_target = target
        link_obj = self.file_object(inode, link_full, "linkpath")
        hooks.append(("inode_symlink", [parent_obj, link_obj], {"target": target}))
        return SyscallOutcome(retval=0, objects=[link_obj], hooks=hooks)

    def sys_symlink(self: Machine, process: Process, target: str, linkpath: str) -> int:
        return self.syscall(
            process, "symlink", (target, linkpath),
            lambda: self._symlink_common(process, target, linkpath),
        )

    def sys_symlinkat(self: Machine, process: Process, target: str, linkpath: str) -> int:
        return self.syscall(
            process, "symlinkat", (target, "AT_FDCWD", linkpath),
            lambda: self._symlink_common(process, target, linkpath),
        )

    # -- mknod ------------------------------------------------------------------

    def _mknod_common(
        self: Machine, process: Process, path: str, mode: str
    ) -> SyscallOutcome:
        creds = process.creds
        full = self.fs.normalize(path, process.cwd)
        hooks: List[Tuple[str, List[ObjectInfo], Dict[str, str]]] = []
        parent, name = self.fs.lookup_parent(full, creds.euid, creds.egid)
        parent_obj = self.file_object(parent, self.fs.split(full)[0], "dir")
        itype = InodeType.FIFO
        if "S_IFCHR" in mode:
            itype = InodeType.CHARDEV
        elif "S_IFBLK" in mode:
            itype = InodeType.BLOCKDEV
        elif "S_IFSOCK" in mode:
            itype = InodeType.SOCKET
        if itype in (InodeType.CHARDEV, InodeType.BLOCKDEV) and creds.euid != 0:
            hooks.append(("inode_permission", [parent_obj], {"mask": "w"}))
            raise KernelError(Errno.EPERM).with_context([parent_obj], hooks)
        try:
            self.fs.check_access(parent, creds.euid, creds.egid, _WANT_WRITE)
        except KernelError as denied:
            hooks.append(("inode_permission", [parent_obj], {"mask": "w"}))
            raise denied.with_context([parent_obj], hooks)
        inode = self.fs.create_entry(
            parent, name, itype, 0o644, creds.euid, creds.egid
        )
        node_obj = self.file_object(inode, full, "path")
        hooks.append(("inode_mknod", [parent_obj, node_obj], {"mode": mode}))
        return SyscallOutcome(retval=0, objects=[node_obj], hooks=hooks)

    def sys_mknod(self: Machine, process: Process, path: str, mode: str = "S_IFIFO") -> int:
        return self.syscall(
            process, "mknod", (path, mode),
            lambda: self._mknod_common(process, path, mode),
        )

    def sys_mknodat(self: Machine, process: Process, path: str, mode: str = "S_IFIFO") -> int:
        return self.syscall(
            process, "mknodat", ("AT_FDCWD", path, mode),
            lambda: self._mknod_common(process, path, mode),
        )

    # -- rename --------------------------------------------------------------------

    def _rename_common(
        self: Machine, process: Process, oldpath: str, newpath: str
    ) -> SyscallOutcome:
        creds = process.creds
        old_full = self.fs.normalize(oldpath, process.cwd)
        new_full = self.fs.normalize(newpath, process.cwd)
        hooks: List[Tuple[str, List[ObjectInfo], Dict[str, str]]] = []
        old_parent, old_name = self.fs.lookup_parent(old_full, creds.euid, creds.egid)
        new_parent, new_name = self.fs.lookup_parent(new_full, creds.euid, creds.egid)
        old_parent_obj = self.file_object(old_parent, self.fs.split(old_full)[0], "olddir")
        new_parent_obj = self.file_object(new_parent, self.fs.split(new_full)[0], "newdir")
        moving_ino = old_parent.entries.get(old_name)
        if moving_ino is None:
            raise KernelError(Errno.ENOENT, old_full).with_context(
                [old_parent_obj], hooks
            )
        moving = self.fs.inode(moving_ino)
        old_obj = self.file_object(moving, old_full, "oldpath")
        for parent, parent_obj in ((old_parent, old_parent_obj), (new_parent, new_parent_obj)):
            try:
                self.fs.check_access(parent, creds.euid, creds.egid, _WANT_WRITE)
            except KernelError as denied:
                hooks.append(("inode_permission", [parent_obj], {"mask": "w"}))
                raise denied.with_context([old_obj, parent_obj], hooks)
            hooks.append(("inode_permission", [parent_obj], {"mask": "w"}))
        existing_ino = new_parent.entries.get(new_name)
        if existing_ino is not None:
            existing = self.fs.inode(existing_ino)
            # Overwriting a root-owned file as non-root fails on the sticky
            # /etc case used by the failed-rename benchmark.
            if creds.euid != 0 and existing.uid != creds.euid and not self.fs.may_access(
                existing, creds.euid, creds.egid, _WANT_WRITE
            ):
                raise KernelError(Errno.EACCES, new_full).with_context(
                    [old_obj, self.file_object(existing, new_full, "newpath")], hooks
                )
            self.fs.unlink_entry(new_parent, new_name)
        del old_parent.entries[old_name]
        new_parent.entries[new_name] = moving.ino
        old_parent.bump_version()
        new_parent.bump_version()
        moving.bump_version()
        new_obj = self.file_object(moving, new_full, "newpath")
        hooks.append(("inode_rename", [old_obj, new_obj, old_parent_obj, new_parent_obj], {}))
        return SyscallOutcome(retval=0, objects=[old_obj, new_obj], hooks=hooks)

    def sys_rename(self: Machine, process: Process, oldpath: str, newpath: str) -> int:
        return self.syscall(
            process, "rename", (oldpath, newpath),
            lambda: self._rename_common(process, oldpath, newpath),
        )

    def sys_renameat(self: Machine, process: Process, oldpath: str, newpath: str) -> int:
        return self.syscall(
            process, "renameat", ("AT_FDCWD", oldpath, "AT_FDCWD", newpath),
            lambda: self._rename_common(process, oldpath, newpath),
        )

    # -- truncate -----------------------------------------------------------------

    def _truncate_inode(
        self: Machine, inode: Inode, length: int
    ) -> None:
        inode.data = inode.data[:length].ljust(length, b"\0")
        inode.size = length
        inode.bump_version()
        inode.mtime_ns = self.clock.tick()

    def sys_truncate(self: Machine, process: Process, path: str, length: int = 0) -> int:
        def run() -> SyscallOutcome:
            creds = process.creds
            full = self.fs.normalize(path, process.cwd)
            hooks: List[Tuple[str, List[ObjectInfo], Dict[str, str]]] = []
            inode = self.fs.resolve(full, creds.euid, creds.egid)
            obj = self.file_object(inode, full, "path")
            try:
                self.fs.check_access(inode, creds.euid, creds.egid, _WANT_WRITE)
            except KernelError as denied:
                hooks.append(("inode_permission", [obj], {"mask": "w"}))
                raise denied.with_context([obj], hooks)
            self._truncate_inode(inode, length)
            hooks.append(("inode_permission", [obj], {"mask": "w"}))
            hooks.append(("path_truncate", [obj], {"length": str(length)}))
            return SyscallOutcome(retval=0, objects=[obj], hooks=hooks)
        return self.syscall(process, "truncate", (path, length), run)

    def sys_ftruncate(self: Machine, process: Process, fd: int, length: int = 0) -> int:
        def run() -> SyscallOutcome:
            description = process.get_fd(fd)
            inode = self.fs.inode(description.ino)
            obj = self.file_object(inode, description.path, "fd", fd=fd)
            if not _flags_want(description.flags) & _WANT_WRITE:
                raise KernelError(Errno.EBADF).with_context([obj], [])
            self._truncate_inode(inode, length)
            hooks = [("path_truncate", [obj], {"length": str(length)})]
            return SyscallOutcome(retval=0, objects=[obj], hooks=hooks)
        return self.syscall(process, "ftruncate", (fd, length), run)

    # -- unlink --------------------------------------------------------------------

    def _unlink_common(self: Machine, process: Process, path: str) -> SyscallOutcome:
        creds = process.creds
        full = self.fs.normalize(path, process.cwd)
        hooks: List[Tuple[str, List[ObjectInfo], Dict[str, str]]] = []
        parent, name = self.fs.lookup_parent(full, creds.euid, creds.egid)
        parent_obj = self.file_object(parent, self.fs.split(full)[0], "dir")
        target_ino = parent.entries.get(name)
        if target_ino is None:
            raise KernelError(Errno.ENOENT, full).with_context([parent_obj], hooks)
        target = self.fs.inode(target_ino)
        target_obj = self.file_object(target, full, "path")
        try:
            self.fs.check_access(parent, creds.euid, creds.egid, _WANT_WRITE)
        except KernelError as denied:
            hooks.append(("inode_permission", [parent_obj], {"mask": "w"}))
            raise denied.with_context([target_obj, parent_obj], hooks)
        self.fs.unlink_entry(parent, name)
        hooks.append(("inode_permission", [parent_obj], {"mask": "w"}))
        hooks.append(("inode_unlink", [parent_obj, target_obj], {}))
        return SyscallOutcome(retval=0, objects=[target_obj], hooks=hooks)

    def sys_unlink(self: Machine, process: Process, path: str) -> int:
        return self.syscall(
            process, "unlink", (path,), lambda: self._unlink_common(process, path)
        )

    def sys_unlinkat(self: Machine, process: Process, path: str) -> int:
        return self.syscall(
            process, "unlinkat", ("AT_FDCWD", path, 0),
            lambda: self._unlink_common(process, path),
        )

    # -- pipes ---------------------------------------------------------------------

    def _pipe_common(self: Machine, process: Process, flags: str) -> SyscallOutcome:
        pipe = self.alloc_pipe()
        read_description = self.description_for_pipe(pipe, "read")
        write_description = self.description_for_pipe(pipe, "write")
        read_fd = process.alloc_fd(read_description)
        write_fd = process.alloc_fd(write_description)
        objects = [
            self.pipe_object(pipe, "read_end", fd=read_fd),
            self.pipe_object(pipe, "write_end", fd=write_fd),
        ]
        # Anonymous pipe creation allocates inodes internally but fires no
        # provenance-bearing LSM hook in CamFlow's recorded set.
        return SyscallOutcome(retval=0, objects=objects)

    def sys_pipe(self: Machine, process: Process) -> int:
        return self.syscall(
            process, "pipe", ("fds",), lambda: self._pipe_common(process, "")
        )

    def sys_pipe2(self: Machine, process: Process, flags: str = "O_CLOEXEC") -> int:
        return self.syscall(
            process, "pipe2", ("fds", flags),
            lambda: self._pipe_common(process, flags),
        )

    def sys_tee(
        self: Machine, process: Process, fd_in: int, fd_out: int, length: int = 64
    ) -> int:
        def run() -> SyscallOutcome:
            description_in = process.get_fd(fd_in)
            description_out = process.get_fd(fd_out)
            if description_in.object_kind != "pipe" or description_out.object_kind != "pipe":
                raise KernelError(Errno.EINVAL)
            pipe_in = self.pipes[description_in.pipe_id or 0]
            pipe_out = self.pipes[description_out.pipe_id or 0]
            in_obj = self.pipe_object(pipe_in, "pipe_in", fd=fd_in)
            out_obj = self.pipe_object(pipe_out, "pipe_out", fd=fd_out)
            moved = min(length, len(pipe_in.buffer))
            pipe_out.buffer += pipe_in.buffer[:moved]
            hooks = [
                ("file_permission", [in_obj], {"mask": "r"}),
                ("file_permission", [out_obj], {"mask": "w"}),
                ("file_splice_pipe_to_pipe", [in_obj, out_obj], {"len": str(moved)}),
            ]
            return SyscallOutcome(retval=moved, objects=[in_obj, out_obj], hooks=hooks)
        return self.syscall(process, "tee", (fd_in, fd_out, length), run)


class SocketSyscalls:
    """Mixin over :class:`Machine` implementing local-socket syscalls.

    These back the paper's introductory motivation: communication over
    local sockets is a blind spot for recorders that do not hook it —
    "attackers can evade notice by using these communication channels".
    Only the LSM vantage (CamFlow) observes them by default.
    """

    def sys_socketpair(self: Machine, process: Process) -> int:
        def run() -> SyscallOutcome:
            pair = self.alloc_socketpair()
            description_a = OpenFileDescription(
                ino=0, path=f"socket:[{pair.socket_id}]", flags="O_RDWR",
                object_kind="socket", pipe_id=pair.socket_id, pipe_end="a",
            )
            description_b = OpenFileDescription(
                ino=0, path=f"socket:[{pair.socket_id}+1]", flags="O_RDWR",
                object_kind="socket", pipe_id=pair.socket_id, pipe_end="b",
            )
            fd_a = process.alloc_fd(description_a)
            fd_b = process.alloc_fd(description_b)
            objects = [
                self.socket_object(pair, "end_a", fd=fd_a),
                self.socket_object(pair, "end_b", fd=fd_b),
            ]
            hooks = [
                ("socket_create", [objects[0]], {"family": "AF_UNIX"}),
                ("socket_socketpair", objects, {}),
            ]
            return SyscallOutcome(retval=0, objects=objects, hooks=hooks)
        return self.syscall(process, "socketpair", ("AF_UNIX", "SOCK_STREAM"), run)

    def _socket_io(
        self: Machine, process: Process, fd: int, send: bool,
        data: bytes, length: int,
    ) -> SyscallOutcome:
        description = process.get_fd(fd)
        if description.object_kind != "socket":
            raise KernelError(Errno.ENOTDIR, "not a socket")
        pair = self.sockets[description.pipe_id or 0]
        obj = self.socket_object(pair, "fd", fd=fd)
        hooks = [(
            "socket_sendmsg" if send else "socket_recvmsg",
            [obj], {"len": str(len(data) or length)},
        )]
        if send:
            moved = pair.send(description.pipe_end or "a", data)
        else:
            moved = len(pair.recv(description.pipe_end or "a", length))
        return SyscallOutcome(retval=moved, objects=[obj], hooks=hooks)

    def sys_send(self: Machine, process: Process, fd: int, data: bytes = b"payload") -> int:
        return self.syscall(
            process, "send", (fd, len(data)),
            lambda: self._socket_io(process, fd, True, data, 0),
        )

    def sys_recv(self: Machine, process: Process, fd: int, length: int = 64) -> int:
        return self.syscall(
            process, "recv", (fd, length),
            lambda: self._socket_io(process, fd, False, b"", length),
        )
