"""Staged pipeline kernel (paper Figure 3 as composable stages).

The four ProvMark subsystems — recording, transformation,
generalization, comparison — are :class:`Stage` objects with declared
inputs and outputs, operating on a shared :class:`RunContext`.  A
:class:`Pipeline` wires them together, owns per-stage wall-clock timing,
and transparently checks each stage against the persistent
:class:`~repro.storage.artifacts.ArtifactStore` when one is configured:
a stage whose key (benchmark, tool, resolved config, seed, stage) has a
stored artifact is *restored* instead of recomputed, with hit/miss
counters recorded in :class:`~repro.core.result.StageTimings`.

Restored stages are exact replays: graph payloads preserve element
insertion order, and each solver-using stage stores the solver-counter
delta it produced, so a warm run reports the identical
``solver_steps``/``cache`` counters a cold run does.  Expected stage
failures (no consistent trial pair, unembeddable background) raise
:class:`StageFailure` and are cached too, so a deterministic failure is
also served from the store on re-runs.

:class:`~repro.core.pipeline.ProvMark` is a thin driver over
:func:`default_pipeline`; new stages (or replacement engines for one
stage) compose without touching the driver.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.capture.base import CaptureSystem
from repro.core.compare import ComparisonError, ComparisonOutcome, compare
from repro.core.generalize import (
    GeneralizationError,
    GeneralizationOutcome,
    generalize_trials,
)
from repro.core.recording import Recorder, RecordingSession
from repro.core.result import StageTimings
from repro.core.transform import transform
from repro.graph.model import PropertyGraph
from repro.solver.native import SolverStats, solver_stats
from repro.storage.artifacts import (
    ArtifactError,
    ArtifactStore,
    graph_from_payload,
    graph_to_payload,
)
from repro.suite.program import Program

#: stage name under which the driver stores assembled BenchmarkResults
#: (consulted by ``provmark batch --resume``)
RESULT_STAGE = "result"


class PipelineDefinitionError(Exception):
    """A pipeline's stages do not chain (missing input products)."""


@dataclass(frozen=True)
class ProgressEvent:
    """One stage-boundary notification emitted by :meth:`Pipeline.run`.

    ``status`` is ``"started"`` before a stage executes, ``"finished"``
    after it completes (computed or restored from the artifact store),
    and ``"failed"`` when it raised :class:`StageFailure`.  ``elapsed``
    is the stage's wall clock so far (0.0 for ``"started"``).
    """

    benchmark: str
    stage: str
    status: str
    elapsed: float = 0.0


#: callback signature for stage-boundary progress notifications
ProgressCallback = Callable[[ProgressEvent], None]


class StageFailure(Exception):
    """An expected, result-producing stage failure (paper's FAILED cell).

    Carries an optional cacheable ``payload`` so deterministic failures
    are served from the artifact store on re-runs just like successes.
    """

    def __init__(
        self, message: str, payload: Optional[Dict[str, object]] = None
    ) -> None:
        super().__init__(message)
        self.payload = payload


class DeadlineExceeded(Exception):
    """A run overran its deadline (checked at stage boundaries).

    Deliberately *not* a :class:`StageFailure`: a deadline miss is a
    property of this run's wall clock, not of the benchmark, so it is
    never cached in the artifact store and never classified as a result.
    """


@dataclass
class RunContext:
    """Everything one benchmark run reads and produces.

    The resolved configuration scalars are flattened in (rather than a
    ``PipelineConfig`` reference) so the kernel has no dependency on the
    driver layer and the cache key is explicit about what it covers.
    """

    program: Program
    capture: CaptureSystem
    tool: str
    trials: int
    filtergraphs: bool
    engine: str
    seed: Optional[int]
    truncation_rate: float
    fg_pair_policy: str
    bg_pair_policy: str
    timings: StageTimings = field(default_factory=StageTimings)
    store: Optional[ArtifactStore] = None
    #: read stage artifacts (False: recompute everything, refresh store)
    use_cache: bool = True
    #: stage-boundary observer (job progress, cancellation); exceptions
    #: it raises propagate out of :meth:`Pipeline.run` unchanged
    progress: Optional[ProgressCallback] = None
    #: absolute ``time.perf_counter()`` instant after which the run must
    #: stop; checked before each stage starts (never mid-stage), raising
    #: :class:`DeadlineExceeded`.  Excluded from :meth:`key_material` —
    #: a deadline bounds wall clock, it cannot change results.
    deadline_at: Optional[float] = None
    # -- stage products ----------------------------------------------------
    session: Optional[RecordingSession] = None
    fg_graphs: Optional[List[PropertyGraph]] = None
    bg_graphs: Optional[List[PropertyGraph]] = None
    fg_outcome: Optional[GeneralizationOutcome] = None
    bg_outcome: Optional[GeneralizationOutcome] = None
    comparison: Optional[ComparisonOutcome] = None
    #: set by Pipeline.run when a stage raised StageFailure
    failure: Optional[str] = None
    #: memoized key_material() result (invariant for the whole run)
    _key_material: Optional[Dict[str, object]] = field(
        default=None, repr=False
    )

    def key_material(self) -> Dict[str, object]:
        """The run's stable identity: what the artifact key hashes over.

        Covers the benchmark program (by content, not just name — a
        custom ``Program`` with the same name keys differently), the
        capture backend (class + config repr + output format), and every
        resolved pipeline knob that can change any stage's output.
        Parallelism and store settings are deliberately excluded: they
        cannot change results.  The keys rely on seeded determinism —
        drivers must not offer the store to a run without a seed.
        """
        if self._key_material is not None:
            return self._key_material
        capture_cls = type(self.capture)
        self._key_material = {
            "program": {
                "name": self.program.name,
                # frozen dataclass repr: deterministic, content-based
                "fingerprint": repr(self.program),
            },
            "tool": self.tool,
            "capture": {
                "class": f"{capture_cls.__module__}.{capture_cls.__qualname__}",
                "config": repr(getattr(self.capture, "config", None)),
                "output_format": self.capture.output_format,
            },
            "trials": self.trials,
            "filtergraphs": self.filtergraphs,
            "engine": self.engine,
            "seed": self.seed,
            "truncation_rate": self.truncation_rate,
            "fg_pair_policy": self.fg_pair_policy,
            "bg_pair_policy": self.bg_pair_policy,
        }
        return self._key_material


def _solver_delta_payload(before: SolverStats) -> Dict[str, int]:
    delta = solver_stats().delta(before)
    return {
        "solver_steps": delta.steps,
        "solver_searches": delta.searches,
        "matching_cache_hits": delta.matching_cache_hits,
        "cost_cache_hits": delta.cost_cache_hits,
        "decomposed_components": delta.decomposed_components,
        "component_steps_max": delta.component_steps_max,
    }


def _apply_solver_counters(
    timings: StageTimings, counters: Mapping[str, int]
) -> None:
    timings.solver_steps += int(counters.get("solver_steps", 0))
    timings.solver_searches += int(counters.get("solver_searches", 0))
    timings.matching_cache_hits += int(counters.get("matching_cache_hits", 0))
    timings.cost_cache_hits += int(counters.get("cost_cache_hits", 0))
    timings.decomposed_components += int(
        counters.get("decomposed_components", 0)
    )
    # High-water mark, not an accumulator (see SolverStats.delta).
    timings.component_steps_max = max(
        timings.component_steps_max, int(counters.get("component_steps_max", 0))
    )


class Stage(abc.ABC):
    """One pipeline subsystem with declared inputs/outputs.

    ``inputs``/``outputs`` name :class:`RunContext` product fields; the
    :class:`Pipeline` constructor validates that every stage's inputs
    are produced by an earlier stage.  ``timing_field`` names the
    :class:`StageTimings` attribute that accumulates this stage's wall
    clock (whether computed or restored).
    """

    name: str = "stage"
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[str, ...] = ()
    timing_field: str = ""

    @abc.abstractmethod
    def run(self, ctx: RunContext) -> Optional[Dict[str, object]]:
        """Compute this stage's outputs onto ``ctx``.

        Returns the JSON payload to persist (or ``None`` for
        uncacheable stages).  Expected failures raise
        :class:`StageFailure` with their own cacheable payload.
        """

    @abc.abstractmethod
    def restore(self, ctx: RunContext, payload: Mapping[str, object]) -> None:
        """Rebuild this stage's outputs on ``ctx`` from a stored payload.

        Raises :class:`StageFailure` when the payload records a cached
        failure.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class RecordingStage(Stage):
    """Stage 1 — run fg/bg trials under the capture tool (paper §3.2)."""

    name = "recording"
    outputs = ("session",)
    timing_field = "recording"

    def run(self, ctx: RunContext) -> Dict[str, object]:
        recorder = Recorder(
            ctx.capture,
            trials=ctx.trials,
            seed=ctx.seed,
            truncation_rate=ctx.truncation_rate,
        )
        ctx.session = recorder.record(ctx.program)
        ctx.timings.virtual_recording = ctx.session.virtual_seconds
        return ctx.session.to_payload()

    def restore(self, ctx: RunContext, payload: Mapping[str, object]) -> None:
        ctx.session = RecordingSession.from_payload(payload, ctx.program)
        ctx.timings.virtual_recording = ctx.session.virtual_seconds


class TransformationStage(Stage):
    """Stage 2 — native outputs to Datalog property graphs (paper §3.3)."""

    name = "transformation"
    inputs = ("session",)
    outputs = ("fg_graphs", "bg_graphs")
    timing_field = "transformation"

    def run(self, ctx: RunContext) -> Dict[str, object]:
        ctx.fg_graphs = self._transform_trials(ctx, foreground=True)
        ctx.bg_graphs = self._transform_trials(ctx, foreground=False)
        return {
            "fg": [graph_to_payload(g) for g in ctx.fg_graphs],
            "bg": [graph_to_payload(g) for g in ctx.bg_graphs],
        }

    @staticmethod
    def _transform_trials(
        ctx: RunContext, foreground: bool
    ) -> List[PropertyGraph]:
        session = ctx.session
        trials = (
            session.foreground_trials if foreground
            else session.background_trials
        )
        prefix = "fg" if foreground else "bg"
        return [
            transform(trial.raw, ctx.capture.output_format, gid=f"{prefix}{i}")
            for i, trial in enumerate(trials)
        ]

    def restore(self, ctx: RunContext, payload: Mapping[str, object]) -> None:
        ctx.fg_graphs = [graph_from_payload(p) for p in payload["fg"]]
        ctx.bg_graphs = [graph_from_payload(p) for p in payload["bg"]]


class GeneralizationStage(Stage):
    """Stage 3 — similarity classes to one graph per variant (paper §3.4)."""

    name = "generalization"
    inputs = ("fg_graphs", "bg_graphs")
    outputs = ("fg_outcome", "bg_outcome")
    timing_field = "generalization"

    def run(self, ctx: RunContext) -> Dict[str, object]:
        before = solver_stats().snapshot()
        try:
            fg_outcome = generalize_trials(
                ctx.fg_graphs, filtergraphs=ctx.filtergraphs,
                engine=ctx.engine, pair_policy=ctx.fg_pair_policy,
            )
            bg_outcome = generalize_trials(
                ctx.bg_graphs, filtergraphs=ctx.filtergraphs,
                engine=ctx.engine, pair_policy=ctx.bg_pair_policy,
            )
        except GeneralizationError as error:
            counters = _solver_delta_payload(before)
            _apply_solver_counters(ctx.timings, counters)
            raise StageFailure(
                str(error), payload={"failed": str(error), "solver": counters}
            ) from error
        counters = _solver_delta_payload(before)
        _apply_solver_counters(ctx.timings, counters)
        ctx.fg_outcome, ctx.bg_outcome = fg_outcome, bg_outcome
        return {
            "fg": fg_outcome.to_payload(),
            "bg": bg_outcome.to_payload(),
            "solver": counters,
        }

    def restore(self, ctx: RunContext, payload: Mapping[str, object]) -> None:
        # Decode fully before touching ctx, so a rejected payload leaves
        # the timings/counters untouched for the recompute fallback.
        if "failed" in payload:
            _apply_solver_counters(ctx.timings, payload.get("solver", {}))
            raise StageFailure(str(payload["failed"]))
        fg_outcome = GeneralizationOutcome.from_payload(payload["fg"])
        bg_outcome = GeneralizationOutcome.from_payload(payload["bg"])
        _apply_solver_counters(ctx.timings, payload.get("solver", {}))
        ctx.fg_outcome, ctx.bg_outcome = fg_outcome, bg_outcome


class ComparisonStage(Stage):
    """Stage 4 — subtract background from foreground (paper §3.5)."""

    name = "comparison"
    inputs = ("fg_outcome", "bg_outcome")
    outputs = ("comparison",)
    timing_field = "comparison"

    def run(self, ctx: RunContext) -> Dict[str, object]:
        before = solver_stats().snapshot()
        try:
            outcome = compare(
                ctx.fg_outcome.graph, ctx.bg_outcome.graph, engine=ctx.engine
            )
        except ComparisonError as error:
            counters = _solver_delta_payload(before)
            _apply_solver_counters(ctx.timings, counters)
            raise StageFailure(
                str(error), payload={"failed": str(error), "solver": counters}
            ) from error
        counters = _solver_delta_payload(before)
        _apply_solver_counters(ctx.timings, counters)
        ctx.comparison = outcome
        return {"outcome": outcome.to_payload(), "solver": counters}

    def restore(self, ctx: RunContext, payload: Mapping[str, object]) -> None:
        if "failed" in payload:
            _apply_solver_counters(ctx.timings, payload.get("solver", {}))
            raise StageFailure(str(payload["failed"]))
        comparison = ComparisonOutcome.from_payload(payload["outcome"])
        _apply_solver_counters(ctx.timings, payload.get("solver", {}))
        ctx.comparison = comparison


class Pipeline:
    """An ordered stage composition over a shared :class:`RunContext`."""

    def __init__(self, stages: Sequence[Stage]) -> None:
        self.stages: Tuple[Stage, ...] = tuple(stages)
        produced: set = set()
        for stage in self.stages:
            missing = [name for name in stage.inputs if name not in produced]
            if missing:
                raise PipelineDefinitionError(
                    f"stage {stage.name!r} needs {missing} but earlier "
                    f"stages only produce {sorted(produced)}"
                )
            produced.update(stage.outputs)

    def run(self, ctx: RunContext) -> RunContext:
        """Run every stage in order; stop at the first failed stage.

        Per-stage wall clock (computed or restored) lands in the stage's
        ``timing_field``; a :class:`StageFailure` sets ``ctx.failure``
        and short-circuits the remaining stages, mirroring the paper's
        FAILED classification path.  With ``ctx.progress`` set, a
        :class:`ProgressEvent` is emitted at every stage boundary
        (started / finished / failed); callback exceptions propagate,
        which is how job cancellation aborts a run between stages.
        """
        for stage in self.stages:
            if (
                ctx.deadline_at is not None
                and time.perf_counter() > ctx.deadline_at
            ):
                raise DeadlineExceeded(
                    f"benchmark {ctx.program.name!r} overran its deadline "
                    f"before stage {stage.name!r}"
                )
            self._emit(ctx, stage, "started", 0.0)
            started = time.perf_counter()
            try:
                self._run_stage(stage, ctx)
            except StageFailure as failure:
                ctx.failure = str(failure)
                elapsed = self._credit_time(ctx, stage, started)
                self._emit(ctx, stage, "failed", elapsed)
                break
            elapsed = self._credit_time(ctx, stage, started)
            self._emit(ctx, stage, "finished", elapsed)
        return ctx

    @staticmethod
    def _emit(
        ctx: RunContext, stage: Stage, status: str, elapsed: float
    ) -> None:
        if ctx.progress is not None:
            ctx.progress(ProgressEvent(
                benchmark=ctx.program.name, stage=stage.name,
                status=status, elapsed=elapsed,
            ))

    @staticmethod
    def _credit_time(ctx: RunContext, stage: Stage, started: float) -> float:
        elapsed = time.perf_counter() - started
        current = getattr(ctx.timings, stage.timing_field)
        setattr(ctx.timings, stage.timing_field, current + elapsed)
        return elapsed

    @staticmethod
    def _run_stage(stage: Stage, ctx: RunContext) -> None:
        material: Optional[Dict[str, object]] = None
        if ctx.store is not None:
            material = dict(ctx.key_material())
            material["stage"] = stage.name
            if ctx.use_cache:
                payload = ctx.store.load(stage.name, material)
                if payload is not None:
                    try:
                        stage.restore(ctx, payload)
                        ctx.timings.store_hits += 1
                        return
                    except StageFailure:
                        # a cached deterministic failure replays as a hit
                        ctx.timings.store_hits += 1
                        raise
                    except (
                        ArtifactError, AttributeError, IndexError,
                        KeyError, TypeError, ValueError,
                    ):
                        # Valid JSON wrapping a payload the codecs reject
                        # (e.g. written by a different code version):
                        # discard it and recompute, like any corruption.
                        ctx.store.stats.hits -= 1  # load() counted it
                        ctx.store.stats.invalid += 1
                        try:
                            ctx.store.path_for(stage.name, material).unlink()
                        except OSError:
                            pass
            ctx.timings.store_misses += 1
        try:
            payload = stage.run(ctx)
        except StageFailure as failure:
            if material is not None and failure.payload is not None:
                ctx.store.save(stage.name, material, failure.payload)
            raise
        if material is not None and payload is not None:
            ctx.store.save(stage.name, material, payload)


def default_pipeline() -> Pipeline:
    """The paper's Figure 3 pipeline as a stage composition."""
    return Pipeline([
        RecordingStage(),
        TransformationStage(),
        GeneralizationStage(),
        ComparisonStage(),
    ])
