"""Nondeterministic target activity — a prototype of the paper's §5.4.

ProvMark proper handles deterministic targets only.  For nondeterministic
ones (concurrency, races) the paper sketches the needed extension: both
program variants may produce *several* graph structures, one per schedule,
so the trials must be **fingerprinted and grouped by schedule** before
generalization, and each observed schedule benchmarked separately.  It
also warns that completeness — observing *every* schedule — cannot be
guaranteed.

This module implements that sketch:

* :class:`NondetProgram` — a background program plus a set of possible
  target schedules; each foreground trial nondeterministically executes
  one of them (driven by the per-trial seed, like a real scheduler).
* :class:`NondetProvMark` — records many trials, groups the foreground
  graphs into schedule classes via the structural-signature fingerprint,
  generalizes each class with at least two members, and subtracts the
  generalized background from each, yielding one benchmark result per
  *observed* schedule plus an explicit count of unobserved ones.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.capture import CaptureSystem, make_capture
from repro.core.compare import ComparisonError, compare
from repro.core.generalize import GeneralizationError, generalize_trials
from repro.core.result import BenchmarkResult, Classification, StageTimings
from repro.core.transform import transform
from repro.graph.model import PropertyGraph
from repro.suite.executor import ProgramExecutor
from repro.suite.program import Op, Program


@dataclass(frozen=True)
class NondetProgram:
    """A benchmark whose target activity depends on the schedule."""

    name: str
    background: Program
    schedules: Tuple[Tuple[Op, ...], ...]

    def variant(self, schedule_index: int) -> Program:
        """The concrete foreground program for one schedule."""
        ops = list(self.background.ops)
        for op in self.schedules[schedule_index]:
            ops.append(Op(
                op.call, op.args, result=op.result, target=True,
                expect_success=op.expect_success,
            ))
        return Program(
            name=f"{self.name}@{schedule_index}",
            ops=tuple(ops),
            setup=self.background.setup,
            group=self.background.group,
            group_name=self.background.group_name,
            run_as_uid=self.background.run_as_uid,
            run_as_gid=self.background.run_as_gid,
        )


@dataclass
class ScheduleResult:
    """The benchmark result for one observed schedule class."""

    fingerprint_index: int
    trials_in_class: int
    result: BenchmarkResult


@dataclass
class NondetOutcome:
    """Everything one nondeterministic benchmarking run produced."""

    program: str
    schedules: List[ScheduleResult]
    total_trials: int
    unmatched_trials: int
    possible_schedules: int

    @property
    def observed_schedules(self) -> int:
        return len(self.schedules)

    @property
    def complete(self) -> bool:
        """Were all declared schedules observed?  (The paper warns this
        cannot be guaranteed in general — schedules grow exponentially.)"""
        return self.observed_schedules >= self.possible_schedules


class NondetProvMark:
    """Schedule-aware benchmarking of nondeterministic targets."""

    def __init__(
        self,
        tool: str = "spade",
        capture: Optional[CaptureSystem] = None,
        trials: int = 8,
        seed: Optional[int] = None,
        engine: str = "native",
    ) -> None:
        if trials < 4:
            raise ValueError("nondeterministic benchmarking needs >= 4 trials")
        self.capture = capture or make_capture(tool)
        self.trials = trials
        self.engine = engine
        self._rng = random.Random(seed)

    # -- recording -----------------------------------------------------------

    def _record_graphs(
        self, program: NondetProgram
    ) -> Tuple[List[PropertyGraph], List[PropertyGraph]]:
        foregrounds: List[PropertyGraph] = []
        backgrounds: List[PropertyGraph] = []
        for index in range(self.trials):
            trial_seed = self._rng.randrange(2**31)
            # The "scheduler": an unobserved nondeterministic choice.
            schedule = self._rng.randrange(len(program.schedules))
            variant = program.variant(schedule)
            execution = ProgramExecutor(variant, seed=trial_seed).run(True)
            raw = self.capture.record(
                execution.trace, random.Random(trial_seed ^ 0x5EED)
            )
            foregrounds.append(
                transform(raw, self.capture.output_format, gid=f"fg{index}")
            )
        for index in range(max(2, self.trials // 2)):
            trial_seed = self._rng.randrange(2**31)
            execution = ProgramExecutor(
                program.background, seed=trial_seed
            ).run(False)
            raw = self.capture.record(
                execution.trace, random.Random(trial_seed ^ 0x5EED)
            )
            backgrounds.append(
                transform(raw, self.capture.output_format, gid=f"bg{index}")
            )
        return foregrounds, backgrounds

    # -- fingerprint grouping ---------------------------------------------------

    @staticmethod
    def fingerprint_classes(
        graphs: Sequence[PropertyGraph],
    ) -> List[List[int]]:
        """Group trial graphs by the structural-signature fingerprint."""
        buckets: Dict[tuple, List[int]] = {}
        for index, graph in enumerate(graphs):
            buckets.setdefault(graph.structural_signature(), []).append(index)
        return sorted(buckets.values(), key=lambda cls: cls[0])

    # -- the pipeline --------------------------------------------------------------

    def run_benchmark(self, program: NondetProgram) -> NondetOutcome:
        foregrounds, backgrounds = self._record_graphs(program)
        bg_outcome = generalize_trials(backgrounds, engine=self.engine)
        classes = self.fingerprint_classes(foregrounds)
        schedules: List[ScheduleResult] = []
        unmatched = 0
        for class_index, members in enumerate(classes):
            if len(members) < 2:
                unmatched += len(members)
                continue
            class_graphs = [foregrounds[i] for i in members]
            started = time.perf_counter()
            try:
                fg_outcome = generalize_trials(class_graphs, engine=self.engine)
                outcome = compare(
                    fg_outcome.graph, bg_outcome.graph, engine=self.engine
                )
            except (GeneralizationError, ComparisonError):
                unmatched += len(members)
                continue
            elapsed = time.perf_counter() - started
            classification = (
                Classification.EMPTY if outcome.is_empty else Classification.OK
            )
            timings = StageTimings(generalization=elapsed)
            schedules.append(ScheduleResult(
                fingerprint_index=class_index,
                trials_in_class=len(members),
                result=BenchmarkResult(
                    benchmark=f"{program.name}#schedule{class_index}",
                    tool=self.capture.name,
                    classification=classification,
                    target_graph=outcome.target,
                    foreground=fg_outcome.graph,
                    background=bg_outcome.graph,
                    timings=timings,
                    trials=len(members),
                ),
            ))
        return NondetOutcome(
            program=program.name,
            schedules=schedules,
            total_trials=self.trials,
            unmatched_trials=unmatched,
            possible_schedules=len(program.schedules),
        )
