"""Stage 2 — transformation (paper §3.3).

Maps each tool's native output — Graphviz DOT (SPADE), a Neo4j store
(OPUS), PROV-JSON (CamFlow) — into the uniform Datalog property-graph
representation.  For OPUS this includes starting the database session and
querying every node and relationship out of it, which is why the paper's
OPUS transformation times dwarf the others (Figure 6).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.capture.base import RawOutput
from repro.graph.dot import dot_to_graph
from repro.graph.model import PropertyGraph
from repro.graph.provjson import provjson_to_graph
from repro.storage.neo4jsim import Neo4jSim


class TransformError(Exception):
    """Raised for unknown formats or malformed native output."""


def transform_dot(raw: RawOutput, gid: str) -> PropertyGraph:
    if not isinstance(raw, str):
        raise TransformError("DOT transformer expects text output")
    return dot_to_graph(raw, gid=gid)


def transform_provjson(raw: RawOutput, gid: str) -> PropertyGraph:
    if not isinstance(raw, str):
        raise TransformError("PROV-JSON transformer expects text output")
    return provjson_to_graph(raw, gid=gid)


def transform_neo4j(raw: RawOutput, gid: str) -> PropertyGraph:
    if not isinstance(raw, Neo4jSim):
        raise TransformError("Neo4j transformer expects a Neo4jSim store")
    raw.start()  # database/JVM warm-up — the dominant OPUS cost
    graph = PropertyGraph(gid)
    try:
        # Batched session: the compiled rows come back in replay order as
        # one batch, so the graph is built without per-row deserialization
        # or copies (add_node/add_edge copy props on insert).
        session = raw.session()
        for row in session.nodes():
            graph.add_node(f"n{row.node_id}", row.label, row.props)
        for rel in session.relationships():
            graph.add_edge(
                f"e{rel.rel_id}", f"n{rel.start}", f"n{rel.end}", rel.rel_type, rel.props
            )
    finally:
        raw.shutdown()
    return graph


_TRANSFORMERS: Dict[str, Callable[[RawOutput, str], PropertyGraph]] = {
    "dot": transform_dot,
    "provjson": transform_provjson,
    "neo4j": transform_neo4j,
}


def transform(raw: RawOutput, output_format: str, gid: str = "g") -> PropertyGraph:
    """Convert one trial's native output into a property graph."""
    try:
        transformer = _TRANSFORMERS[output_format]
    except KeyError:
        raise TransformError(
            f"unknown output format {output_format!r}; "
            f"known: {sorted(_TRANSFORMERS)}"
        ) from None
    return transformer(raw, gid)


def supported_formats() -> tuple:
    return tuple(sorted(_TRANSFORMERS))
