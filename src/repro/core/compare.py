"""Stage 4 — graph comparison (paper §3.5).

Embeds the generalized background graph into the generalized foreground
graph (approximate subgraph isomorphism, minimizing mismatched
properties), subtracts the match, and keeps anchor nodes as dummies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.graph.model import PropertyGraph
from repro.solver import subgraph_embedding
from repro.solver.native import DUMMY_LABEL, Matching
from repro.storage.artifacts import graph_from_payload, graph_to_payload


class ComparisonError(Exception):
    """The background graph could not be embedded into the foreground."""


@dataclass
class ComparisonOutcome:
    target: PropertyGraph
    matching: Matching

    @property
    def is_empty(self) -> bool:
        return self.target.is_empty()

    def to_payload(self) -> Dict[str, object]:
        return {
            "target": graph_to_payload(self.target),
            "matching": {
                "node_map": dict(self.matching.node_map),
                "edge_map": dict(self.matching.edge_map),
                "cost": self.matching.cost,
            },
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "ComparisonOutcome":
        matching = payload["matching"]
        return cls(
            target=graph_from_payload(payload["target"]),
            matching=Matching(
                node_map=dict(matching["node_map"]),
                edge_map=dict(matching["edge_map"]),
                cost=int(matching["cost"]),
            ),
        )


def compare(
    foreground: PropertyGraph,
    background: PropertyGraph,
    engine: str = "native",
) -> ComparisonOutcome:
    """Subtract the background from the foreground graph."""
    matching = subgraph_embedding(background, foreground, engine=engine)
    if matching is None:
        raise ComparisonError(
            "background does not embed into foreground "
            f"(bg {background.size} elements, fg {foreground.size})"
        )
    target = _subtract(foreground, matching)
    return ComparisonOutcome(target=target, matching=matching)


def _subtract(foreground: PropertyGraph, matching: Matching) -> PropertyGraph:
    matched_nodes = set(matching.node_map.values())
    matched_edges = set(matching.edge_map.values())
    result = PropertyGraph(foreground.gid + "_target")
    kept_edges = [
        edge for edge in foreground.edges() if edge.id not in matched_edges
    ]
    kept_nodes = {
        node.id for node in foreground.nodes() if node.id not in matched_nodes
    }
    anchors = set()
    for edge in kept_edges:
        for endpoint in (edge.src, edge.tgt):
            if endpoint not in kept_nodes:
                anchors.add(endpoint)
    for node in foreground.nodes():
        if node.id in kept_nodes:
            result.add_node(node.id, node.label, node.props)
        elif node.id in anchors:
            result.add_node(node.id, DUMMY_LABEL, {"was": node.label})
    for edge in kept_edges:
        result.add_edge(edge.id, edge.src, edge.tgt, edge.label, edge.props)
    return result
