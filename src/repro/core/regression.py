"""Regression testing of provenance recorders (paper §3.1, Charlie).

Benchmark target graphs are stored on disk as Datalog; later runs are
compared against the stored baselines with the same isomorphism machinery
ProvMark already uses.  Differences are reported so that expected changes
can be accepted (the baseline is replaced) and unexpected ones
investigated as potential bugs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from repro.core.result import BenchmarkResult
from repro.graph.datalog import datalog_to_graph, graph_to_datalog
from repro.graph.model import PropertyGraph
from repro.solver import are_similar, find_isomorphism


@dataclass
class RegressionReport:
    """Outcome of comparing one benchmark against its stored baseline."""

    benchmark: str
    tool: str
    status: str  # "unchanged" | "changed" | "new"
    detail: str = ""

    @property
    def changed(self) -> bool:
        return self.status == "changed"


class RegressionStore:
    """Directory of stored benchmark graphs, one Datalog file per result."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, tool: str, benchmark: str) -> Path:
        return self.root / f"{tool}__{benchmark}.datalog"

    def save(self, result: BenchmarkResult) -> Path:
        """Store a result's target graph as the new baseline."""
        path = self._path(result.tool, result.benchmark)
        header = json.dumps({
            "benchmark": result.benchmark,
            "tool": result.tool,
            "classification": result.classification.value,
        })
        body = graph_to_datalog(result.target_graph, gid="t")
        path.write_text(f"% {header}\n{body}")
        return path

    def load(self, tool: str, benchmark: str) -> Optional[PropertyGraph]:
        path = self._path(tool, benchmark)
        if not path.exists():
            return None
        return datalog_to_graph(path.read_text(), gid="t")

    def baselines(self) -> List[str]:
        return sorted(p.stem for p in self.root.glob("*.datalog"))

    def check(self, result: BenchmarkResult) -> RegressionReport:
        """Compare a fresh result against the stored baseline.

        Graphs are compared by *similarity* (structure-only isomorphism) —
        the same notion ProvMark uses to group trials — so volatile
        properties never cause false alarms; property-level drift on a
        structurally identical graph is reported as changed only when the
        stable (generalized) properties differ under the best matching.
        """
        baseline = self.load(result.tool, result.benchmark)
        if baseline is None:
            return RegressionReport(result.benchmark, result.tool, "new")
        current = result.target_graph
        if not are_similar(baseline, current):
            return RegressionReport(
                result.benchmark, result.tool, "changed",
                detail=(
                    f"structure drifted: baseline {baseline.node_count}n/"
                    f"{baseline.edge_count}e vs current "
                    f"{current.node_count}n/{current.edge_count}e"
                ),
            )
        matching = find_isomorphism(baseline, current, minimize_properties=True)
        if matching is not None and matching.cost > 0:
            return RegressionReport(
                result.benchmark, result.tool, "changed",
                detail=f"{matching.cost} stable properties differ",
            )
        return RegressionReport(result.benchmark, result.tool, "unchanged")

    def check_and_update(
        self, result: BenchmarkResult, accept_changes: bool = False
    ) -> RegressionReport:
        """Charlie's loop: check; store new baselines; optionally accept."""
        report = self.check(result)
        if report.status == "new" or (report.changed and accept_changes):
            self.save(result)
        return report
