"""Stage 3 — graph generalization (paper §3.4).

Partitions the trial graphs into similarity classes, discards graphs that
are only similar to themselves (failed runs), picks the smallest
consistent pair, and generalizes it: the matching that minimizes property
mismatches is computed, and only agreeing properties are kept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.graph.model import PropertyGraph
from repro.solver import (
    generalize_pair,
    isomorphism,
    partition_similarity_classes,
)
from repro.storage.artifacts import graph_from_payload, graph_to_payload


class GeneralizationError(Exception):
    """No pair of consistent trials could be found."""


@dataclass
class GeneralizationOutcome:
    graph: PropertyGraph
    discarded: int
    class_sizes: List[int]

    def to_payload(self) -> Dict[str, object]:
        return {
            "graph": graph_to_payload(self.graph),
            "discarded": self.discarded,
            "class_sizes": list(self.class_sizes),
        }

    @classmethod
    def from_payload(
        cls, payload: Mapping[str, object]
    ) -> "GeneralizationOutcome":
        return cls(
            graph=graph_from_payload(payload["graph"]),
            discarded=int(payload["discarded"]),
            class_sizes=[int(s) for s in payload["class_sizes"]],
        )


def filter_incomplete(graphs: Sequence[PropertyGraph]) -> List[PropertyGraph]:
    """The ``filtergraphs`` option (paper appendix A.4).

    Drops graphs bearing recording-restart artifacts — obviously incomplete
    or incorrect output — before similarity classing.  Increases benchmark
    accuracy at some recording cost (more trials may be needed).
    """
    kept = []
    for graph in graphs:
        if any(node.label == "machine" for node in graph.nodes()):
            continue
        kept.append(graph)
    return kept


def generalize_trials(
    graphs: Sequence[PropertyGraph],
    filtergraphs: bool = False,
    engine: str = "native",
    pair_policy: str = "smallest",
    matching_cache: bool = True,
) -> GeneralizationOutcome:
    """Generalize one program variant's trial graphs into one graph.

    ``pair_policy`` selects which consistent similarity class supplies the
    representative pair.  The paper (§3.4) uses ``"smallest"`` and notes
    ``"largest"`` also works, while *mixing* the policies across program
    variants misbehaves: a larger background may not embed into a smaller
    foreground, and the opposite mix leaves extra structure in the
    difference.  The pipeline exposes the policy so that remark can be
    reproduced (``bench_ablation_pair_choice.py``).

    With ``matching_cache`` (the default) the isomorphism found while
    classing the chosen pair warm-starts the minimizing search instead of
    re-solving the identical problem from scratch; the generalized graph
    is identical either way (the warm bound only prunes, never redirects,
    the branch-and-bound).

    On large trial graphs the minimizing search itself is decomposed: the
    solver partitions the pair along WL-color-stable anchors into
    independent connected components, solves each piece, and stitches the
    results (``repro.solver.native._decomposed_isomorphism``).  The split
    is only taken when a uniformity certificate proves the stitched answer
    byte-identical to the monolithic search, and it falls back to the
    monolithic path — warm bound and all — on any ambiguity, so this stage
    never observes a different generalized graph.  When the split fires,
    the stage's :class:`~repro.core.result.StageTimings` report it via the
    ``decomposed_components`` and ``component_steps_max`` counters.
    """
    if pair_policy not in ("smallest", "largest"):
        raise ValueError(f"unknown pair policy {pair_policy!r}")
    if len(graphs) < 2:
        raise GeneralizationError("need at least two trial graphs")
    pool: List[PropertyGraph] = list(graphs)
    discarded = 0
    if filtergraphs:
        filtered = filter_incomplete(pool)
        discarded += len(pool) - len(filtered)
        pool = filtered
    if len(pool) < 2:
        raise GeneralizationError(
            "fewer than two trials survived graph filtering"
        )
    classes, pair_matchings = partition_similarity_classes(
        pool, collect_matchings=True
    )
    class_sizes = sorted((len(c) for c in classes), reverse=True)
    consistent = [c for c in classes if len(c) >= 2]
    discarded += sum(1 for c in classes if len(c) == 1)
    if not consistent:
        raise GeneralizationError(
            "all trials were singletons: no consistent pair "
            f"(classes: {class_sizes})"
        )
    # Among consistent classes pick the pair of smallest (default) or
    # largest size (paper §3.4: "we choose a pair of graphs whose size is
    # smallest. Picking the two largest graphs also seems to work").
    chooser = min if pair_policy == "smallest" else max
    best_class = chooser(consistent, key=lambda c: pool[c[0]].size)
    g1, g2 = pool[best_class[0]], pool[best_class[1]]
    if engine == "native":
        warm = (
            pair_matchings.get((best_class[0], best_class[1]))
            if matching_cache else None
        )
        generalized = generalize_pair(g1, g2, warm=warm)
    else:
        matching = isomorphism(g1, g2, minimize_properties=True, engine=engine)
        generalized = None
        if matching is not None:
            generalized = _apply_matching(g1, g2, matching)
    if generalized is None:
        raise GeneralizationError("similar graphs failed to generalize")
    return GeneralizationOutcome(
        graph=generalized, discarded=discarded, class_sizes=class_sizes
    )


def _apply_matching(g1: PropertyGraph, g2: PropertyGraph, matching) -> PropertyGraph:
    """Keep agreeing properties under an externally computed matching."""
    out = PropertyGraph(g1.gid)
    for node in g1.nodes():
        other = g2.node(matching.node_map[node.id])
        props = {
            key: value for key, value in node.props.items()
            if other.props.get(key) == value
        }
        out.add_node(node.id, node.label, props)
    for edge in g1.edges():
        other_edge = g2.edge(matching.edge_map[edge.id])
        props = {
            key: value for key, value in edge.props.items()
            if other_edge.props.get(key) == value
        }
        out.add_edge(edge.id, edge.src, edge.tgt, edge.label, props)
    return out
