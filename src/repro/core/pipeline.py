"""The ProvMark pipeline driver (paper Figure 3).

Wires the four subsystems together:

1. **recording** — run fg/bg trials under the selected capture tool;
2. **transformation** — native output → Datalog property graphs;
3. **generalization** — similarity classes → one generalized graph per
   program variant;
4. **comparison** — subtract background from foreground → target graph.

The public entry point is :class:`ProvMark`.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.capture import CaptureSystem, make_capture
from repro.core.compare import ComparisonError, compare
from repro.core.generalize import GeneralizationError, generalize_trials
from repro.core.recording import Recorder, RecordingSession
from repro.core.result import BenchmarkResult, Classification, StageTimings
from repro.core.transform import transform
from repro.graph.model import PropertyGraph
from repro.solver.native import SolverStats, solver_stats
from repro.suite.program import Program
from repro.suite.registry import get_benchmark

#: Tool profiles mirroring ProvMark's config.ini: CamFlow defaults to graph
#: filtering and more trials (paper appendix A.4/A.6 runs CamFlow with 11).
TOOL_PROFILES: Dict[str, Dict[str, object]] = {
    "spade": {"trials": 2, "filtergraphs": False},
    "opus": {"trials": 2, "filtergraphs": False},
    "camflow": {"trials": 5, "filtergraphs": True},
    "spade-camflow": {"trials": 2, "filtergraphs": False},
}


@dataclass
class PipelineConfig:
    """User-facing configuration (the paper's config.ini + CLI options)."""

    tool: str = "spade"
    trials: Optional[int] = None  # None = tool profile default
    filtergraphs: Optional[bool] = None  # None = tool profile default
    engine: str = "native"  # "native" | "asp"
    seed: Optional[int] = None
    truncation_rate: float = 0.0
    #: worker processes for :meth:`ProvMark.run_many` (None/1 = serial)
    max_workers: Optional[int] = None
    #: similarity-class choice per program variant (paper §3.4):
    #: "smallest"/"largest"; setting them differently reproduces the
    #: paper's remark about mismatched choices.
    fg_pair_policy: str = "smallest"
    bg_pair_policy: str = "smallest"

    def resolved_trials(self) -> int:
        if self.trials is not None:
            return self.trials
        return int(TOOL_PROFILES.get(self.tool, {}).get("trials", 2))

    def resolved_filtergraphs(self) -> bool:
        if self.filtergraphs is not None:
            return self.filtergraphs
        return bool(TOOL_PROFILES.get(self.tool, {}).get("filtergraphs", False))


class ProvMark:
    """Automated provenance expressiveness benchmarking.

    >>> provmark = ProvMark(tool="spade", seed=7)
    >>> result = provmark.run_benchmark("open")
    >>> result.classification.value
    'ok'
    """

    def __init__(
        self,
        tool: str = "spade",
        capture: Optional[CaptureSystem] = None,
        config: Optional[PipelineConfig] = None,
        capture_factory: Optional[Callable[[], CaptureSystem]] = None,
        **config_kwargs: object,
    ) -> None:
        if config is None:
            config = PipelineConfig(tool=tool, **config_kwargs)  # type: ignore[arg-type]
        self.config = config
        #: picklable factory (e.g. ``ToolProfile.make_capture``) letting
        #: worker processes rebuild the capture for parallel run_many
        self._capture_factory = capture_factory
        if capture is None and capture_factory is not None:
            capture = capture_factory()
        #: a hand-injected capture without a factory cannot be rebuilt in
        #: worker processes, so run_many stays serial for it
        self._custom_capture = capture is not None and capture_factory is None
        self.capture = capture or make_capture(config.tool)

    # -- public API ----------------------------------------------------------

    def run_benchmark(self, benchmark: Union[str, Program]) -> BenchmarkResult:
        """Run the full four-stage pipeline for one benchmark."""
        program = (
            benchmark if isinstance(benchmark, Program)
            else get_benchmark(benchmark)
        )
        timings = StageTimings()

        started = time.perf_counter()
        recorder = Recorder(
            self.capture,
            trials=self.config.resolved_trials(),
            seed=self.config.seed,
            truncation_rate=self.config.truncation_rate,
        )
        session = recorder.record(program)
        timings.recording = time.perf_counter() - started
        timings.virtual_recording = session.virtual_seconds

        started = time.perf_counter()
        fg_graphs = self._transform_trials(session, foreground=True)
        bg_graphs = self._transform_trials(session, foreground=False)
        timings.transformation = time.perf_counter() - started

        filtergraphs = self.config.resolved_filtergraphs()
        started = time.perf_counter()
        before = solver_stats().snapshot()
        try:
            fg_outcome = generalize_trials(
                fg_graphs, filtergraphs=filtergraphs,
                engine=self.config.engine,
                pair_policy=self.config.fg_pair_policy,
            )
            bg_outcome = generalize_trials(
                bg_graphs, filtergraphs=filtergraphs,
                engine=self.config.engine,
                pair_policy=self.config.bg_pair_policy,
            )
        except GeneralizationError as error:
            timings.generalization = time.perf_counter() - started
            self._record_solver(timings, before)
            return self._failure(program, timings, str(error))
        timings.generalization = time.perf_counter() - started

        started = time.perf_counter()
        try:
            outcome = compare(
                fg_outcome.graph, bg_outcome.graph, engine=self.config.engine
            )
        except ComparisonError as error:
            timings.comparison = time.perf_counter() - started
            self._record_solver(timings, before)
            return self._failure(
                program, timings, str(error),
                foreground=fg_outcome.graph, background=bg_outcome.graph,
            )
        timings.comparison = time.perf_counter() - started
        self._record_solver(timings, before)

        classification = (
            Classification.EMPTY if outcome.is_empty else Classification.OK
        )
        expectation = program.expectation(self.capture.name)
        note = expectation[1] if expectation else ""
        return BenchmarkResult(
            benchmark=program.name,
            tool=self.capture.name,
            classification=classification,
            target_graph=outcome.target,
            foreground=fg_outcome.graph,
            background=bg_outcome.graph,
            timings=timings,
            trials=self.config.resolved_trials(),
            discarded_trials=fg_outcome.discarded + bg_outcome.discarded,
            note=note if classification is Classification.EMPTY or note in ("DV", "SC") else "",
        )

    def run_many(
        self,
        names: List[str],
        max_workers: Optional[int] = None,
    ) -> List[BenchmarkResult]:
        """Run many benchmarks, optionally across worker processes.

        ``max_workers`` (or ``config.max_workers``) > 1 fans the runs out
        over a process pool — each benchmark is fully independent (fresh
        kernel, fresh capture), so full-suite sweeps scale across cores.
        Results are always returned in input order, identical to a serial
        run.  Falls back to serial execution for a hand-injected capture
        object (which cannot be rebuilt in a worker process) and where
        process pools are unavailable or break mid-run.
        """
        workers = (
            max_workers if max_workers is not None else self.config.max_workers
        )
        if workers is None or workers <= 1 or len(names) <= 1:
            return [self.run_benchmark(name) for name in names]
        if self._custom_capture:
            # A hand-injected capture cannot be rebuilt per worker, and
            # sharing one (possibly stateful) instance concurrently would
            # break the identical-to-serial guarantee.
            return [self.run_benchmark(name) for name in names]
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except (OSError, ValueError, ImportError):
            # No usable multiprocessing primitives (e.g. a sandboxed
            # environment): run serially.
            return [self.run_benchmark(name) for name in names]
        try:
            with pool:
                if self._capture_factory is not None:
                    futures = [
                        pool.submit(
                            _run_benchmark_factory_task,
                            self._capture_factory, self.config, name,
                        )
                        for name in names
                    ]
                else:
                    futures = [
                        pool.submit(_run_benchmark_task, self.config, name)
                        for name in names
                    ]
                # Task exceptions (bad config, execution errors) propagate
                # exactly as in a serial run; only a broken pool — workers
                # that could not spawn or died — triggers the fallback.
                return [future.result() for future in futures]
        except BrokenProcessPool:
            return [self.run_benchmark(name) for name in names]

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _record_solver(timings: StageTimings, before: SolverStats) -> None:
        delta = solver_stats().delta(before)
        timings.solver_steps += delta.steps
        timings.solver_searches += delta.searches
        timings.matching_cache_hits += delta.matching_cache_hits
        timings.cost_cache_hits += delta.cost_cache_hits

    def _transform_trials(
        self, session: RecordingSession, foreground: bool
    ) -> List[PropertyGraph]:
        trials = (
            session.foreground_trials if foreground else session.background_trials
        )
        prefix = "fg" if foreground else "bg"
        return [
            transform(trial.raw, self.capture.output_format, gid=f"{prefix}{i}")
            for i, trial in enumerate(trials)
        ]

    def _failure(
        self,
        program: Program,
        timings: StageTimings,
        message: str,
        foreground: Optional[PropertyGraph] = None,
        background: Optional[PropertyGraph] = None,
    ) -> BenchmarkResult:
        return BenchmarkResult(
            benchmark=program.name,
            tool=self.capture.name,
            classification=Classification.FAILED,
            target_graph=PropertyGraph("empty"),
            foreground=foreground,
            background=background,
            timings=timings,
            trials=self.config.resolved_trials(),
            error=message,
        )


def _run_benchmark_task(config: PipelineConfig, name: str) -> BenchmarkResult:
    """Process-pool worker: rebuild the pipeline from config and run."""
    return ProvMark(config=config).run_benchmark(name)


def _run_benchmark_factory_task(
    factory: Callable[[], CaptureSystem],
    config: PipelineConfig,
    name: str,
) -> BenchmarkResult:
    """Process-pool worker for profile-built captures: rebuild and run."""
    return ProvMark(config=config, capture_factory=factory).run_benchmark(name)
