"""The ProvMark pipeline driver (paper Figure 3).

The four subsystems live in :mod:`repro.core.stages` as composable
:class:`~repro.core.stages.Stage` objects; this module is the thin
driver over them:

* :class:`PipelineConfig` — user-facing configuration, resolving tool
  defaults through the capture-backend registry;
* :class:`ProvMark` — builds a :class:`~repro.core.stages.RunContext`
  per benchmark, runs the default pipeline over it, and assembles the
  :class:`BenchmarkResult`;
* the persistent artifact store: with ``store_path`` set, every stage
  output is cached content-addressed on disk and reused by later runs,
  and ``resume=True`` short-circuits whole benchmarks whose final result
  is already stored (``provmark batch --store DIR --resume``).

The public entry point is :class:`ProvMark`.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from collections.abc import Mapping
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.capture import CaptureSystem, make_capture
from repro.capture.registry import (
    Backend,
    UnknownToolError,
    get_backend,
    register_tool,
    registered_tools,
    tool_profile,
)
from repro.core.result import BenchmarkResult, Classification, StageTimings
from repro.core.stages import (
    RESULT_STAGE,
    Pipeline,
    ProgressCallback,
    RunContext,
    default_pipeline,
)
from repro.graph.model import PropertyGraph
from repro.storage.artifacts import ArtifactError, ArtifactStore
from repro.suite.program import Program
from repro.suite.registry import get_benchmark


def _warn_legacy_view(name: str, replacement: str) -> None:
    warnings.warn(
        f"the legacy {name} view is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class _ToolProfileView(Mapping):
    """Legacy ``TOOL_PROFILES`` mapping, backed by the plugin registry.

    Yields ``{"trials": ..., "filtergraphs": ...}`` rows exactly as the
    old hard-coded table did, but stays live: registered plugin backends
    appear here too.  Deprecated — read
    :func:`repro.capture.registry.tool_profile` (or
    ``BenchmarkService.tools()``) instead.
    """

    def __getitem__(self, name: str) -> Dict[str, object]:
        _warn_legacy_view(
            "TOOL_PROFILES", "repro.capture.registry.tool_profile()"
        )
        try:
            profile = tool_profile(name)
        except UnknownToolError:
            raise KeyError(name) from None
        return {"trials": profile.trials, "filtergraphs": profile.filtergraphs}

    def __iter__(self) -> Iterator[str]:
        _warn_legacy_view(
            "TOOL_PROFILES", "repro.capture.registry.registered_tools()"
        )
        return iter(registered_tools())

    def __len__(self) -> int:
        return len(registered_tools())


#: Tool profiles mirroring ProvMark's config.ini (CamFlow defaults to
#: graph filtering and more trials, paper appendix A.4/A.6).  A live view
#: of :mod:`repro.capture.registry` — the single source of tool knowledge.
TOOL_PROFILES: Mapping[str, Dict[str, object]] = _ToolProfileView()


@dataclass
class PipelineConfig:
    """User-facing configuration (the paper's config.ini + CLI options)."""

    tool: str = "spade"
    trials: Optional[int] = None  # None = tool profile default
    filtergraphs: Optional[bool] = None  # None = tool profile default
    engine: str = "native"  # "native" | "asp"
    seed: Optional[int] = None
    truncation_rate: float = 0.0
    #: worker processes for :meth:`ProvMark.run_many` (None/1 = serial)
    max_workers: Optional[int] = None
    #: similarity-class choice per program variant (paper §3.4):
    #: "smallest"/"largest"; setting them differently reproduces the
    #: paper's remark about mismatched choices.
    fg_pair_policy: str = "smallest"
    bg_pair_policy: str = "smallest"
    #: artifact-store directory caching stage outputs (None = disabled;
    #: also bypassed for unseeded — nondeterministic — runs)
    store_path: Optional[str] = None
    #: with a store: serve stored final results without re-running stages
    resume: bool = False
    #: with a store: read stage artifacts back (False forces recomputation
    #: of every stage while still refreshing the stored artifacts)
    cache: bool = True
    #: per-benchmark wall-clock budget in seconds, enforced at stage
    #: boundaries (None = unbounded); an overrun raises
    #: :class:`~repro.core.stages.DeadlineExceeded`
    deadline: Optional[float] = None

    def resolved_trials(self) -> int:
        if self.trials is not None:
            return self.trials
        return tool_profile(self.tool).trials

    def resolved_filtergraphs(self) -> bool:
        if self.filtergraphs is not None:
            return self.filtergraphs
        return tool_profile(self.tool).filtergraphs


class ProvMark:
    """Automated provenance expressiveness benchmarking.

    >>> provmark = ProvMark(tool="spade", seed=7)
    >>> result = provmark.run_benchmark("open")
    >>> result.classification.value
    'ok'

    .. deprecated::
        Direct construction is a compatibility shim over the supported
        surface, :class:`repro.api.BenchmarkService` — results are
        byte-identical, but new code should build a
        :class:`repro.api.RunRequest` and call the service.
    """

    def __init__(
        self,
        tool: str = "spade",
        capture: Optional[CaptureSystem] = None,
        config: Optional[PipelineConfig] = None,
        capture_factory: Optional[Callable[[], CaptureSystem]] = None,
        progress: Optional[ProgressCallback] = None,
        **config_kwargs: object,
    ) -> None:
        warnings.warn(
            "direct ProvMark(...) construction is deprecated; use "
            "repro.api.BenchmarkService with a RunRequest instead "
            "(identical results)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._init(
            tool=tool, capture=capture, config=config,
            capture_factory=capture_factory, progress=progress,
            **config_kwargs,
        )

    @classmethod
    def _internal(cls, **kwargs: object) -> "ProvMark":
        """Construct without the deprecation warning (façade/driver use)."""
        self = cls.__new__(cls)
        self._init(**kwargs)  # type: ignore[arg-type]
        return self

    def _init(
        self,
        tool: str = "spade",
        capture: Optional[CaptureSystem] = None,
        config: Optional[PipelineConfig] = None,
        capture_factory: Optional[Callable[[], CaptureSystem]] = None,
        progress: Optional[ProgressCallback] = None,
        **config_kwargs: object,
    ) -> None:
        if config is None:
            config = PipelineConfig(tool=tool, **config_kwargs)  # type: ignore[arg-type]
        self.config = config
        #: stage-boundary observer handed to every RunContext this
        #: driver builds (the job manager's progress/cancellation hook)
        self.progress = progress
        #: picklable factory (e.g. ``ToolProfile.make_capture``) letting
        #: worker processes rebuild the capture for parallel run_many
        self._capture_factory = capture_factory
        if capture is None and capture_factory is not None:
            capture = capture_factory()
        #: a hand-injected capture without a factory cannot be rebuilt in
        #: worker processes, so run_many stays serial for it
        self._custom_capture = capture is not None and capture_factory is None
        self.capture = capture or make_capture(config.tool)
        self.pipeline: Pipeline = default_pipeline()
        self._store: Optional[ArtifactStore] = None

    # -- public API ----------------------------------------------------------

    def artifact_store(self) -> Optional[ArtifactStore]:
        """The configured artifact store, created lazily (None = no store).

        Unseeded runs are nondeterministic — fresh random trials every
        time — so their outputs must not be content-addressed by config:
        the store is bypassed entirely when ``config.seed`` is None.
        """
        if self.config.store_path is None or self.config.seed is None:
            return None
        if self._store is None:
            self._store = ArtifactStore(self.config.store_path)
        return self._store

    def run_benchmark(self, benchmark: Union[str, Program]) -> BenchmarkResult:
        """Run the full four-stage pipeline for one benchmark."""
        program = (
            benchmark if isinstance(benchmark, Program)
            else get_benchmark(benchmark)
        )
        store = self.artifact_store()
        ctx = self._make_context(program, store)
        if store is not None and self.config.resume and self.config.cache:
            resumed = self._load_stored_result(store, ctx)
            if resumed is not None:
                return resumed
        self.pipeline.run(ctx)
        result = (
            self._failure_result(ctx)
            if ctx.failure is not None
            else self._success_result(ctx)
        )
        if store is not None:
            store.save(
                RESULT_STAGE, self._result_material(ctx), result.to_payload()
            )
        return result

    def run_many(
        self,
        names: List[Union[str, Program]],
        max_workers: Optional[int] = None,
    ) -> List[BenchmarkResult]:
        """Run many benchmarks, optionally across worker processes.

        Entries are registry names or :class:`Program` values directly
        (how the service dispatches spec-defined benchmarks, which
        worker processes' registries would not know by name; frozen
        programs pickle cleanly).

        ``max_workers`` (or ``config.max_workers``) > 1 fans the runs out
        over a process pool — each benchmark is fully independent (fresh
        kernel, fresh capture), so full-suite sweeps scale across cores.
        Results are always returned in input order, identical to a serial
        run.  Falls back to serial execution for a hand-injected capture
        object (which cannot be rebuilt in a worker process) and where
        process pools are unavailable or break mid-run.

        With ``config.store_path`` set, every worker shares the same
        on-disk artifact store (writes are atomic), so a killed sweep
        resumes with ``config.resume`` re-running only what is missing.
        """
        workers = (
            max_workers if max_workers is not None else self.config.max_workers
        )
        if workers is None or workers <= 1 or len(names) <= 1:
            return [self.run_benchmark(name) for name in names]
        if self._custom_capture:
            # A hand-injected capture cannot be rebuilt per worker, and
            # sharing one (possibly stateful) instance concurrently would
            # break the identical-to-serial guarantee.
            return [self.run_benchmark(name) for name in names]
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except (OSError, ValueError, ImportError):
            # No usable multiprocessing primitives (e.g. a sandboxed
            # environment): run serially.
            return [self.run_benchmark(name) for name in names]
        # Plugin backends registered in this process are unknown to
        # freshly spawned workers (only builtins self-register on
        # import), so ship the backend along for re-registration.
        try:
            backend: Optional[Backend] = get_backend(self.config.tool)
        except UnknownToolError:
            backend = None
        try:
            with pool:
                if self._capture_factory is not None:
                    futures = [
                        pool.submit(
                            _run_benchmark_factory_task,
                            self._capture_factory, self.config, name,
                            backend,
                        )
                        for name in names
                    ]
                else:
                    futures = [
                        pool.submit(
                            _run_benchmark_task, self.config, name, backend,
                        )
                        for name in names
                    ]
                # Task exceptions (bad config, execution errors) propagate
                # exactly as in a serial run; only a broken pool — workers
                # that could not spawn or died — triggers the fallback.
                return [future.result() for future in futures]
        except BrokenProcessPool:
            return [self.run_benchmark(name) for name in names]

    # -- context / result assembly -----------------------------------------

    def _make_context(
        self, program: Program, store: Optional[ArtifactStore]
    ) -> RunContext:
        config = self.config
        deadline_at = (
            time.perf_counter() + config.deadline
            if config.deadline is not None else None
        )
        return RunContext(
            program=program,
            capture=self.capture,
            tool=config.tool,
            trials=config.resolved_trials(),
            filtergraphs=config.resolved_filtergraphs(),
            engine=config.engine,
            seed=config.seed,
            truncation_rate=config.truncation_rate,
            fg_pair_policy=config.fg_pair_policy,
            bg_pair_policy=config.bg_pair_policy,
            timings=StageTimings(),
            store=store,
            use_cache=config.cache,
            progress=self.progress,
            deadline_at=deadline_at,
        )

    def _result_material(self, ctx: RunContext) -> Dict[str, object]:
        material = dict(ctx.key_material())
        material["stage"] = RESULT_STAGE
        return material

    def _load_stored_result(
        self, store: ArtifactStore, ctx: RunContext
    ) -> Optional[BenchmarkResult]:
        """The ``--resume`` fast path: replay a completed benchmark.

        The stored result is returned exactly as the completing run
        produced it (timings, counters, graphs); only the store counters
        are rewritten to this run's view — every stage was served from
        the store, none recomputed.
        """
        payload = store.load(RESULT_STAGE, self._result_material(ctx))
        if payload is None:
            return None
        try:
            result = BenchmarkResult.from_payload(payload)
        except (
            ArtifactError, AttributeError, IndexError,
            KeyError, TypeError, ValueError,
        ):
            # A result payload from an incompatible format: recompute
            # (the fresh run overwrites the bad artifact).
            store.stats.hits -= 1  # load() counted it
            store.stats.invalid += 1
            return None
        result.timings.store_hits = len(self.pipeline.stages)
        result.timings.store_misses = 0
        return result

    def _success_result(self, ctx: RunContext) -> BenchmarkResult:
        classification = (
            Classification.EMPTY if ctx.comparison.is_empty
            else Classification.OK
        )
        expectation = ctx.program.expectation(self.capture.name)
        note = expectation[1] if expectation else ""
        return BenchmarkResult(
            benchmark=ctx.program.name,
            tool=self.capture.name,
            classification=classification,
            target_graph=ctx.comparison.target,
            foreground=ctx.fg_outcome.graph,
            background=ctx.bg_outcome.graph,
            timings=ctx.timings,
            trials=ctx.trials,
            discarded_trials=ctx.fg_outcome.discarded + ctx.bg_outcome.discarded,
            note=note if classification is Classification.EMPTY or note in ("DV", "SC") else "",
        )

    def _failure_result(self, ctx: RunContext) -> BenchmarkResult:
        return BenchmarkResult(
            benchmark=ctx.program.name,
            tool=self.capture.name,
            classification=Classification.FAILED,
            target_graph=PropertyGraph("empty"),
            foreground=ctx.fg_outcome.graph if ctx.fg_outcome else None,
            background=ctx.bg_outcome.graph if ctx.bg_outcome else None,
            timings=ctx.timings,
            trials=ctx.trials,
            error=ctx.failure or "",
        )


def _ensure_registered(backend: Optional[Backend]) -> None:
    """Re-register a plugin backend inside a worker process if absent."""
    if backend is not None and backend.name not in registered_tools():
        register_tool(backend.name, backend.cls, backend.profile)


def _run_benchmark_task(
    config: PipelineConfig,
    name: Union[str, Program],
    backend: Optional[Backend] = None,
) -> BenchmarkResult:
    """Process-pool worker: rebuild the pipeline from config and run."""
    _ensure_registered(backend)
    return ProvMark._internal(config=config).run_benchmark(name)


def _run_benchmark_factory_task(
    factory: Callable[[], CaptureSystem],
    config: PipelineConfig,
    name: Union[str, Program],
    backend: Optional[Backend] = None,
) -> BenchmarkResult:
    """Process-pool worker for profile-built captures: rebuild and run."""
    _ensure_registered(backend)
    return ProvMark._internal(
        config=config, capture_factory=factory
    ).run_benchmark(name)
