"""Result types for benchmark runs."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.graph.model import PropertyGraph
from repro.storage.artifacts import graph_from_payload, graph_to_payload


class Classification(enum.Enum):
    """Outcome of one benchmark (Table 2 cell)."""

    OK = "ok"          # target activity produced graph structure
    EMPTY = "empty"    # fg and bg generalized to similar graphs
    FAILED = "failed"  # no consistent trial pair / embedding failed

    def __str__(self) -> str:
        return self.value


@dataclass
class StageTimings:
    """Wall-clock seconds per ProvMark subsystem (Figures 5-10).

    The ``solver_*`` and cache counters aggregate the native engine's
    per-thread :class:`~repro.solver.native.SolverStats` deltas over the
    generalization and comparison stages, making the matching-engine
    optimizations observable per benchmark run.  ``store_hits`` and
    ``store_misses`` count pipeline stage outputs served from / absent in
    the persistent artifact store for *this* run (always 0 when no store
    is configured).
    """

    recording: float = 0.0
    transformation: float = 0.0
    generalization: float = 0.0
    comparison: float = 0.0
    #: virtual recording seconds the real tools would have taken (§5.1)
    virtual_recording: float = 0.0
    #: backtracking steps spent in the matching engine
    solver_steps: int = 0
    #: number of matching searches launched
    solver_searches: int = 0
    #: generalizations warm-started from a cached similarity matching
    matching_cache_hits: int = 0
    #: property-mismatch costs served from the per-search pair cache
    cost_cache_hits: int = 0
    #: independent sub-problems solved by the decomposed exact matcher
    decomposed_components: int = 0
    #: largest single decomposed component searched (high-water mark)
    component_steps_max: int = 0
    #: pipeline stage outputs served from the artifact store this run
    store_hits: int = 0
    #: pipeline stage outputs recomputed (and persisted) this run
    store_misses: int = 0

    @property
    def processing(self) -> float:
        return self.transformation + self.generalization + self.comparison

    def as_row(self) -> Dict[str, float]:
        return {
            "transformation": self.transformation,
            "generalization": self.generalization,
            "comparison": self.comparison,
        }

    def solver_row(self) -> Dict[str, int]:
        return {
            "solver_steps": self.solver_steps,
            "solver_searches": self.solver_searches,
            "matching_cache_hits": self.matching_cache_hits,
            "cost_cache_hits": self.cost_cache_hits,
            "decomposed_components": self.decomposed_components,
            "component_steps_max": self.component_steps_max,
        }

    def store_row(self) -> Dict[str, int]:
        return {
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
        }

    def to_payload(self) -> Dict[str, object]:
        return {
            "recording": self.recording,
            "transformation": self.transformation,
            "generalization": self.generalization,
            "comparison": self.comparison,
            "virtual_recording": self.virtual_recording,
            "solver_steps": self.solver_steps,
            "solver_searches": self.solver_searches,
            "matching_cache_hits": self.matching_cache_hits,
            "cost_cache_hits": self.cost_cache_hits,
            "decomposed_components": self.decomposed_components,
            "component_steps_max": self.component_steps_max,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "StageTimings":
        return cls(**{k: payload[k] for k in cls().to_payload() if k in payload})


@dataclass
class BenchmarkResult:
    """Everything ProvMark produces for one (tool, benchmark) pair."""

    benchmark: str
    tool: str
    classification: Classification
    target_graph: PropertyGraph
    foreground: Optional[PropertyGraph]
    background: Optional[PropertyGraph]
    timings: StageTimings
    trials: int
    discarded_trials: int = 0
    note: str = ""
    error: str = ""

    @property
    def is_empty(self) -> bool:
        return self.classification is Classification.EMPTY

    @property
    def is_ok(self) -> bool:
        return self.classification is Classification.OK

    def summary(self) -> str:
        if self.classification is Classification.OK:
            return (
                f"{self.benchmark}/{self.tool}: ok "
                f"({self.target_graph.node_count} nodes, "
                f"{self.target_graph.edge_count} edges)"
            )
        detail = f" ({self.note})" if self.note else ""
        return f"{self.benchmark}/{self.tool}: {self.classification}{detail}"

    # -- persistence (the artifact store's ``result`` stage) ---------------

    def to_payload(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "tool": self.tool,
            "classification": self.classification.value,
            "target_graph": graph_to_payload(self.target_graph),
            "foreground": (
                graph_to_payload(self.foreground)
                if self.foreground is not None else None
            ),
            "background": (
                graph_to_payload(self.background)
                if self.background is not None else None
            ),
            "timings": self.timings.to_payload(),
            "trials": self.trials,
            "discarded_trials": self.discarded_trials,
            "note": self.note,
            "error": self.error,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "BenchmarkResult":
        return cls(
            benchmark=str(payload["benchmark"]),
            tool=str(payload["tool"]),
            classification=Classification(payload["classification"]),
            target_graph=graph_from_payload(payload["target_graph"]),
            foreground=(
                graph_from_payload(payload["foreground"])
                if payload.get("foreground") is not None else None
            ),
            background=(
                graph_from_payload(payload["background"])
                if payload.get("background") is not None else None
            ),
            timings=StageTimings.from_payload(payload["timings"]),
            trials=int(payload["trials"]),
            discarded_trials=int(payload.get("discarded_trials", 0)),
            note=str(payload.get("note", "")),
            error=str(payload.get("error", "")),
        )
