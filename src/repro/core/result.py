"""Result types for benchmark runs."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.graph.model import PropertyGraph


class Classification(enum.Enum):
    """Outcome of one benchmark (Table 2 cell)."""

    OK = "ok"          # target activity produced graph structure
    EMPTY = "empty"    # fg and bg generalized to similar graphs
    FAILED = "failed"  # no consistent trial pair / embedding failed

    def __str__(self) -> str:
        return self.value


@dataclass
class StageTimings:
    """Wall-clock seconds per ProvMark subsystem (Figures 5-10).

    The ``solver_*`` and cache counters aggregate the native engine's
    per-thread :class:`~repro.solver.native.SolverStats` deltas over the
    generalization and comparison stages, making the matching-engine
    optimizations observable per benchmark run.
    """

    recording: float = 0.0
    transformation: float = 0.0
    generalization: float = 0.0
    comparison: float = 0.0
    #: virtual recording seconds the real tools would have taken (§5.1)
    virtual_recording: float = 0.0
    #: backtracking steps spent in the matching engine
    solver_steps: int = 0
    #: number of matching searches launched
    solver_searches: int = 0
    #: generalizations warm-started from a cached similarity matching
    matching_cache_hits: int = 0
    #: property-mismatch costs served from the per-search pair cache
    cost_cache_hits: int = 0

    @property
    def processing(self) -> float:
        return self.transformation + self.generalization + self.comparison

    def as_row(self) -> Dict[str, float]:
        return {
            "transformation": self.transformation,
            "generalization": self.generalization,
            "comparison": self.comparison,
        }

    def solver_row(self) -> Dict[str, int]:
        return {
            "solver_steps": self.solver_steps,
            "solver_searches": self.solver_searches,
            "matching_cache_hits": self.matching_cache_hits,
            "cost_cache_hits": self.cost_cache_hits,
        }


@dataclass
class BenchmarkResult:
    """Everything ProvMark produces for one (tool, benchmark) pair."""

    benchmark: str
    tool: str
    classification: Classification
    target_graph: PropertyGraph
    foreground: Optional[PropertyGraph]
    background: Optional[PropertyGraph]
    timings: StageTimings
    trials: int
    discarded_trials: int = 0
    note: str = ""
    error: str = ""

    @property
    def is_empty(self) -> bool:
        return self.classification is Classification.EMPTY

    @property
    def is_ok(self) -> bool:
        return self.classification is Classification.OK

    def summary(self) -> str:
        if self.classification is Classification.OK:
            return (
                f"{self.benchmark}/{self.tool}: ok "
                f"({self.target_graph.node_count} nodes, "
                f"{self.target_graph.edge_count} edges)"
            )
        detail = f" ({self.note})" if self.note else ""
        return f"{self.benchmark}/{self.tool}: {self.classification}{detail}"
