"""The four ProvMark subsystems and the pipeline driver."""

from repro.core.compare import ComparisonError, ComparisonOutcome, compare
from repro.core.generalize import (
    GeneralizationError,
    GeneralizationOutcome,
    filter_incomplete,
    generalize_trials,
)
from repro.core.pipeline import TOOL_PROFILES, PipelineConfig, ProvMark
from repro.core.recording import RecordedTrial, Recorder, RecordingSession
from repro.core.result import BenchmarkResult, Classification, StageTimings
from repro.core.transform import TransformError, supported_formats, transform

__all__ = [
    "BenchmarkResult",
    "Classification",
    "ComparisonError",
    "ComparisonOutcome",
    "GeneralizationError",
    "GeneralizationOutcome",
    "PipelineConfig",
    "ProvMark",
    "RecordedTrial",
    "Recorder",
    "RecordingSession",
    "StageTimings",
    "TOOL_PROFILES",
    "TransformError",
    "compare",
    "filter_incomplete",
    "generalize_trials",
    "supported_formats",
    "transform",
]
