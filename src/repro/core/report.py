"""HTML and text report generation (the paper's ``finalResult/index.html``).

ProvMark's ``rh`` result type renders an HTML page showing, per benchmark,
the target graph plus the generalized foreground and background graphs.
We embed the graphs as DOT sources and structural summaries instead of
rendered images.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Iterable, List, Union

from repro.core.result import BenchmarkResult
from repro.graph.dot import graph_to_dot
from repro.graph.stats import summarize

_PAGE_TEMPLATE = """<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>ProvMark benchmark results</title>
<style>
body {{ font-family: sans-serif; margin: 2em; }}
table {{ border-collapse: collapse; }}
td, th {{ border: 1px solid #999; padding: 4px 10px; }}
.ok {{ background: #cfc; }}
.empty {{ background: #eee; }}
.failed {{ background: #fcc; }}
pre {{ background: #f7f7f7; padding: 8px; overflow-x: auto; }}
details {{ margin: 0.5em 0; }}
</style>
</head>
<body>
<h1>ProvMark benchmark results</h1>
{summary_table}
{sections}
</body>
</html>
"""


def _summary_table(results: List[BenchmarkResult]) -> str:
    rows = [
        "<table><tr><th>benchmark</th><th>tool</th><th>result</th>"
        "<th>nodes</th><th>edges</th><th>note</th></tr>"
    ]
    for result in results:
        cls = result.classification.value
        rows.append(
            f'<tr class="{cls}"><td>{html.escape(result.benchmark)}</td>'
            f"<td>{html.escape(result.tool)}</td><td>{cls}</td>"
            f"<td>{result.target_graph.node_count}</td>"
            f"<td>{result.target_graph.edge_count}</td>"
            f"<td>{html.escape(result.note or result.error)}</td></tr>"
        )
    rows.append("</table>")
    return "\n".join(rows)


def _graph_details(title: str, graph, open_by_default: bool = False) -> str:
    if graph is None:
        return f"<details><summary>{title}: (unavailable)</summary></details>"
    summary = summarize(graph)
    dot = html.escape(graph_to_dot(graph))
    open_attr = " open" if open_by_default else ""
    return (
        f"<details{open_attr}><summary>{title}: "
        f"{html.escape(summary.describe())}</summary>"
        f"<pre>{dot}</pre></details>"
    )


def _result_section(result: BenchmarkResult) -> str:
    parts = [f"<h2>{html.escape(result.benchmark)} / {html.escape(result.tool)}</h2>"]
    if result.error:
        parts.append(f"<p><b>error:</b> {html.escape(result.error)}</p>")
    parts.append(_graph_details("target graph", result.target_graph, True))
    parts.append(_graph_details("generalized foreground", result.foreground))
    parts.append(_graph_details("generalized background", result.background))
    timing = result.timings
    store_note = ""
    if timing.store_hits or timing.store_misses:
        store_note = (
            f"; artifact store: {timing.store_hits} stage hits, "
            f"{timing.store_misses} misses"
        )
    parts.append(
        "<p>timing: "
        f"transformation {timing.transformation:.3f}s, "
        f"generalization {timing.generalization:.3f}s, "
        f"comparison {timing.comparison:.3f}s "
        f"(virtual recording {timing.virtual_recording:.1f}s)"
        f"{store_note}</p>"
    )
    return "\n".join(parts)


def render_html(results: Iterable[BenchmarkResult]) -> str:
    """Render results as a standalone HTML page."""
    result_list = list(results)
    return _PAGE_TEMPLATE.format(
        summary_table=_summary_table(result_list),
        sections="\n".join(_result_section(r) for r in result_list),
    )


def write_html(
    results: Iterable[BenchmarkResult], path: Union[str, Path]
) -> Path:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_html(results))
    return target


def render_text(results: Iterable[BenchmarkResult]) -> str:
    """Plain-text summary, one line per result (the ``rb`` result type)."""
    return "\n".join(result.summary() for result in results) + "\n"
