"""Stage 1 — recording (paper §3.2).

Runs the benchmark program repeatedly under the selected capture system.
Each trial gets its own freshly booted machine with a distinct seed, so
pids/inodes/timestamps vary across trials exactly as they would across
real recording sessions.  Optional flakiness models the paper's
observations: SPADE output occasionally truncated by an early stop,
CamFlow occasionally structurally jittered by recording restarts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.capture.base import CaptureSystem, RawOutput
from repro.storage.artifacts import raw_from_payload, raw_to_payload
from repro.suite.executor import ProgramExecutor
from repro.suite.program import Program


@dataclass
class RecordedTrial:
    """Native capture output for one program variant execution."""

    raw: RawOutput
    seed: int
    foreground: bool
    virtual_seconds: float

    def to_payload(self) -> Dict[str, object]:
        return {
            "raw": raw_to_payload(self.raw),
            "seed": self.seed,
            "foreground": self.foreground,
            "virtual_seconds": self.virtual_seconds,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "RecordedTrial":
        return cls(
            raw=raw_from_payload(payload["raw"]),
            seed=int(payload["seed"]),
            foreground=bool(payload["foreground"]),
            virtual_seconds=float(payload["virtual_seconds"]),
        )


@dataclass
class RecordingSession:
    """All trials for one benchmark under one tool."""

    program: Program
    tool: str
    foreground_trials: List[RecordedTrial] = field(default_factory=list)
    background_trials: List[RecordedTrial] = field(default_factory=list)

    @property
    def virtual_seconds(self) -> float:
        return sum(
            t.virtual_seconds
            for t in self.foreground_trials + self.background_trials
        )

    def to_payload(self) -> Dict[str, object]:
        """Serialize every trial (the artifact store's recording stage)."""
        return {
            "tool": self.tool,
            "foreground": [t.to_payload() for t in self.foreground_trials],
            "background": [t.to_payload() for t in self.background_trials],
        }

    @classmethod
    def from_payload(
        cls, payload: Mapping[str, object], program: Program
    ) -> "RecordingSession":
        """Rebuild a session around the (non-serialized) program object."""
        return cls(
            program=program,
            tool=str(payload["tool"]),
            foreground_trials=[
                RecordedTrial.from_payload(t) for t in payload["foreground"]
            ],
            background_trials=[
                RecordedTrial.from_payload(t) for t in payload["background"]
            ],
        )


class Recorder:
    """Drives the capture tool over multiple trials.

    ``truncation_rate`` models SPADE's occasional garbled output when the
    recording session is stopped too early (§3.2); the affected trial's
    last audit record is lost before graph construction.
    """

    def __init__(
        self,
        capture: CaptureSystem,
        trials: int = 2,
        seed: Optional[int] = None,
        truncation_rate: float = 0.0,
    ) -> None:
        if trials < 2:
            raise ValueError("generalization needs at least 2 trials")
        self.capture = capture
        self.trials = trials
        self.truncation_rate = truncation_rate
        self._rng = random.Random(seed)

    def record(self, program: Program) -> RecordingSession:
        session = RecordingSession(program=program, tool=self.capture.name)
        for foreground in (False, True):
            bucket = (
                session.foreground_trials
                if foreground
                else session.background_trials
            )
            for _ in range(self.trials):
                bucket.append(self._one_trial(program, foreground))
        return session

    def _one_trial(self, program: Program, foreground: bool) -> RecordedTrial:
        trial_seed = self._rng.randrange(2**31)
        executor = ProgramExecutor(program, seed=trial_seed)
        execution = executor.run(foreground)
        trace = execution.trace
        if self.truncation_rate and self._rng.random() < self.truncation_rate:
            # An early stop loses the tail of the audit log (the final
            # flush): drop the last two records, garbling this trial.
            if len(trace.audit) > 2:
                trace = trace.window(0, trace.audit[-3].seq)
        tool_rng = random.Random(trial_seed ^ 0x5EED)
        raw = self.capture.record(trace, tool_rng)
        cost = self.capture.recording_cost(tool_rng)
        return RecordedTrial(
            raw=raw,
            seed=trial_seed,
            foreground=foreground,
            virtual_seconds=cost.seconds,
        )
