"""Error vocabulary shared by the service façade, the CLI, and HTTP.

Every user-facing failure of the typed API is an :class:`ApiError`
carrying both its HTTP status (for ``repro/api/http.py``) and its CLI
exit code (for ``provmark``), so the two entry surfaces render the same
condition the same way: the CLI prints ``provmark: <message>`` and exits
2, the HTTP service answers 400/404 with ``{"error": {...}}`` — one
message, produced in one place.
"""

from __future__ import annotations

from typing import Dict, Sequence


class ApiError(Exception):
    """Base class for typed-API failures (500 / exit 1 by default)."""

    http_status: int = 500
    exit_code: int = 1


class ValidationError(ApiError, ValueError):
    """A request (or payload being decoded) is malformed."""

    http_status = 400
    exit_code = 2


class NotFoundError(ApiError, LookupError):
    """A named tool, benchmark, profile, or job does not exist."""

    http_status = 404
    exit_code = 2


class UnauthorizedError(ApiError):
    """The request carries no (or an unknown) credential (HTTP 401).

    Rendered with a ``WWW-Authenticate: Bearer`` header: the middleware
    chain's auth layer accepts ``Authorization: Bearer <token>``.
    """

    http_status = 401
    exit_code = 4

    #: headers the HTTP layer attaches to the error response
    extra_headers = {"WWW-Authenticate": "Bearer"}


class ForbiddenError(ApiError):
    """An authenticated client's role does not cover this route (403)."""

    http_status = 403
    exit_code = 4


class ConflictError(ApiError):
    """A request contradicts earlier state it claims to repeat (409).

    The idempotency middleware raises this when an ``Idempotency-Key``
    is replayed with a *different* request body: the key promises an
    exact retry, so a mismatched digest is a client bug, not a replay.
    """

    http_status = 409
    exit_code = 2


class MethodNotAllowedError(ApiError):
    """The path exists but not under this HTTP method (405 + ``Allow``)."""

    http_status = 405
    exit_code = 2

    def __init__(self, message: str, allow: Sequence[str] = ()) -> None:
        super().__init__(message)
        #: the methods the path does answer (the ``Allow`` header)
        self.allow = tuple(sorted(set(allow)))

    @property
    def extra_headers(self) -> Dict[str, str]:
        return {"Allow": ", ".join(self.allow)} if self.allow else {}


class BackpressureError(ApiError):
    """The job queue is at capacity; retry after ``retry_after`` seconds.

    Rendered over HTTP as ``429`` with a ``Retry-After`` header — the
    bounded-queue backpressure contract of the execution plane.
    """

    http_status = 429
    exit_code = 3

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        #: suggested client wait, seconds (the ``Retry-After`` header,
        #: rounded up to a whole second on the wire)
        self.retry_after = max(0.0, float(retry_after))


class RateLimitError(BackpressureError):
    """A client exhausted its admission quota (429 + ``Retry-After``).

    Distinct from plain :class:`BackpressureError` so metrics and logs
    can tell per-client throttling (the middleware layer, in front of
    everything) from whole-queue saturation (the execution plane).
    """


class QuotaExceededError(BackpressureError):
    """A client is over its scheduler quota (429 + ``Retry-After``).

    Third face of the 429 family, raised by the admission controller:
    :class:`RateLimitError` throttles request *rate* at the middleware
    edge, :class:`BackpressureError` reports whole-queue saturation, and
    this one means *this client's* in-flight/queued job allowance is
    spent — others may still submit freely.  The distinct type name in
    the error envelope is the contract clients key retry logic on.
    """


class DeadlineError(ApiError):
    """A run overran its requested deadline (HTTP 504).

    Deadline misses are permanent: the budget was for the whole job, so
    the execution plane does not retry them.
    """

    http_status = 504
    exit_code = 3


def render_error(error: BaseException) -> str:
    """One-line, traceback-free rendering shared by CLI and HTTP."""
    message = str(error).strip() or type(error).__name__
    return " ".join(message.split())


def error_body(error: ApiError) -> Dict[str, object]:
    """The JSON error envelope the HTTP service sends."""
    return {
        "error": {
            "status": error.http_status,
            "type": type(error).__name__,
            "message": render_error(error),
        }
    }


def error_headers(error: ApiError) -> Dict[str, str]:
    """The extra response headers an error carries onto the wire.

    ``retry_after`` becomes a whole-second ``Retry-After`` (rounded up:
    the header is delta-seconds); error classes may also declare an
    ``extra_headers`` mapping (``Allow`` on 405, ``WWW-Authenticate``
    on 401).
    """
    headers: Dict[str, str] = {}
    retry_after = getattr(error, "retry_after", None)
    if retry_after is not None:
        headers["Retry-After"] = str(max(1, int(retry_after + 0.999)))
    headers.update(getattr(error, "extra_headers", None) or {})
    return headers
