"""Error vocabulary shared by the service façade, the CLI, and HTTP.

Every user-facing failure of the typed API is an :class:`ApiError`
carrying both its HTTP status (for ``repro/api/http.py``) and its CLI
exit code (for ``provmark``), so the two entry surfaces render the same
condition the same way: the CLI prints ``provmark: <message>`` and exits
2, the HTTP service answers 400/404 with ``{"error": {...}}`` — one
message, produced in one place.
"""

from __future__ import annotations

from typing import Dict


class ApiError(Exception):
    """Base class for typed-API failures (500 / exit 1 by default)."""

    http_status: int = 500
    exit_code: int = 1


class ValidationError(ApiError, ValueError):
    """A request (or payload being decoded) is malformed."""

    http_status = 400
    exit_code = 2


class NotFoundError(ApiError, LookupError):
    """A named tool, benchmark, profile, or job does not exist."""

    http_status = 404
    exit_code = 2


class BackpressureError(ApiError):
    """The job queue is at capacity; retry after ``retry_after`` seconds.

    Rendered over HTTP as ``429`` with a ``Retry-After`` header — the
    bounded-queue backpressure contract of the execution plane.
    """

    http_status = 429
    exit_code = 3

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        #: suggested client wait, seconds (the ``Retry-After`` header,
        #: rounded up to a whole second on the wire)
        self.retry_after = max(0.0, float(retry_after))


class DeadlineError(ApiError):
    """A run overran its requested deadline (HTTP 504).

    Deadline misses are permanent: the budget was for the whole job, so
    the execution plane does not retry them.
    """

    http_status = 504
    exit_code = 3


def render_error(error: BaseException) -> str:
    """One-line, traceback-free rendering shared by CLI and HTTP."""
    message = str(error).strip() or type(error).__name__
    return " ".join(message.split())


def error_body(error: ApiError) -> Dict[str, object]:
    """The JSON error envelope the HTTP service sends."""
    return {
        "error": {
            "status": error.http_status,
            "type": type(error).__name__,
            "message": render_error(error),
        }
    }
