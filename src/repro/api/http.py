"""Embedded HTTP JSON service over :class:`BenchmarkService`.

Pure stdlib (``http.server``) — no new dependencies.  Endpoints, all
JSON, all prefixed with the API version:

* ``GET /v1/health`` — liveness: ``{"status": "ok", "api_version",
  "jobs": {...}, "queue": {...}}`` with job counts by state plus queue
  depth, capacity, and the finished-record ``evicted`` counter (what CI
  polls instead of sleep-retrying);
* ``GET /v1/tools`` (optionally ``?name=<tool>``) — registered capture
  backends with their resolved profiles;
* ``GET /v1/benchmarks`` — the suite catalog (builtin and custom, with
  tags);
* ``POST /v1/benchmarks`` — body is a
  :class:`~repro.api.specs.BenchmarkSpec` payload; the spec is
  validated (strict decoding plus the semantic validator — the safety
  boundary for untrusted clients), compiled, and registered; answers
  ``201`` with the catalog row and the spec's content digest;
* ``GET /v1/benchmarks/<name>`` — the declarative spec of any
  registered benchmark (builtins are re-expressed as specs exactly);
* ``DELETE /v1/benchmarks/<name>`` — unregister a custom benchmark
  (builtin rows refuse with 400);
* ``POST /v1/runs`` — body is a :class:`~repro.api.types.RunRequest`
  payload naming a registered benchmark *or* carrying an inline
  ``"spec"``; by default the run is submitted as an async job (``202``
  with a :class:`~repro.api.types.JobStatus` envelope to poll), while
  ``"wait": true`` in the body blocks and answers ``200`` with the
  :class:`~repro.api.types.RunResponse` directly;
* ``POST /v1/synth`` — body is a :class:`~repro.api.types.SynthConfig`
  payload; coverage-guided benchmark synthesis runs as an async job
  (``202``; ``"wait": true`` blocks and answers ``200`` with the
  :class:`~repro.api.types.SynthReport`), registering surviving specs
  into the suite registry under the ``synth`` tag;
* ``GET /v1/jobs/<id>`` — job status, including the result envelope
  (or synthesis report) once the job is done;
* ``DELETE /v1/jobs/<id>`` — request cancellation.

Errors share the CLI's rendering helper: a
:class:`~repro.api.errors.NotFoundError` is a 404 and a
:class:`~repro.api.errors.ValidationError` a 400, each with
``{"error": {"status", "type", "message"}}`` carrying the exact one-line
message ``provmark`` prints before exiting 2.

Start it with ``provmark serve --port N`` (``--port 0`` picks a free
port and prints it), or embed it::

    from repro.api.http import make_server
    server = make_server(port=0)
    print(server.server_address)
    server.serve_forever()
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.api.errors import (
    ApiError,
    NotFoundError,
    ValidationError,
    error_body,
    render_error,
)
from repro.api.service import BenchmarkService
from repro.api.specs import BenchmarkSpec, spec_digest
from repro.api.types import (
    API_VERSION,
    JOB_STATES,
    RunRequest,
    SynthConfig,
    ToolQuery,
)

#: default TCP port of ``provmark serve``
DEFAULT_PORT = 8321

#: request bodies past this size are rejected (a RunRequest is tiny)
MAX_BODY_BYTES = 1 << 20


class ApiHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server owning one :class:`BenchmarkService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: BenchmarkService):
        super().__init__(address, ApiRequestHandler)
        self.service = service


class ApiRequestHandler(BaseHTTPRequestHandler):
    server_version = f"provmark-api/{API_VERSION}"

    @property
    def service(self) -> BenchmarkService:
        return self.server.service

    # -- routing ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        self._dispatch(self._route_get)

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch(self._route_post)

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch(self._route_delete)

    def _dispatch(self, route) -> None:
        try:
            route()
        except ApiError as exc:
            headers = None
            retry_after = getattr(exc, "retry_after", None)
            if retry_after is not None:
                # whole seconds, rounded up: the header is delta-seconds
                headers = {"Retry-After": str(max(1, int(retry_after + 0.999)))}
            self._send_json(exc.http_status, error_body(exc), headers)
        except BrokenPipeError:
            pass  # client went away mid-response
        except Exception as exc:  # noqa: BLE001 — never kill the server
            fallback = ApiError(
                f"internal error: {type(exc).__name__}: {render_error(exc)}"
            )
            self._send_json(fallback.http_status, error_body(fallback))

    def _route_get(self) -> None:
        split = urlsplit(self.path)
        path, query = split.path.rstrip("/"), dict(parse_qsl(split.query))
        if path == "/v1/health":
            self._send_json(200, self._health_body())
        elif path == "/v1/tools":
            tool_query = ToolQuery(name=query.get("name"))
            self._send_json(200, {
                "api_version": API_VERSION,
                "tools": [t.to_payload() for t in self.service.tools(tool_query)],
            })
        elif path == "/v1/benchmarks":
            self._send_json(200, {
                "api_version": API_VERSION,
                "benchmarks": [
                    b.to_payload() for b in self.service.benchmarks()
                ],
            })
        elif path.startswith("/v1/benchmarks/"):
            name = path[len("/v1/benchmarks/"):]
            spec = self.service.benchmark_spec(name)
            info = self.service.benchmark_info(name)
            self._send_json(200, {
                "api_version": API_VERSION,
                "name": name,
                "builtin": info.builtin,
                "tags": list(info.tags),
                "digest": spec_digest(spec),
                "spec": spec.to_payload(),
            })
        elif path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            self._send_json(200, self.service.poll(job_id).to_payload())
        else:
            raise NotFoundError(f"no route for GET {split.path}")

    def _health_body(self) -> Dict[str, object]:
        states = {state: 0 for state in JOB_STATES}
        jobs = self.service.jobs.jobs()
        for job in jobs:
            states[job.state] += 1
        return {
            "status": "ok",
            "api_version": API_VERSION,
            "jobs": {"total": len(jobs), **states},
            # queue depth, capacity, and the evicted counter that
            # explains why an old job id 404s (finished records are
            # retained only up to a cap)
            "queue": self.service.jobs.queue_stats(),
        }

    def _route_post(self) -> None:
        path = urlsplit(self.path).path.rstrip("/")
        if path == "/v1/benchmarks":
            self._register_benchmark()
        elif path == "/v1/runs":
            self._submit_run()
        elif path == "/v1/synth":
            self._submit_synth()
        else:
            raise NotFoundError(f"no route for POST {path}")

    def _register_benchmark(self) -> None:
        spec = BenchmarkSpec.from_payload(self._read_json_body())
        info = self.service.register_benchmark(spec)
        self._send_json(201, {
            "api_version": API_VERSION,
            "benchmark": info.to_payload(),
            "digest": spec_digest(spec),
        })

    def _submit_run(self) -> None:
        body = self._read_json_body()
        wait = body.pop("wait", False)
        if not isinstance(wait, bool):
            raise ValidationError("'wait' must be a boolean")
        request = RunRequest.from_payload(body)
        # Filesystem locations are operator-controlled: a remote client
        # must not steer server-side writes (store_path) or reads
        # (config_path).
        for field in ("store_path", "config_path"):
            if getattr(request, field) is not None:
                raise ValidationError(
                    f"{field!r} is not accepted over HTTP; server-side "
                    "paths are configured by the operator"
                )
        if wait:
            self._send_json(200, self.service.run(request).to_payload())
        else:
            self._send_json(202, self.service.submit(request).to_payload())

    def _submit_synth(self) -> None:
        body = self._read_json_body()
        wait = body.pop("wait", False)
        if not isinstance(wait, bool):
            raise ValidationError("'wait' must be a boolean")
        config = SynthConfig.from_payload(body)
        # same rule as /v1/runs: server-side filesystem locations are
        # operator-controlled, not client-steered
        if config.store_path is not None:
            raise ValidationError(
                "'store_path' is not accepted over HTTP; server-side "
                "paths are configured by the operator"
            )
        if wait:
            report = self.service.synthesize(config)
            self._send_json(200, {
                "api_version": API_VERSION,
                "report": report.to_payload(),
            })
        else:
            self._send_json(202, self.service.submit(config).to_payload())

    def _route_delete(self) -> None:
        path = urlsplit(self.path).path.rstrip("/")
        if path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            self._send_json(200, self.service.cancel(job_id).to_payload())
        elif path.startswith("/v1/benchmarks/"):
            name = path[len("/v1/benchmarks/"):]
            self._send_json(200, {
                "api_version": API_VERSION,
                "removed": self.service.unregister_benchmark(name),
            })
        else:
            raise NotFoundError(f"no route for DELETE {path}")

    # -- plumbing -----------------------------------------------------------

    def _read_json_body(self) -> Dict[str, object]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise ValidationError("invalid Content-Length header") from None
        if length <= 0:
            raise ValidationError("request body must be a JSON object")
        if length > MAX_BODY_BYTES:
            raise ValidationError(
                f"request body too large ({length} > {MAX_BODY_BYTES} bytes)"
            )
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise ValidationError("request body is not valid JSON") from None
        if not isinstance(body, dict):
            raise ValidationError("request body must be a JSON object")
        return body

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        blob = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(blob)

    def log_message(self, format: str, *args: object) -> None:
        # Quiet by default; the serve command prints its own one-liner.
        pass


def make_server(
    service: Optional[BenchmarkService] = None,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
) -> ApiHTTPServer:
    """Bind the API server (``port=0`` picks a free port).

    The caller owns the lifecycle: ``serve_forever()`` to run,
    ``server_close()`` (plus ``service.close()``) to stop.
    """
    return ApiHTTPServer((host, port), service or BenchmarkService())
