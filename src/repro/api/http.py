"""Embedded HTTP JSON service over :class:`BenchmarkService`.

Pure stdlib (``http.server``) — no new dependencies.  Every request is
dispatched through a :class:`~repro.middleware.chain.MiddlewareChain`
(auth, rate limiting, idempotent response caching, metrics, access
logs — assembled by ``provmark serve --middleware config.json``, empty
by default) before it reaches a route handler.  Endpoints, all JSON,
all prefixed with the API version:

* ``GET /v1/health`` — liveness: ``{"status": "ok", "api_version",
  "jobs": {...}, "queue": {...}}`` with job counts by state plus queue
  depth, capacity, and the finished-record ``evicted`` counter (what CI
  polls instead of sleep-retrying); never requires auth;
* ``GET /v1/metrics`` — the middleware layer's
  :class:`~repro.middleware.metrics.MetricsRegistry`: request latency
  histograms and status counts, ``pipeline_*`` solver/store counters,
  idempotent-replay counts, and live gauges (job-queue depth,
  response-cache hit ratio);
* ``GET /v1/tools`` (optionally ``?name=<tool>``) — registered capture
  backends with their resolved profiles;
* ``GET /v1/benchmarks`` — the suite catalog (builtin and custom, with
  tags);
* ``POST /v1/benchmarks`` — body is a
  :class:`~repro.api.specs.BenchmarkSpec` payload; the spec is
  validated (strict decoding plus the semantic validator — the safety
  boundary for untrusted clients), compiled, and registered; answers
  ``201`` with the catalog row and the spec's content digest;
* ``GET /v1/benchmarks/<name>`` — the declarative spec of any
  registered benchmark (builtins are re-expressed as specs exactly);
* ``DELETE /v1/benchmarks/<name>`` — unregister a custom benchmark
  (builtin rows refuse with 400);
* ``POST /v1/runs`` — body is a :class:`~repro.api.types.RunRequest`
  payload naming a registered benchmark *or* carrying an inline
  ``"spec"``; by default the run is submitted as an async job (``202``
  with a :class:`~repro.api.types.JobStatus` envelope to poll), while
  ``"wait": true`` in the body blocks and answers ``200`` with the
  :class:`~repro.api.types.RunResponse` directly;
* ``POST /v1/synth`` — body is a :class:`~repro.api.types.SynthConfig`
  payload; coverage-guided benchmark synthesis runs as an async job
  (``202``; ``"wait": true`` blocks and answers ``200`` with the
  :class:`~repro.api.types.SynthReport`), registering surviving specs
  into the suite registry under the ``synth`` tag;
* ``GET /v1/jobs/<id>`` — job status, including the result envelope
  (or synthesis report) once the job is done;
* ``GET /v1/jobs/<id>/events`` — a ``text/event-stream`` (SSE) of the
  job's :class:`~repro.core.stages.ProgressEvent`-driven snapshots:
  ``snapshot``, ``progress`` and ``heartbeat`` events, ending with a
  terminal event named by the final state (``done``/``failed``/
  ``cancelled``); ``?poll=``, ``?heartbeat=`` and ``?max_seconds=``
  tune the cadence;
* ``DELETE /v1/jobs/<id>`` — request cancellation.

Request headers the middleware layer speaks: ``Authorization: Bearer
<token>`` (auth), ``Idempotency-Key`` (exact-retry response caching),
``Request-Timeout`` (seconds; bounds an SSE stream), ``Last-Event-ID``
(SSE resume — replays completions missed while disconnected).  Response headers:
``Retry-After`` on 429, ``Allow`` on 405, ``WWW-Authenticate`` on 401,
``X-Request-Id`` (the correlation id job records and access logs
carry), ``X-Idempotent-Replay`` on responses served from the response
cache.

A path that exists under other methods answers ``405`` with an
``Allow`` header; unknown paths answer ``404`` — both with the same
``{"error": {"status", "type", "message"}}`` envelope as every other
failure, carrying the exact one-line message ``provmark`` prints before
exiting 2.

Start it with ``provmark serve --port N [--middleware config.json]``
(``--port 0`` picks a free port and prints it), or embed it::

    from repro.api.http import make_server
    server = make_server(port=0)
    print(server.server_address)
    server.serve_forever()
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.api.errors import (
    ApiError,
    MethodNotAllowedError,
    NotFoundError,
    ValidationError,
    error_body,
    error_headers,
    render_error,
)
from repro.api.service import BenchmarkService
from repro.api.specs import BenchmarkSpec, spec_digest
from repro.api.types import (
    API_VERSION,
    JOB_STATES,
    ClusterNodeInfo,
    ClusterStatus,
    RunRequest,
    SynthConfig,
    ToolQuery,
)
from repro.middleware.chain import MiddlewareChain
from repro.middleware.context import RequestContext, Response, body_digest
from repro.middleware.metrics import register_service_gauges
from repro.middleware.sse import (
    DEFAULT_HEARTBEAT,
    DEFAULT_POLL_INTERVAL,
    SSE_MAX_STREAM_SECONDS,
    job_event_stream,
)

#: default TCP port of ``provmark serve``
DEFAULT_PORT = 8321

#: request bodies past this size are rejected (a RunRequest is tiny)
MAX_BODY_BYTES = 1 << 20


def _resolve_route(path: str) -> Optional[Tuple[Dict[str, str], Optional[str]]]:
    """``(method -> handler name, path argument)`` for a request path.

    Central for a reason: the 405 contract needs to know every method a
    path answers (the ``Allow`` header), which per-method route
    functions cannot see.  Returns ``None`` for unknown paths.
    """
    clean = path.rstrip("/") or "/"
    if clean == "/v1/health":
        return {"GET": "_get_health"}, None
    if clean == "/v1/metrics":
        return {"GET": "_get_metrics"}, None
    if clean == "/v1/cluster":
        return {"GET": "_get_cluster"}, None
    if clean == "/v1/tools":
        return {"GET": "_get_tools"}, None
    if clean == "/v1/benchmarks":
        return {"GET": "_get_benchmarks", "POST": "_post_benchmark"}, None
    if clean == "/v1/runs":
        return {"POST": "_post_run"}, None
    if clean == "/v1/synth":
        return {"POST": "_post_synth"}, None
    if clean.startswith("/v1/jobs/"):
        tail = clean[len("/v1/jobs/"):]
        if tail.endswith("/events"):
            job_id = tail[: -len("/events")]
            if job_id and "/" not in job_id:
                return {"GET": "_get_job_events"}, job_id
        elif tail and "/" not in tail:
            return {"GET": "_get_job", "DELETE": "_delete_job"}, tail
    if clean.startswith("/v1/benchmarks/"):
        name = clean[len("/v1/benchmarks/"):]
        if name and "/" not in name:
            return {"GET": "_get_benchmark", "DELETE": "_delete_benchmark"}, name
    return None


class ApiHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server owning one service and one middleware chain."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: BenchmarkService,
        chain: Optional[MiddlewareChain] = None,
    ):
        super().__init__(address, ApiRequestHandler)
        self.service = service
        #: the interception chain every request dispatches through; the
        #: default empty chain still carries the shared MetricsRegistry,
        #: so /v1/metrics works with no middleware configured
        self.chain = chain if chain is not None else MiddlewareChain()
        register_service_gauges(self.chain.metrics, service)


class ApiRequestHandler(BaseHTTPRequestHandler):
    server_version = f"provmark-api/{API_VERSION}"

    @property
    def service(self) -> BenchmarkService:
        return self.server.service

    @property
    def chain(self) -> MiddlewareChain:
        return self.server.chain

    # -- dispatch -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    # surfaced so the 405 contract covers methods no route uses at all
    def do_PUT(self) -> None:  # noqa: N802
        self._dispatch("PUT")

    def do_PATCH(self) -> None:  # noqa: N802
        self._dispatch("PATCH")

    def _dispatch(self, method: str) -> None:
        ctx: Optional[RequestContext] = None
        try:
            ctx = self._build_context(method)
            response = self.chain.dispatch(ctx, self._route)
            self._respond(ctx, response)
        except ApiError as exc:
            headers = error_headers(exc)
            if ctx is not None:
                headers.setdefault("X-Request-Id", ctx.request_id)
            self._send_json(exc.http_status, error_body(exc), headers)
        except BrokenPipeError:
            pass  # client went away mid-response
        except Exception as exc:  # noqa: BLE001 — never kill the server
            fallback = ApiError(
                f"internal error: {type(exc).__name__}: {render_error(exc)}"
            )
            self._send_json(fallback.http_status, error_body(fallback))

    def _build_context(self, method: str) -> RequestContext:
        """The frozen middleware-facing view of this request.

        The body is read (and digested) exactly once, here; handlers
        get it parsed via ``ctx.body``.  A transport-level violation
        (bad ``Content-Length``, oversized body) is a 400 regardless of
        path; a merely *unparsable* body is deferred so unknown paths
        still answer 404/405 (``_require_body`` re-raises it).
        """
        split = urlsplit(self.path)
        raw = b""
        parse_error: Optional[str] = None
        if method in ("POST", "PUT", "PATCH"):
            raw = self._read_body_bytes()
        body: Optional[Dict[str, object]] = None
        if raw:
            try:
                decoded = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                parse_error = "request body is not valid JSON"
            else:
                if isinstance(decoded, dict):
                    body = decoded
                else:
                    parse_error = "request body must be a JSON object"
        deadline: Optional[float] = None
        timeout_header = self.headers.get("Request-Timeout")
        if timeout_header is not None:
            try:
                seconds = float(timeout_header)
            except ValueError:
                raise ValidationError(
                    "invalid Request-Timeout header (expected seconds)"
                ) from None
            if seconds > 0:
                deadline = time.monotonic() + seconds
        ctx = RequestContext(
            method=method,
            path=split.path,
            query=split.query,
            headers=RequestContext.normalize_headers(self.headers.items()),
            body=body,
            body_digest=body_digest(raw),
            remote_addr=self.client_address[0],
            deadline=deadline,
        )
        if parse_error is not None:
            ctx.state["body_error"] = parse_error
        return ctx

    def _read_body_bytes(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise ValidationError("invalid Content-Length header") from None
        if length <= 0:
            return b""
        if length > MAX_BODY_BYTES:
            raise ValidationError(
                f"request body too large ({length} > {MAX_BODY_BYTES} bytes)"
            )
        return self.rfile.read(length)

    def _route(self, ctx: RequestContext) -> Response:
        """The terminal handler the middleware chain wraps."""
        resolved = _resolve_route(ctx.path)
        if resolved is None:
            raise NotFoundError(f"no route for {ctx.method} {ctx.path}")
        methods, arg = resolved
        handler_name = methods.get(ctx.method)
        if handler_name is None:
            raise MethodNotAllowedError(
                f"{ctx.method} is not allowed on {ctx.path}",
                allow=methods.keys(),
            )
        return getattr(self, handler_name)(ctx, arg)

    # -- GET routes ---------------------------------------------------------

    def _get_health(self, ctx: RequestContext, arg: Optional[str]) -> Response:
        states = {state: 0 for state in JOB_STATES}
        jobs = self.service.jobs.jobs()
        for job in jobs:
            states[job.state] += 1
        return Response(payload={
            "status": "ok",
            "api_version": API_VERSION,
            "jobs": {"total": len(jobs), **states},
            # queue depth, capacity, and the evicted counter that
            # explains why an old job id 404s (finished records are
            # retained only up to a cap)
            "queue": self.service.jobs.queue_stats(),
            # per-priority-class pending/running counts and queue-wait
            # quantiles, plus the monotonic aging-promotion count
            "sched": self.service.jobs.sched_stats(),
            # always-shaped fleet block: {"enabled": False, ...} on a
            # single-host plane, node/worker counts when clustered
            "cluster": self._cluster_summary(),
        })

    def _cluster_summary(self) -> Dict[str, object]:
        summary = getattr(self.service.jobs, "cluster_summary", None)
        if callable(summary):
            return summary()
        return {"enabled": False, "nodes": 0, "remote_workers": 0}

    def _get_cluster(self, ctx: RequestContext, arg: Optional[str]) -> Response:
        stats_fn = getattr(self.service.jobs, "cluster_stats", None)
        stats = stats_fn() if callable(stats_fn) else None
        if stats is None:
            # single-host plane: same schema, everything zero
            payload = ClusterStatus(enabled=False).to_payload()
            payload["recent_events"] = []
            return Response(payload=payload)
        queue_stats = self.service.jobs.queue_stats()
        counters = stats.get("counters") or {}
        status = ClusterStatus(
            enabled=True,
            coordinator=str(stats.get("address") or ""),
            draining=bool(stats.get("draining")),
            nodes=tuple(
                ClusterNodeInfo(
                    node_id=str(n.get("node_id") or ""),
                    host=str(n.get("host") or ""),
                    workers=int(n.get("workers") or 0),
                    claims=int(n.get("claims") or 0),
                    last_seen_age=float(n.get("last_seen_age") or 0.0),
                )
                for n in stats.get("nodes") or ()
            ),
            remote_workers=int(stats.get("remote_workers") or 0),
            local_workers=int(queue_stats.get("workers") or 0),
            claims_total=int(counters.get("claims_total") or 0),
            completions_total=int(counters.get("completions_total") or 0),
            events_seq=int(stats.get("events_seq") or 0),
        )
        payload = status.to_payload()
        # the raw event tail rides alongside the typed snapshot (events
        # are already strict codecs; dashboards render them verbatim)
        payload["recent_events"] = list(stats.get("recent_events") or ())
        return Response(payload=payload)

    def _get_metrics(self, ctx: RequestContext, arg: Optional[str]) -> Response:
        payload = self.chain.metrics.render()
        payload["api_version"] = API_VERSION
        return Response(payload=payload)

    def _get_tools(self, ctx: RequestContext, arg: Optional[str]) -> Response:
        query = dict(parse_qsl(ctx.query))
        tool_query = ToolQuery(name=query.get("name"))
        return Response(payload={
            "api_version": API_VERSION,
            "tools": [t.to_payload() for t in self.service.tools(tool_query)],
        })

    def _get_benchmarks(
        self, ctx: RequestContext, arg: Optional[str]
    ) -> Response:
        return Response(payload={
            "api_version": API_VERSION,
            "benchmarks": [b.to_payload() for b in self.service.benchmarks()],
        })

    def _get_benchmark(self, ctx: RequestContext, name: str) -> Response:
        spec = self.service.benchmark_spec(name)
        info = self.service.benchmark_info(name)
        return Response(payload={
            "api_version": API_VERSION,
            "name": name,
            "builtin": info.builtin,
            "tags": list(info.tags),
            "digest": spec_digest(spec),
            "spec": spec.to_payload(),
        })

    def _get_job(self, ctx: RequestContext, job_id: str) -> Response:
        return Response(payload=self.service.poll(job_id).to_payload())

    def _get_job_events(self, ctx: RequestContext, job_id: str) -> Response:
        params = dict(parse_qsl(ctx.query))
        poll = self._float_param(params, "poll", DEFAULT_POLL_INTERVAL)
        heartbeat = self._float_param(params, "heartbeat", DEFAULT_HEARTBEAT)
        max_seconds = self._float_param(
            params, "max_seconds", SSE_MAX_STREAM_SECONDS
        )
        if ctx.deadline is not None:
            max_seconds = min(max_seconds, ctx.deadline - time.monotonic())
        # Resume: a reconnecting SSE client echoes the last `id:` it saw
        # (the completed count); malformed values mean a fresh stream.
        last_event_id = None
        raw_last = ctx.header("last-event-id")
        if raw_last is not None:
            try:
                last_event_id = int(raw_last.strip())
            except ValueError:
                last_event_id = None
        stream = job_event_stream(
            self.service,
            job_id,
            poll_interval=poll,
            heartbeat=heartbeat,
            max_duration=max_seconds,
            last_event_id=last_event_id,
        )
        return Response(
            stream=stream,
            content_type="text/event-stream",
            headers={"Cache-Control": "no-cache"},
        )

    @staticmethod
    def _float_param(
        params: Dict[str, str], name: str, default: float
    ) -> float:
        value = params.get(name)
        if value is None:
            return default
        try:
            parsed = float(value)
        except ValueError:
            raise ValidationError(
                f"query parameter {name!r} must be a number, got {value!r}"
            ) from None
        if parsed <= 0:
            raise ValidationError(
                f"query parameter {name!r} must be positive, got {value!r}"
            )
        return parsed

    # -- POST routes --------------------------------------------------------

    def _post_benchmark(
        self, ctx: RequestContext, arg: Optional[str]
    ) -> Response:
        spec = BenchmarkSpec.from_payload(self._require_body(ctx))
        info = self.service.register_benchmark(spec)
        return Response(status=201, payload={
            "api_version": API_VERSION,
            "benchmark": info.to_payload(),
            "digest": spec_digest(spec),
        })

    def _post_run(self, ctx: RequestContext, arg: Optional[str]) -> Response:
        body = self._require_body(ctx)
        wait = body.pop("wait", False)
        if not isinstance(wait, bool):
            raise ValidationError("'wait' must be a boolean")
        request = RunRequest.from_payload(body)
        # Filesystem locations are operator-controlled: a remote client
        # must not steer server-side writes (store_path) or reads
        # (config_path).
        for field in ("store_path", "config_path"):
            if getattr(request, field) is not None:
                raise ValidationError(
                    f"{field!r} is not accepted over HTTP; server-side "
                    "paths are configured by the operator"
                )
        if wait:
            return Response(payload=self.service.run(request).to_payload())
        status = self.service.submit(
            request, client_id=ctx.client_id, request_id=ctx.request_id,
            role=ctx.role,
        )
        return Response(status=202, payload=status.to_payload())

    def _post_synth(self, ctx: RequestContext, arg: Optional[str]) -> Response:
        body = self._require_body(ctx)
        wait = body.pop("wait", False)
        if not isinstance(wait, bool):
            raise ValidationError("'wait' must be a boolean")
        config = SynthConfig.from_payload(body)
        # same rule as /v1/runs: server-side filesystem locations are
        # operator-controlled, not client-steered
        if config.store_path is not None:
            raise ValidationError(
                "'store_path' is not accepted over HTTP; server-side "
                "paths are configured by the operator"
            )
        if wait:
            report = self.service.synthesize(config)
            return Response(payload={
                "api_version": API_VERSION,
                "report": report.to_payload(),
            })
        status = self.service.submit(
            config, client_id=ctx.client_id, request_id=ctx.request_id,
            role=ctx.role,
        )
        return Response(status=202, payload=status.to_payload())

    # -- DELETE routes ------------------------------------------------------

    def _delete_job(self, ctx: RequestContext, job_id: str) -> Response:
        return Response(payload=self.service.cancel(job_id).to_payload())

    def _delete_benchmark(self, ctx: RequestContext, name: str) -> Response:
        return Response(payload={
            "api_version": API_VERSION,
            "removed": self.service.unregister_benchmark(name),
        })

    # -- plumbing -----------------------------------------------------------

    def _require_body(self, ctx: RequestContext) -> Dict[str, object]:
        """The request's JSON object body, as a mutable copy."""
        error = ctx.state.get("body_error")
        if error is not None:
            raise ValidationError(str(error))
        if ctx.body is None:
            raise ValidationError("request body must be a JSON object")
        return dict(ctx.body)

    def _respond(self, ctx: RequestContext, response: Response) -> None:
        headers = dict(response.headers)
        headers.setdefault("X-Request-Id", ctx.request_id)
        if response.streaming:
            self._send_stream(response, headers)
        else:
            self._send_json(response.status, response.payload or {}, headers)

    def _send_stream(self, response: Response, headers: Dict[str, str]) -> None:
        """Write a close-delimited streaming body, one flushed chunk per
        event (the server speaks HTTP/1.0, so no Content-Length needed)."""
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        for chunk in response.stream:
            self.wfile.write(chunk)
            self.wfile.flush()

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        # sort_keys: responses replayed from the idempotency cache (a
        # store round-trip, which sorts nested keys) must be
        # byte-identical to the original response
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(blob)

    def log_message(self, format: str, *args: object) -> None:
        # Quiet by default; the access-log middleware is the structured
        # replacement, and the serve command prints its own one-liner.
        pass


def make_server(
    service: Optional[BenchmarkService] = None,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    chain: Optional[MiddlewareChain] = None,
) -> ApiHTTPServer:
    """Bind the API server (``port=0`` picks a free port).

    ``chain`` is the middleware composition every request dispatches
    through (see :func:`repro.middleware.build_chain`); omitted, an
    empty chain still provides the ``/v1/metrics`` registry and its
    service gauges.  The caller owns the lifecycle: ``serve_forever()``
    to run, ``server_close()`` (plus ``service.close()``) to stop.
    """
    return ApiHTTPServer((host, port), service or BenchmarkService(), chain)
