"""The :class:`BenchmarkService` façade — the supported entry surface.

One object fronts the whole stack: the staged pipeline kernel
(`repro.core.stages`), the capture-backend plugin registry
(`repro.capture.registry`), the benchmark suite registry
(`repro.suite.registry`), and the persistent artifact store
(`repro.storage.artifacts`).  Callers declare work as frozen request
objects (:class:`~repro.api.types.RunRequest`,
:class:`~repro.api.types.BatchRequest`) instead of constructing pipeline
internals; results come back as :class:`~repro.api.types.RunResponse`
envelopes that are byte-identical — same graphs, same timing semantics,
same solver/store counters — to what the legacy ``ProvMark`` driver
produced for the same configuration (the driver survives as a deprecated
shim over the same machinery).

Synchronous calls (:meth:`BenchmarkService.run`,
:meth:`BenchmarkService.run_batch`) block; :meth:`submit` /
:meth:`poll` / :meth:`cancel` hand the same requests to the
:class:`~repro.api.jobs.JobManager`, whose jobs report per-stage
progress through the pipeline's :class:`~repro.core.stages.ProgressEvent`
hook.  All lookup failures surface as
:class:`~repro.api.errors.NotFoundError` /
:class:`~repro.api.errors.ValidationError`, which the CLI and the HTTP
service render identically.
"""

from __future__ import annotations

import contextlib
import threading
import warnings
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.api.errors import DeadlineError, NotFoundError, ValidationError
from repro.api.jobs import JobManager
from repro.api.specs import (
    BenchmarkSpec,
    compile_spec,
    iter_persisted_specs,
    persist_spec,
    spec_digest,
)
from repro.api.types import (
    API_VERSION,
    BatchRequest,
    BenchmarkInfo,
    JobStatus,
    RunRequest,
    RunResponse,
    SynthConfig,
    SynthCoverage,
    SynthReport,
    ToolInfo,
    ToolQuery,
)
from repro.capture.registry import (
    UnknownToolError,
    get_backend,
    iter_backends,
)
from repro.config import ProfileError, get_profile
from repro.core.pipeline import PipelineConfig, ProvMark
from repro.core.stages import DeadlineExceeded, ProgressCallback
from repro.storage.artifacts import ArtifactError, ArtifactStore
from repro.suite.executor import ExecutionError
from repro.suite.program import Program
from repro.suite.registry import (
    SUITE_REGISTRY,
    SuiteRegistry,
    SuiteRegistryError,
    TABLE2_ORDER,
)

Request = Union[RunRequest, BatchRequest, SynthConfig]


class BenchmarkService:
    """Typed façade over pipeline, registries, store, and job manager."""

    api_version = API_VERSION

    #: total idle drivers retained across all configurations
    _DRIVER_POOL_SIZE = 32

    #: spec-store handles retained (oldest evicted beyond this)
    _SPEC_STORE_CACHE_SIZE = 8

    def __init__(
        self,
        jobs: Optional[JobManager] = None,
        registry: Optional[SuiteRegistry] = None,
    ) -> None:
        # Created eagerly (the manager itself spins its thread pool up
        # lazily): a lazily-created manager would race under the
        # threaded HTTP server, orphaning jobs in a lost instance.
        self._jobs = jobs if jobs is not None else JobManager()
        self._owns_jobs = jobs is None
        #: the open suite registry this service reads and extends
        #: (shared default unless a private one is injected)
        self._registry = registry if registry is not None else SUITE_REGISTRY
        # Spec-store loading state: store handles are reused (opening a
        # store sweeps its temp files; the cache is bounded like the
        # driver pool) and the digests of *successfully registered*
        # specs are remembered, so re-resolving against the same store
        # costs a directory listing, not a re-decode of every persisted
        # spec.  Failed registrations are not remembered — they retry
        # on the next load — and unregistering a benchmark forgets its
        # digest so the persisted spec is loadable again.
        self._spec_lock = threading.Lock()
        self._spec_stores: Dict[str, ArtifactStore] = {}
        self._loaded_spec_digests: set = set()
        self._spec_digest_by_name: Dict[str, str] = {}
        # Idle drivers (capture system, pipeline, artifact-store handle)
        # pooled by resolved configuration.  A driver is leased to
        # exactly one call at a time — captures and stores are not safe
        # to share between concurrently running jobs — but the pool is
        # shared across threads, so short-lived HTTP handler threads
        # still reuse drivers instead of rebuilding them per request.
        self._pool_lock = threading.Lock()
        self._driver_pool: Dict[tuple, List[ProvMark]] = {}
        self._pooled_count = 0

    # -- catalog ------------------------------------------------------------

    def tools(self, query: Optional[ToolQuery] = None) -> Tuple[ToolInfo, ...]:
        """Registered capture backends (optionally filtered to one name)."""
        query = query or ToolQuery()
        if query.name is not None:
            try:
                backends = [get_backend(query.name)]
            except UnknownToolError as exc:
                raise NotFoundError(str(exc)) from None
        else:
            backends = list(iter_backends())
        return tuple(
            ToolInfo(
                name=backend.name,
                trials=backend.profile.trials,
                filtergraphs=backend.profile.filtergraphs,
                output_format=backend.cls.output_format,
                description=backend.profile.description,
            )
            for backend in backends
        )

    def benchmarks(self) -> Tuple[BenchmarkInfo, ...]:
        """Every registered suite benchmark, sorted by name.

        Built from one registry snapshot, so a concurrent register/
        unregister (another HTTP handler thread) cannot make the
        listing half-updated or raise mid-iteration.
        """
        entries = self._registry.snapshot()
        return tuple(
            self._info_from_entry(name, entry)
            for name, entry in sorted(entries.items())
        )

    def benchmark_info(self, name: str) -> BenchmarkInfo:
        """The catalog row of one registered benchmark (404 if absent)."""
        return self._benchmark_info(name)

    def benchmark_spec(self, name: str) -> BenchmarkSpec:
        """The declarative spec of any registered benchmark.

        Custom entries return the spec they were registered from;
        builtin rows are re-expressed through
        :func:`~repro.api.specs.spec_from_program` — the round-trip is
        exact, so a spec fetched here and re-submitted runs identically.
        """
        try:
            return self._registry.spec(name)
        except KeyError:
            raise NotFoundError(self._unknown_benchmark(name)) from None

    def register_benchmark(self, spec: BenchmarkSpec) -> BenchmarkInfo:
        """Validate, compile, and register a spec-defined benchmark.

        The spec's semantic validation (syscall arity, ``$var``
        dataflow, setup-path confinement, uid/gid ranges) is the safety
        boundary for untrusted clients; builtin names cannot be shadowed
        and the custom-entry count is capped.
        """
        if not isinstance(spec, BenchmarkSpec):
            raise ValidationError(
                "register_benchmark() takes a BenchmarkSpec, got "
                f"{type(spec).__name__}"
            )
        program = compile_spec(spec)
        try:
            self._registry.register(program, tags=spec.tags, spec=spec)
        except SuiteRegistryError as exc:
            raise ValidationError(str(exc)) from None
        return self._benchmark_info(program.name)

    def unregister_benchmark(self, name: str) -> str:
        """Remove a custom benchmark (builtins refuse, unknowns 404)."""
        try:
            self._registry.unregister(name)
        except SuiteRegistryError as exc:
            raise ValidationError(str(exc)) from None
        except KeyError:
            raise NotFoundError(self._unknown_benchmark(name)) from None
        self._forget_spec(name)
        return name

    def load_spec_store(self, store_path: str) -> int:
        """Register every benchmark spec persisted in an artifact store.

        The ``provmark bench add --store`` companion: a run/batch
        request naming a stored benchmark resolves through this, so
        ``--store`` sweeps and ``--resume`` cover user benchmarks.
        Stored specs that no longer validate, collide with builtin
        names, or overflow the registry cap are skipped — and reported
        in one bounded ``RuntimeWarning`` naming what was dropped and
        why, so a sweep never loses user benchmarks silently.  Returns
        the number registered.
        """
        with self._spec_lock:
            store = self._spec_stores.get(store_path)
            if store is None:
                try:
                    store = ArtifactStore(store_path)
                except ArtifactError as exc:
                    raise ValidationError(str(exc)) from None
                while len(self._spec_stores) >= self._SPEC_STORE_CACHE_SIZE:
                    self._spec_stores.pop(next(iter(self._spec_stores)))
                self._spec_stores[store_path] = store
            count = 0
            skipped: List[str] = []
            for path, spec in iter_persisted_specs(
                store, skip_digests=self._loaded_spec_digests
            ):
                try:
                    program = compile_spec(spec)
                    self._registry.register(
                        program, tags=spec.tags, spec=spec
                    )
                except (ValidationError, SuiteRegistryError) as exc:
                    # not remembered: an unusable spec retries on the
                    # next load (the registry may have room by then)
                    skipped.append(f"{spec.name}: {exc}")
                    continue
                self._remember_spec(spec.name, path.stem)
                count += 1
        if skipped:
            # a sweep must not silently lose user benchmarks: surface
            # what was dropped and why (bounded, one warning per load)
            detail = "; ".join(skipped[:5])
            if len(skipped) > 5:
                detail += f"; ... and {len(skipped) - 5} more"
            warnings.warn(
                f"skipped {len(skipped)} persisted benchmark spec(s) in "
                f"{store_path}: {detail}",
                RuntimeWarning,
                stacklevel=2,
            )
        return count

    def _remember_spec(self, name: str, digest: str) -> None:
        """Record a registered spec digest (called under _spec_lock)."""
        stale = self._spec_digest_by_name.get(name)
        if stale is not None:
            self._loaded_spec_digests.discard(stale)
        self._spec_digest_by_name[name] = digest
        self._loaded_spec_digests.add(digest)

    def _forget_spec(self, name: str) -> None:
        """Make a name's persisted spec loadable again after removal."""
        with self._spec_lock:
            digest = self._spec_digest_by_name.pop(name, None)
            if digest is not None:
                self._loaded_spec_digests.discard(digest)

    def resolve_batch_names(self, request: BatchRequest) -> List[str]:
        """The concrete benchmark list a batch request selects.

        ``benchmarks`` names runs explicitly (checked against the
        registry up front so a batch fails fast instead of mid-sweep);
        ``tags`` selects every registered benchmark carrying all the
        given tags; with neither, the full Table 2 order.  A configured
        ``store_path`` contributes its persisted specs first.
        """
        return [p.name for p in self._batch_programs(request)]

    # -- synchronous runs ---------------------------------------------------

    def run(
        self,
        request: RunRequest,
        progress: Optional[ProgressCallback] = None,
    ) -> RunResponse:
        """Run one benchmark to completion and envelope the result."""
        if not isinstance(request, RunRequest):
            raise ValidationError(
                f"run() takes a RunRequest, got {type(request).__name__}"
            )
        program = self._run_program(request)
        with self._leased_driver(request, progress) as driver:
            return RunResponse(result=self._execute(driver, program))

    def run_batch(
        self,
        request: BatchRequest,
        progress: Optional[ProgressCallback] = None,
        on_response: Optional[object] = None,
    ) -> Tuple[RunResponse, ...]:
        """Run a batch, optionally across ``run_many`` worker processes.

        With a ``progress``/``on_response`` observer the batch runs
        serially in-process so stage boundaries are observable (and
        cancellable); unobserved batches keep the process-pool fan-out
        and its identical-to-serial result order.
        """
        if not isinstance(request, BatchRequest):
            raise ValidationError(
                f"run_batch() takes a BatchRequest, got "
                f"{type(request).__name__}"
            )
        programs = self._batch_programs(request)
        observed = progress is not None or on_response is not None
        workers = request.max_workers
        with self._leased_driver(request, progress) as driver:
            if not observed and workers is not None and workers > 1:
                try:
                    results = driver.run_many(programs, max_workers=workers)
                except ExecutionError as exc:
                    raise ValidationError(self._execution_message(exc)) from exc
                except DeadlineExceeded as exc:
                    raise DeadlineError(str(exc)) from exc
                return tuple(RunResponse(result=r) for r in results)
            responses = []
            for program in programs:
                response = RunResponse(result=self._execute(driver, program))
                responses.append(response)
                if on_response is not None:
                    on_response(response)
            return tuple(responses)

    # -- synthesis ----------------------------------------------------------

    def synthesize(
        self,
        config: SynthConfig,
        progress: Optional[ProgressCallback] = None,
    ) -> SynthReport:
        """Run one coverage-guided synthesis pass and adopt survivors.

        The engine (:func:`repro.synth.run_synthesis`) generates and
        mutates candidate specs, evaluates every one through the staged
        pipeline under each requested tool, deduplicates by
        generalized-graph fingerprint, and keeps only candidates that
        add coverage.  Survivors are then registered into this
        service's suite registry (tagged ``synth``; ``register=False``
        skips this) and persisted into the configured artifact store's
        ``spec`` stage so later ``--store``/``--resume`` sweeps resolve
        them by name.  Deterministic: the same config yields the same
        report, digests included.
        """
        if not isinstance(config, SynthConfig):
            raise ValidationError(
                f"synthesize() takes a SynthConfig, got "
                f"{type(config).__name__}"
            )
        for tool in config.tools:
            try:
                get_backend(tool)
            except UnknownToolError as exc:
                raise NotFoundError(str(exc)) from None
        # the synth tag is the discovery contract (`provmark list
        # --tags synth`), so it is always present, whatever tags the
        # caller adds
        tags = config.tags if "synth" in config.tags else (
            ("synth",) + config.tags
        )
        # Late import: repro.synth builds on the api package (specs,
        # errors), so importing it at module load would be circular.
        from repro.synth.engine import run_synthesis

        run = run_synthesis(
            seed=config.seed,
            count=config.count,
            tools=config.tools,
            max_ops=config.max_ops,
            mutation_rate=config.mutation_rate,
            name_prefix=config.name_prefix,
            tags=tags,
            trials=config.trials,
            engine=config.engine,
            store_path=config.store_path,
            max_workers=config.max_workers,
            registry=self._registry,
            progress=progress,
        )
        persisted = 0
        if config.register:
            # all-or-nothing adoption: a mid-loop failure (e.g. the
            # registry's custom-entry cap) must not leave half the
            # survivors registered with no report of what was adopted
            adopted: List[str] = []
            try:
                for spec in run.survivors:
                    self._registry.register(
                        compile_spec(spec), tags=spec.tags, spec=spec
                    )
                    adopted.append(spec.name)
            except SuiteRegistryError as exc:
                for name in adopted:
                    try:
                        self._registry.unregister(name)
                    except (KeyError, SuiteRegistryError):
                        pass
                raise ValidationError(str(exc)) from None
        if config.store_path is not None:
            store = ArtifactStore(config.store_path)
            for spec in run.survivors:
                persist_spec(store, spec)
                persisted += 1
        return SynthReport(
            seed=config.seed,
            requested=config.count,
            generated=run.generated,
            mutated=run.mutated,
            kept=tuple(spec.name for spec in run.survivors),
            digests=tuple(spec_digest(spec) for spec in run.survivors),
            duplicates=run.duplicates,
            no_gain=run.no_gain,
            failed=run.failed,
            tools=config.tools,
            coverage=SynthCoverage(
                syscalls_before=run.baseline.syscalls,
                syscalls_after=run.final.syscalls,
                arg_shapes_before=run.baseline.arg_shapes,
                arg_shapes_after=run.final.arg_shapes,
                motifs_before=run.baseline.motifs,
                motifs_after=run.final.motifs,
                new_syscalls=tuple(run.new_syscalls),
            ),
            specs=tuple(run.survivors),
            registered=config.register,
            persisted=persisted,
        )

    # -- async jobs ---------------------------------------------------------

    @property
    def jobs(self) -> JobManager:
        return self._jobs

    def submit(
        self,
        request: Request,
        client_id: str = "",
        request_id: str = "",
        role: str = "",
    ) -> JobStatus:
        """Queue a run/batch job; returns its initial status snapshot.

        Name lookups (benchmark, tool, profile) are validated *now*
        against the current registry, so a misspelled request is a
        synchronous NotFoundError rather than a queued job doomed from
        the start.  The job re-resolves when it executes (the registry
        is open and deliberately fresh): concurrent unregistration can
        therefore still fail a queued job, cleanly, with the same
        not-found message in its ``error`` field.

        ``client_id``/``request_id`` (both optional) are stamped onto
        the job record for correlation with the HTTP middleware layer's
        access logs and metrics.  ``role`` is the auth-resolved role
        the scheduler's admission controller validates explicit
        priorities and resolves quotas against ("" = a trusted direct
        caller — CLI, tests, embeddings).
        """
        if isinstance(request, RunRequest):
            # resolves the name (or compiles the inline spec) now, so a
            # malformed benchmark is a synchronous error too
            self._run_program(request)
            self._check_names(request)
            kind, total = "run", 1
        elif isinstance(request, BatchRequest):
            names = self.resolve_batch_names(request)
            self._check_names(request)
            kind, total = "batch", len(names)
        elif isinstance(request, SynthConfig):
            for tool in request.tools:
                try:
                    get_backend(tool)
                except UnknownToolError as exc:
                    raise NotFoundError(str(exc)) from None
            kind, total = "synth", request.count
        else:
            raise ValidationError(
                "submit() takes a RunRequest, BatchRequest, or "
                f"SynthConfig, got {type(request).__name__}"
            )
        return self.jobs.submit(
            self, request, kind, total,
            client_id=client_id, request_id=request_id, role=role,
        )

    def poll(self, job_id: str) -> JobStatus:
        """Current status of a submitted job (with results when done)."""
        return self.jobs.poll(job_id)

    def cancel(self, job_id: str) -> JobStatus:
        """Cancel a queued job now, or a running one at the next stage
        boundary."""
        return self.jobs.cancel(job_id)

    def close(self, cancel: bool = False) -> None:
        """Stop the job manager (if this service created one).

        The manager is kept (not discarded), so completed jobs remain
        pollable after close; only new ``submit()`` calls are refused.
        ``cancel=True`` cancels in-flight jobs instead of waiting for
        them (the ``provmark serve`` shutdown path).
        """
        if self._jobs is not None and self._owns_jobs:
            self._jobs.shutdown(wait=True, cancel=cancel)

    def __enter__(self) -> "BenchmarkService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals ----------------------------------------------------------

    @contextlib.contextmanager
    def _leased_driver(
        self, request: Request, progress: Optional[ProgressCallback]
    ) -> Iterator[ProvMark]:
        """Lease a resolved driver for one call, pooled by configuration.

        Rebuilding the capture system and re-opening the artifact store
        per call would dominate warm runs; pooling keeps façade dispatch
        within the <5% overhead budget
        (``benchmarks/bench_api_overhead.py``) — including for the HTTP
        server, whose per-connection handler threads all draw from this
        one pool.  A leased driver is exclusive to its call, so pooled
        captures/stores are never driven by two runs at once.
        """
        key = (
            request.tool, request.profile, request.config_path,
            request.trials, request.filtergraphs, request.engine,
            request.seed, request.truncation_rate, request.fg_pair_policy,
            request.bg_pair_policy, request.store_path, request.resume,
            request.cache, getattr(request, "deadline", None),
        )
        with self._pool_lock:
            idle = self._driver_pool.get(key)
            driver = idle.pop() if idle else None
            if driver is not None:
                self._pooled_count -= 1
        if driver is None:
            driver = self._driver(request)
        # the observer is per call, not part of the pooled configuration
        driver.progress = progress
        try:
            yield driver
        finally:
            driver.progress = None
            with self._pool_lock:
                if self._pooled_count < self._DRIVER_POOL_SIZE:
                    self._driver_pool.setdefault(key, []).append(driver)
                    self._pooled_count += 1

    @staticmethod
    def _check_names(request: Request) -> None:
        """Fail fast on unknown tool/profile names (NotFoundError)."""
        if request.profile:
            try:
                get_profile(request.profile, config_path=request.config_path)
            except ProfileError as exc:
                raise NotFoundError(str(exc)) from None
            return
        try:
            get_backend(request.tool)
        except UnknownToolError as exc:
            raise NotFoundError(str(exc)) from None

    def check_benchmark(self, name: str) -> None:
        """Public helper: NotFoundError for names absent from the
        registry, with the same message every internal surface renders.
        (Internal paths resolve through ``_resolve_program`` /
        ``_benchmark_info``, which also consult store-persisted specs.)
        """
        if name not in self._registry:
            raise NotFoundError(self._unknown_benchmark(name))

    def _unknown_benchmark(self, name: str) -> str:
        return (
            f"unknown benchmark {name!r}; available: "
            f"{sorted(self._registry.names())}"
        )

    def _benchmark_info(self, name: str) -> BenchmarkInfo:
        try:
            entry = self._registry.entry(name)
        except KeyError:
            raise NotFoundError(self._unknown_benchmark(name)) from None
        return self._info_from_entry(name, entry)

    @staticmethod
    def _info_from_entry(name: str, entry) -> BenchmarkInfo:
        """The one place a registry entry becomes a catalog row."""
        return BenchmarkInfo(
            name=name,
            group=entry.program.group,
            group_name=entry.program.group_name,
            description=entry.program.description,
            tags=entry.tags,
            builtin=entry.builtin,
        )

    @staticmethod
    def _execute(driver: ProvMark, program: Program):
        """One pipeline run, with benchmark misbehaviour as a 400.

        The spec validator is static: a spec can pass it and still
        violate its own declarations at run time (an op marked
        ``expect_success`` that fails, an open of a path no setup
        action staged).  That is a defect in the *benchmark*, not the
        service, so it renders as ValidationError — one CLI line /
        HTTP 400 — rather than escaping as a 500.
        """
        try:
            return driver.run_benchmark(program)
        except ExecutionError as exc:
            raise ValidationError(
                BenchmarkService._execution_message(exc)
            ) from exc
        except DeadlineExceeded as exc:
            raise DeadlineError(str(exc)) from exc

    @staticmethod
    def _execution_message(exc: ExecutionError) -> str:
        return f"benchmark program failed its own declaration: {exc}"

    def _run_program(self, request: RunRequest) -> Program:
        """The program a run request denotes (inline spec or lookup)."""
        if request.spec is not None:
            return compile_spec(request.spec)
        return self._resolve_program(request.benchmark, request.store_path)

    def _resolve_program(
        self, name: str, store_path: Optional[str]
    ) -> Program:
        """Registry lookup, falling back to store-persisted specs.

        A miss with a configured store loads the store's ``spec`` stage
        into the registry and retries, so ``provmark bench add --store``
        benchmarks are runnable by name from any later process.
        """
        try:
            return self._registry.get(name)
        except KeyError:
            pass
        if store_path:
            self.load_spec_store(store_path)
            try:
                return self._registry.get(name)
            except KeyError:
                pass
        raise NotFoundError(self._unknown_benchmark(name))

    def _batch_programs(self, request: BatchRequest) -> List[Program]:
        if not isinstance(request, BatchRequest):
            raise ValidationError(
                f"expected a BatchRequest, got {type(request).__name__}"
            )
        if request.tags is not None:
            if request.store_path:
                self.load_spec_store(request.store_path)
            names = self._registry.select(request.tags)
            if not names:
                raise NotFoundError(
                    f"no benchmarks match tags {sorted(request.tags)}"
                )
        else:
            names = (
                list(request.benchmarks)
                if request.benchmarks is not None else list(TABLE2_ORDER)
            )
        return [
            self._resolve_program(name, request.store_path) for name in names
        ]

    @staticmethod
    def _driver(request: Request) -> ProvMark:
        """Resolve a request into the (shimmed) pipeline driver.

        Mirrors the legacy CLI resolution exactly — profile selection
        first, explicit ``trials``/``filtergraphs`` overriding the
        profile — so façade results stay byte-identical to the old
        ``ProvMark`` paths.
        """
        if request.profile:
            try:
                profile = get_profile(
                    request.profile, config_path=request.config_path
                )
                provmark = profile.make_provmark(
                    seed=request.seed, engine=request.engine
                )
            except ProfileError as exc:
                raise NotFoundError(str(exc)) from None
            if request.trials is not None:
                provmark.config.trials = request.trials
            if request.filtergraphs is not None:
                provmark.config.filtergraphs = request.filtergraphs
            provmark.config.truncation_rate = request.truncation_rate
            provmark.config.fg_pair_policy = request.fg_pair_policy
            provmark.config.bg_pair_policy = request.bg_pair_policy
            provmark.config.store_path = request.store_path
            provmark.config.resume = request.resume
            provmark.config.cache = request.cache
            provmark.config.deadline = getattr(request, "deadline", None)
            return provmark
        try:
            get_backend(request.tool)
        except UnknownToolError as exc:
            raise NotFoundError(str(exc)) from None
        config = PipelineConfig(
            tool=request.tool,
            trials=request.trials,
            filtergraphs=request.filtergraphs,
            engine=request.engine,
            seed=request.seed,
            truncation_rate=request.truncation_rate,
            fg_pair_policy=request.fg_pair_policy,
            bg_pair_policy=request.bg_pair_policy,
            store_path=request.store_path,
            resume=request.resume,
            cache=request.cache,
            deadline=getattr(request, "deadline", None),
        )
        return ProvMark._internal(config=config)
