"""The :class:`BenchmarkService` façade — the supported entry surface.

One object fronts the whole stack: the staged pipeline kernel
(`repro.core.stages`), the capture-backend plugin registry
(`repro.capture.registry`), the benchmark suite registry
(`repro.suite.registry`), and the persistent artifact store
(`repro.storage.artifacts`).  Callers declare work as frozen request
objects (:class:`~repro.api.types.RunRequest`,
:class:`~repro.api.types.BatchRequest`) instead of constructing pipeline
internals; results come back as :class:`~repro.api.types.RunResponse`
envelopes that are byte-identical — same graphs, same timing semantics,
same solver/store counters — to what the legacy ``ProvMark`` driver
produced for the same configuration (the driver survives as a deprecated
shim over the same machinery).

Synchronous calls (:meth:`BenchmarkService.run`,
:meth:`BenchmarkService.run_batch`) block; :meth:`submit` /
:meth:`poll` / :meth:`cancel` hand the same requests to the
:class:`~repro.api.jobs.JobManager`, whose jobs report per-stage
progress through the pipeline's :class:`~repro.core.stages.ProgressEvent`
hook.  All lookup failures surface as
:class:`~repro.api.errors.NotFoundError` /
:class:`~repro.api.errors.ValidationError`, which the CLI and the HTTP
service render identically.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.api.errors import NotFoundError, ValidationError
from repro.api.jobs import JobManager
from repro.api.types import (
    API_VERSION,
    BatchRequest,
    BenchmarkInfo,
    JobStatus,
    RunRequest,
    RunResponse,
    ToolInfo,
    ToolQuery,
)
from repro.capture.registry import (
    UnknownToolError,
    get_backend,
    iter_backends,
)
from repro.config import ProfileError, get_profile
from repro.core.pipeline import PipelineConfig, ProvMark
from repro.core.stages import ProgressCallback
from repro.suite.registry import ALL_BENCHMARKS, TABLE2_ORDER

Request = Union[RunRequest, BatchRequest]


class BenchmarkService:
    """Typed façade over pipeline, registries, store, and job manager."""

    api_version = API_VERSION

    #: total idle drivers retained across all configurations
    _DRIVER_POOL_SIZE = 32

    def __init__(self, jobs: Optional[JobManager] = None) -> None:
        # Created eagerly (the manager itself spins its thread pool up
        # lazily): a lazily-created manager would race under the
        # threaded HTTP server, orphaning jobs in a lost instance.
        self._jobs = jobs if jobs is not None else JobManager()
        self._owns_jobs = jobs is None
        # Idle drivers (capture system, pipeline, artifact-store handle)
        # pooled by resolved configuration.  A driver is leased to
        # exactly one call at a time — captures and stores are not safe
        # to share between concurrently running jobs — but the pool is
        # shared across threads, so short-lived HTTP handler threads
        # still reuse drivers instead of rebuilding them per request.
        self._pool_lock = threading.Lock()
        self._driver_pool: Dict[tuple, List[ProvMark]] = {}
        self._pooled_count = 0

    # -- catalog ------------------------------------------------------------

    def tools(self, query: Optional[ToolQuery] = None) -> Tuple[ToolInfo, ...]:
        """Registered capture backends (optionally filtered to one name)."""
        query = query or ToolQuery()
        if query.name is not None:
            try:
                backends = [get_backend(query.name)]
            except UnknownToolError as exc:
                raise NotFoundError(str(exc)) from None
        else:
            backends = list(iter_backends())
        return tuple(
            ToolInfo(
                name=backend.name,
                trials=backend.profile.trials,
                filtergraphs=backend.profile.filtergraphs,
                output_format=backend.cls.output_format,
                description=backend.profile.description,
            )
            for backend in backends
        )

    def benchmarks(self) -> Tuple[BenchmarkInfo, ...]:
        """Every registered suite benchmark, sorted by name."""
        return tuple(
            BenchmarkInfo(
                name=name,
                group=program.group,
                group_name=program.group_name,
                description=program.description,
            )
            for name, program in sorted(ALL_BENCHMARKS.items())
        )

    def resolve_batch_names(self, request: BatchRequest) -> List[str]:
        """The concrete benchmark list a batch request names.

        ``benchmarks=None`` expands to the full Table 2 order; every
        name is checked against the suite registry up front so a batch
        fails fast instead of mid-sweep.
        """
        names = (
            list(request.benchmarks)
            if request.benchmarks is not None else list(TABLE2_ORDER)
        )
        for name in names:
            self.check_benchmark(name)
        return names

    # -- synchronous runs ---------------------------------------------------

    def run(
        self,
        request: RunRequest,
        progress: Optional[ProgressCallback] = None,
    ) -> RunResponse:
        """Run one benchmark to completion and envelope the result."""
        if not isinstance(request, RunRequest):
            raise ValidationError(
                f"run() takes a RunRequest, got {type(request).__name__}"
            )
        self.check_benchmark(request.benchmark)
        with self._leased_driver(request, progress) as driver:
            return RunResponse(result=driver.run_benchmark(request.benchmark))

    def run_batch(
        self,
        request: BatchRequest,
        progress: Optional[ProgressCallback] = None,
        on_response: Optional[object] = None,
    ) -> Tuple[RunResponse, ...]:
        """Run a batch, optionally across ``run_many`` worker processes.

        With a ``progress``/``on_response`` observer the batch runs
        serially in-process so stage boundaries are observable (and
        cancellable); unobserved batches keep the process-pool fan-out
        and its identical-to-serial result order.
        """
        if not isinstance(request, BatchRequest):
            raise ValidationError(
                f"run_batch() takes a BatchRequest, got "
                f"{type(request).__name__}"
            )
        names = self.resolve_batch_names(request)
        observed = progress is not None or on_response is not None
        workers = request.max_workers
        with self._leased_driver(request, progress) as driver:
            if not observed and workers is not None and workers > 1:
                results = driver.run_many(names, max_workers=workers)
                return tuple(RunResponse(result=r) for r in results)
            responses = []
            for name in names:
                response = RunResponse(result=driver.run_benchmark(name))
                responses.append(response)
                if on_response is not None:
                    on_response(response)
            return tuple(responses)

    # -- async jobs ---------------------------------------------------------

    @property
    def jobs(self) -> JobManager:
        return self._jobs

    def submit(self, request: Request) -> JobStatus:
        """Queue a run/batch job; returns its initial status snapshot.

        Name lookups (benchmark, tool, profile) are validated *now*, so
        a misspelled request is a synchronous NotFoundError — never a
        job that sits in the queue only to fail.
        """
        if isinstance(request, RunRequest):
            self.check_benchmark(request.benchmark)
            self._check_names(request)
            kind, total = "run", 1
        elif isinstance(request, BatchRequest):
            names = self.resolve_batch_names(request)
            self._check_names(request)
            kind, total = "batch", len(names)
        else:
            raise ValidationError(
                "submit() takes a RunRequest or BatchRequest, got "
                f"{type(request).__name__}"
            )
        return self.jobs.submit(self, request, kind, total)

    def poll(self, job_id: str) -> JobStatus:
        """Current status of a submitted job (with results when done)."""
        return self.jobs.poll(job_id)

    def cancel(self, job_id: str) -> JobStatus:
        """Cancel a queued job now, or a running one at the next stage
        boundary."""
        return self.jobs.cancel(job_id)

    def close(self, cancel: bool = False) -> None:
        """Stop the job manager (if this service created one).

        The manager is kept (not discarded), so completed jobs remain
        pollable after close; only new ``submit()`` calls are refused.
        ``cancel=True`` cancels in-flight jobs instead of waiting for
        them (the ``provmark serve`` shutdown path).
        """
        if self._jobs is not None and self._owns_jobs:
            self._jobs.shutdown(wait=True, cancel=cancel)

    def __enter__(self) -> "BenchmarkService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals ----------------------------------------------------------

    @contextlib.contextmanager
    def _leased_driver(
        self, request: Request, progress: Optional[ProgressCallback]
    ) -> Iterator[ProvMark]:
        """Lease a resolved driver for one call, pooled by configuration.

        Rebuilding the capture system and re-opening the artifact store
        per call would dominate warm runs; pooling keeps façade dispatch
        within the <5% overhead budget
        (``benchmarks/bench_api_overhead.py``) — including for the HTTP
        server, whose per-connection handler threads all draw from this
        one pool.  A leased driver is exclusive to its call, so pooled
        captures/stores are never driven by two runs at once.
        """
        key = (
            request.tool, request.profile, request.config_path,
            request.trials, request.filtergraphs, request.engine,
            request.seed, request.truncation_rate, request.fg_pair_policy,
            request.bg_pair_policy, request.store_path, request.resume,
            request.cache,
        )
        with self._pool_lock:
            idle = self._driver_pool.get(key)
            driver = idle.pop() if idle else None
            if driver is not None:
                self._pooled_count -= 1
        if driver is None:
            driver = self._driver(request)
        # the observer is per call, not part of the pooled configuration
        driver.progress = progress
        try:
            yield driver
        finally:
            driver.progress = None
            with self._pool_lock:
                if self._pooled_count < self._DRIVER_POOL_SIZE:
                    self._driver_pool.setdefault(key, []).append(driver)
                    self._pooled_count += 1

    @staticmethod
    def _check_names(request: Request) -> None:
        """Fail fast on unknown tool/profile names (NotFoundError)."""
        if request.profile:
            try:
                get_profile(request.profile, config_path=request.config_path)
            except ProfileError as exc:
                raise NotFoundError(str(exc)) from None
            return
        try:
            get_backend(request.tool)
        except UnknownToolError as exc:
            raise NotFoundError(str(exc)) from None

    @staticmethod
    def check_benchmark(name: str) -> None:
        """Raise NotFoundError for names absent from the suite registry.

        The single source of the unknown-benchmark message for every
        surface (façade, CLI — including ``provmark show`` — and HTTP).
        """
        if name not in ALL_BENCHMARKS:
            raise NotFoundError(
                f"unknown benchmark {name!r}; available: "
                f"{sorted(ALL_BENCHMARKS)}"
            )

    @staticmethod
    def _driver(request: Request) -> ProvMark:
        """Resolve a request into the (shimmed) pipeline driver.

        Mirrors the legacy CLI resolution exactly — profile selection
        first, explicit ``trials``/``filtergraphs`` overriding the
        profile — so façade results stay byte-identical to the old
        ``ProvMark`` paths.
        """
        if request.profile:
            try:
                profile = get_profile(
                    request.profile, config_path=request.config_path
                )
                provmark = profile.make_provmark(
                    seed=request.seed, engine=request.engine
                )
            except ProfileError as exc:
                raise NotFoundError(str(exc)) from None
            if request.trials is not None:
                provmark.config.trials = request.trials
            if request.filtergraphs is not None:
                provmark.config.filtergraphs = request.filtergraphs
            provmark.config.truncation_rate = request.truncation_rate
            provmark.config.fg_pair_policy = request.fg_pair_policy
            provmark.config.bg_pair_policy = request.bg_pair_policy
            provmark.config.store_path = request.store_path
            provmark.config.resume = request.resume
            provmark.config.cache = request.cache
            return provmark
        try:
            get_backend(request.tool)
        except UnknownToolError as exc:
            raise NotFoundError(str(exc)) from None
        config = PipelineConfig(
            tool=request.tool,
            trials=request.trials,
            filtergraphs=request.filtergraphs,
            engine=request.engine,
            seed=request.seed,
            truncation_rate=request.truncation_rate,
            fg_pair_policy=request.fg_pair_policy,
            bg_pair_policy=request.bg_pair_policy,
            store_path=request.store_path,
            resume=request.resume,
            cache=request.cache,
        )
        return ProvMark._internal(config=config)
