"""Declarative benchmark specifications — benchmarks as data (v1).

The paper's suite is 44 fixed syscall benchmarks, but its stated goal is
extensibility: users bring *their own* target behaviours to probe a
capture tool's expressiveness.  This module is the contract that lets
them do it safely: a benchmark enters the system as a validated JSON
document, not Python code, travels over the same typed v1 API that runs
it, and compiles into exactly the :class:`~repro.suite.program.Program`
a hand-written registry row would have produced.

Vocabulary (all frozen dataclasses):

* :class:`OpSpec` — one syscall invocation (call, args, result binding,
  target flag, expected success);
* :class:`SetupSpec` — one staging-directory preparation action;
* :class:`ProgramSpec` — the op sequence plus setup and credentials;
* :class:`ExpectationSpec` — one per-tool Table 2 expectation row;
* :class:`BenchmarkSpec` — the complete named unit with tags.

Validation is layered, and every failure is a
:class:`~repro.api.errors.ValidationError` carrying the **full nested
field path** (``BenchmarkSpec.program.ops[3].args[0]``, never a bare
``args``), rendered identically by the CLI and the HTTP envelope:

1. **structural** (``from_payload``) — strict types, unknown-key
   rejection, base64-tagged bytes; malformed documents never
   half-decode;
2. **semantic** (:meth:`BenchmarkSpec.validate`) — op names and arg
   arity against the simulated kernel's syscall table
   (:func:`syscall_table`), ``$var`` dataflow resolution for *both*
   program variants (the background variant drops target ops, so a
   non-target op must not consume a target op's result), setup-path
   confinement to the staging directory, uid/gid ranges, and size caps
   suitable for untrusted clients;
3. **compilation** (:func:`compile_spec`) — a validated spec becomes a
   :class:`~repro.suite.program.Program` that is equal (same dataclass
   value, same ``repr``, hence the same artifact-store keys and
   byte-identical pipeline results) to its hand-written counterpart.
   :func:`spec_from_program` inverts it: every builtin registry row
   round-trips ``Program -> BenchmarkSpec -> Program`` exactly.

Custom specs persist in the artifact store under the :data:`SPEC_STAGE`
stage, keyed by content digest (:func:`spec_digest`), so ``--store``
sweeps and ``--resume`` cover user benchmarks; run artifacts already
fingerprint the compiled program, so cached results stay correct.
"""

from __future__ import annotations

import base64
import binascii
import inspect
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Container, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.api.errors import ValidationError
from repro.kernel import Kernel
from repro.storage.artifacts import ArtifactStore, canonical_key
from repro.suite.program import Arg, Op, Program, SetupAction

#: artifact-store stage under which benchmark specs persist
SPEC_STAGE = "spec"

#: staging actions :class:`SetupSpec` may declare
SETUP_KINDS = ("file", "dir", "fifo", "symlink")

#: Table 2 classifications an expectation may declare
EXPECTED_CLASSIFICATIONS = ("ok", "empty")

#: uid/gid values must stay below this (one 16-bit id namespace)
MAX_ID = 65535

#: size caps protecting the registry and the executor from hostile specs
MAX_OPS = 1024
MAX_SETUP = 128
MAX_TAGS = 32
MAX_NAME_LENGTH = 100

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")
_TAG_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")
_RESULT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _fail(path: str, message: str) -> None:
    raise ValidationError(f"{path}: {message}")


# -- structural decoding helpers --------------------------------------------


def _decode_mapping(
    payload: object, path: str, keys: Tuple[str, ...]
) -> Dict[str, object]:
    """A strict JSON object: mapping type, no unknown keys."""
    if not isinstance(payload, Mapping):
        _fail(path, f"must be a JSON object, got {type(payload).__name__}")
    unknown = sorted(set(payload) - set(keys))
    if unknown:
        _fail(path, f"unknown keys: {unknown}")
    return dict(payload)


def _decode_str(
    value: object, path: str,
    optional: bool = False, non_empty: bool = False,
) -> Optional[str]:
    if value is None and optional:
        return None
    if not isinstance(value, str):
        _fail(path, f"must be a string, got {type(value).__name__}")
    if non_empty and not value:
        _fail(path, "must be non-empty")
    return value


def _decode_bool(value: object, path: str) -> bool:
    if not isinstance(value, bool):
        _fail(path, f"must be a bool, got {type(value).__name__}")
    return value


def _decode_int(value: object, path: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        _fail(path, f"must be an integer, got {type(value).__name__}")
    return value


def _decode_array(value: object, path: str) -> List[object]:
    if not isinstance(value, (list, tuple)):
        _fail(path, f"must be an array, got {type(value).__name__}")
    return list(value)


def _decode_bytes(value: object, path: str) -> bytes:
    """Bytes travel through JSON as ``{"base64": "..."}`` objects."""
    if isinstance(value, bytes):
        return value
    if isinstance(value, Mapping):
        data = _decode_mapping(value, path, ("base64",))
        encoded = _decode_str(data.get("base64"), f"{path}.base64")
        try:
            return base64.b64decode(encoded, validate=True)
        except (binascii.Error, ValueError):
            _fail(f"{path}.base64", "is not valid base64")
    _fail(
        path,
        'must be bytes or a {"base64": "..."} object, '
        f"got {type(value).__name__}",
    )
    raise AssertionError("unreachable")


def _encode_bytes(value: bytes) -> Dict[str, str]:
    return {"base64": base64.b64encode(value).decode("ascii")}


def _decode_arg(value: object, path: str) -> Arg:
    """One op argument: a string, an integer, or tagged base64 bytes."""
    if isinstance(value, bool):
        _fail(path, "must be a string, integer, or bytes, not a bool")
    if isinstance(value, (str, int)):
        return value
    if isinstance(value, (bytes, Mapping)):
        return _decode_bytes(value, path)
    _fail(
        path,
        'must be a string, integer, or {"base64": "..."} object, '
        f"got {type(value).__name__}",
    )
    raise AssertionError("unreachable")


def _encode_arg(arg: Arg) -> object:
    return _encode_bytes(arg) if isinstance(arg, bytes) else arg


def _check_arg_value(value: object, path: str) -> None:
    """Direct-construction twin of :func:`_decode_arg`."""
    if isinstance(value, bool) or not isinstance(value, (str, int, bytes)):
        _fail(path, f"must be a str, int, or bytes, got {type(value).__name__}")


# -- the kernel syscall table ------------------------------------------------


_SYSCALL_TABLE: Optional[Dict[str, Tuple[int, int]]] = None
_SYSCALL_PARAMS: Optional[Dict[str, Tuple[Tuple[str, Optional[type]], ...]]] = None

#: kernel parameter annotations the validator can type-check; anything
#: else (e.g. execve's ``Optional[List[str]]`` argv) goes unchecked
_ANNOTATION_TYPES: Dict[object, type] = {
    "str": str, "int": int, "bytes": bytes,
    str: str, int: int, bytes: bytes,
}


def _scan_kernel() -> None:
    """Build both syscall caches from one pass over the Kernel class."""
    global _SYSCALL_TABLE, _SYSCALL_PARAMS
    table: Dict[str, Tuple[int, int]] = {}
    param_map: Dict[str, Tuple[Tuple[str, Optional[type]], ...]] = {}
    positional = (
        inspect.Parameter.POSITIONAL_ONLY,
        inspect.Parameter.POSITIONAL_OR_KEYWORD,
    )
    for attr in dir(Kernel):
        if not attr.startswith("sys_"):
            continue
        params = [
            p for p in
            inspect.signature(getattr(Kernel, attr)).parameters.values()
            if p.kind in positional
        ][2:]  # drop self, process
        required = sum(
            1 for p in params if p.default is inspect.Parameter.empty
        )
        call = attr[len("sys_"):]
        table[call] = (required, len(params))
        param_map[call] = tuple(
            (p.name, _ANNOTATION_TYPES.get(p.annotation)) for p in params
        )
    _SYSCALL_TABLE = table
    _SYSCALL_PARAMS = param_map


def syscall_table() -> Dict[str, Tuple[int, int]]:
    """``call -> (required_args, max_args)`` from the simulated kernel.

    Derived by introspection over the :class:`~repro.kernel.Kernel`
    ``sys_*`` methods (dropping the ``self``/``process`` parameters), so
    the validator can never drift from what the executor dispatches to.
    """
    if _SYSCALL_TABLE is None:
        _scan_kernel()
    return _SYSCALL_TABLE


def syscall_params() -> Dict[str, Tuple[Tuple[str, Optional[type]], ...]]:
    """Per-call ``((param_name, expected_type | None), ...)``.

    ``None`` marks a parameter whose annotation the validator does not
    type-check.  ``$var`` references are always exempt — they resolve
    to kernel-bound integers at run time.
    """
    if _SYSCALL_PARAMS is None:
        _scan_kernel()
    return _SYSCALL_PARAMS


# -- spec types ---------------------------------------------------------------


@dataclass(frozen=True)
class OpSpec:
    """One operation of the benchmark program (one syscall invocation)."""

    call: str
    args: Tuple[Arg, ...] = ()
    result: Optional[str] = None
    target: bool = False
    expect_success: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))
        _decode_str(self.call, "OpSpec.call", non_empty=True)
        for i, arg in enumerate(self.args):
            _check_arg_value(arg, f"OpSpec.args[{i}]")
        _decode_str(self.result, "OpSpec.result", optional=True,
                    non_empty=True)
        _decode_bool(self.target, "OpSpec.target")
        _decode_bool(self.expect_success, "OpSpec.expect_success")

    def to_payload(self) -> Dict[str, object]:
        return {
            "call": self.call,
            "args": [_encode_arg(a) for a in self.args],
            "result": self.result,
            "target": self.target,
            "expect_success": self.expect_success,
        }

    @classmethod
    def from_payload(cls, payload: object, path: str = "OpSpec") -> "OpSpec":
        data = _decode_mapping(
            payload, path,
            ("call", "args", "result", "target", "expect_success"),
        )
        if "call" not in data:
            _fail(path, "missing required key 'call'")
        return cls(
            call=_decode_str(data["call"], f"{path}.call", non_empty=True),
            args=tuple(
                _decode_arg(value, f"{path}.args[{i}]")
                for i, value in enumerate(
                    _decode_array(data.get("args", []), f"{path}.args")
                )
            ),
            result=_decode_str(
                data.get("result"), f"{path}.result", optional=True,
                non_empty=True,
            ),
            target=_decode_bool(data.get("target", False), f"{path}.target"),
            expect_success=_decode_bool(
                data.get("expect_success", True), f"{path}.expect_success"
            ),
        )


@dataclass(frozen=True)
class SetupSpec:
    """One staging-directory preparation action (runs before recording)."""

    kind: str
    path: str
    mode: int = 0o644
    content: bytes = b"benchmark data\n"
    link_target: str = ""

    def __post_init__(self) -> None:
        if self.kind not in SETUP_KINDS:
            _fail("SetupSpec.kind",
                  f"must be one of {list(SETUP_KINDS)}, got {self.kind!r}")
        _decode_str(self.path, "SetupSpec.path", non_empty=True)
        _decode_int(self.mode, "SetupSpec.mode")
        if not isinstance(self.content, bytes):
            _fail("SetupSpec.content",
                  f"must be bytes, got {type(self.content).__name__}")
        _decode_str(self.link_target, "SetupSpec.link_target")

    def to_payload(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "path": self.path,
            "mode": self.mode,
            "content": _encode_bytes(self.content),
            "link_target": self.link_target,
        }

    @classmethod
    def from_payload(
        cls, payload: object, path: str = "SetupSpec"
    ) -> "SetupSpec":
        data = _decode_mapping(
            payload, path, ("kind", "path", "mode", "content", "link_target")
        )
        for key in ("kind", "path"):
            if key not in data:
                _fail(path, f"missing required key {key!r}")
        kind = _decode_str(data["kind"], f"{path}.kind")
        if kind not in SETUP_KINDS:
            _fail(f"{path}.kind",
                  f"must be one of {list(SETUP_KINDS)}, got {kind!r}")
        return cls(
            kind=kind,
            path=_decode_str(data["path"], f"{path}.path", non_empty=True),
            mode=_decode_int(data.get("mode", 0o644), f"{path}.mode"),
            content=_decode_bytes(
                data.get("content", b"benchmark data\n"), f"{path}.content"
            ),
            link_target=_decode_str(
                data.get("link_target", ""), f"{path}.link_target"
            ),
        )


@dataclass(frozen=True)
class ProgramSpec:
    """The op sequence, staging setup, and credentials of one benchmark."""

    ops: Tuple[OpSpec, ...] = ()
    setup: Tuple[SetupSpec, ...] = ()
    run_as_uid: int = 0
    run_as_gid: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "ops", tuple(self.ops))
        object.__setattr__(self, "setup", tuple(self.setup))
        for i, op in enumerate(self.ops):
            if not isinstance(op, OpSpec):
                _fail(f"ProgramSpec.ops[{i}]",
                      f"must be an OpSpec, got {type(op).__name__}")
        for i, action in enumerate(self.setup):
            if not isinstance(action, SetupSpec):
                _fail(f"ProgramSpec.setup[{i}]",
                      f"must be a SetupSpec, got {type(action).__name__}")
        _decode_int(self.run_as_uid, "ProgramSpec.run_as_uid")
        _decode_int(self.run_as_gid, "ProgramSpec.run_as_gid")

    def to_payload(self) -> Dict[str, object]:
        return {
            "ops": [op.to_payload() for op in self.ops],
            "setup": [action.to_payload() for action in self.setup],
            "run_as_uid": self.run_as_uid,
            "run_as_gid": self.run_as_gid,
        }

    @classmethod
    def from_payload(
        cls, payload: object, path: str = "ProgramSpec"
    ) -> "ProgramSpec":
        data = _decode_mapping(
            payload, path, ("ops", "setup", "run_as_uid", "run_as_gid")
        )
        return cls(
            ops=tuple(
                OpSpec.from_payload(value, f"{path}.ops[{i}]")
                for i, value in enumerate(
                    _decode_array(data.get("ops", []), f"{path}.ops")
                )
            ),
            setup=tuple(
                SetupSpec.from_payload(value, f"{path}.setup[{i}]")
                for i, value in enumerate(
                    _decode_array(data.get("setup", []), f"{path}.setup")
                )
            ),
            run_as_uid=_decode_int(
                data.get("run_as_uid", 0), f"{path}.run_as_uid"
            ),
            run_as_gid=_decode_int(
                data.get("run_as_gid", 0), f"{path}.run_as_gid"
            ),
        )


@dataclass(frozen=True)
class ExpectationSpec:
    """One per-tool expectation row (Table 2's ok/empty plus note)."""

    tool: str
    classification: str
    note: str = ""

    def __post_init__(self) -> None:
        _decode_str(self.tool, "ExpectationSpec.tool", non_empty=True)
        _decode_str(self.classification, "ExpectationSpec.classification")
        _decode_str(self.note, "ExpectationSpec.note")

    def to_payload(self) -> Dict[str, object]:
        return {
            "tool": self.tool,
            "classification": self.classification,
            "note": self.note,
        }

    @classmethod
    def from_payload(
        cls, payload: object, path: str = "ExpectationSpec"
    ) -> "ExpectationSpec":
        data = _decode_mapping(
            payload, path, ("tool", "classification", "note")
        )
        for key in ("tool", "classification"):
            if key not in data:
                _fail(path, f"missing required key {key!r}")
        return cls(
            tool=_decode_str(data["tool"], f"{path}.tool", non_empty=True),
            classification=_decode_str(
                data["classification"], f"{path}.classification"
            ),
            note=_decode_str(data.get("note", ""), f"{path}.note"),
        )


@dataclass(frozen=True)
class BenchmarkSpec:
    """A complete benchmark as a data object.

    ``validate()`` runs the semantic checks and returns ``self``;
    :func:`compile_spec` (or :meth:`to_program`) turns a valid spec into
    the :class:`~repro.suite.program.Program` the pipeline runs.
    """

    name: str
    program: ProgramSpec
    group: int = 0
    group_name: str = "Custom"
    description: str = ""
    tags: Tuple[str, ...] = ()
    expectations: Tuple[ExpectationSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "tags", tuple(self.tags))
        object.__setattr__(self, "expectations", tuple(self.expectations))
        _decode_str(self.name, "BenchmarkSpec.name", non_empty=True)
        if not isinstance(self.program, ProgramSpec):
            _fail("BenchmarkSpec.program",
                  f"must be a ProgramSpec, got {type(self.program).__name__}")
        _decode_int(self.group, "BenchmarkSpec.group")
        _decode_str(self.group_name, "BenchmarkSpec.group_name")
        _decode_str(self.description, "BenchmarkSpec.description")
        for i, tag in enumerate(self.tags):
            _decode_str(tag, f"BenchmarkSpec.tags[{i}]", non_empty=True)
        for i, expectation in enumerate(self.expectations):
            if not isinstance(expectation, ExpectationSpec):
                _fail(f"BenchmarkSpec.expectations[{i}]",
                      "must be an ExpectationSpec, "
                      f"got {type(expectation).__name__}")

    def to_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "group": self.group,
            "group_name": self.group_name,
            "description": self.description,
            "tags": list(self.tags),
            "expectations": [e.to_payload() for e in self.expectations],
            "program": self.program.to_payload(),
        }

    @classmethod
    def from_payload(
        cls, payload: object, path: str = "BenchmarkSpec"
    ) -> "BenchmarkSpec":
        data = _decode_mapping(
            payload, path,
            ("name", "group", "group_name", "description", "tags",
             "expectations", "program"),
        )
        for key in ("name", "program"):
            if key not in data:
                _fail(path, f"missing required key {key!r}")
        return cls(
            name=_decode_str(data["name"], f"{path}.name", non_empty=True),
            program=ProgramSpec.from_payload(
                data["program"], f"{path}.program"
            ),
            group=_decode_int(data.get("group", 0), f"{path}.group"),
            group_name=_decode_str(
                data.get("group_name", "Custom"), f"{path}.group_name"
            ),
            description=_decode_str(
                data.get("description", ""), f"{path}.description"
            ),
            tags=tuple(
                _decode_str(value, f"{path}.tags[{i}]", non_empty=True)
                for i, value in enumerate(
                    _decode_array(data.get("tags", []), f"{path}.tags")
                )
            ),
            expectations=tuple(
                ExpectationSpec.from_payload(value, f"{path}.expectations[{i}]")
                for i, value in enumerate(_decode_array(
                    data.get("expectations", []), f"{path}.expectations"
                ))
            ),
        )

    # -- semantics ----------------------------------------------------------

    def validate(self) -> "BenchmarkSpec":
        """Run every semantic check; ValidationError paths are full."""
        root = "BenchmarkSpec"
        if len(self.name) > MAX_NAME_LENGTH:
            _fail(f"{root}.name",
                  f"must be at most {MAX_NAME_LENGTH} characters")
        if not _NAME_RE.match(self.name):
            _fail(f"{root}.name",
                  "must match [A-Za-z0-9][A-Za-z0-9_.-]* "
                  f"(got {self.name!r})")
        if self.group < 0:
            _fail(f"{root}.group", f"must be >= 0, got {self.group}")
        self._validate_tags(root)
        self._validate_expectations(root)
        self._validate_program(f"{root}.program")
        return self

    def _validate_tags(self, root: str) -> None:
        if len(self.tags) > MAX_TAGS:
            _fail(f"{root}.tags", f"must have at most {MAX_TAGS} entries")
        seen = set()
        for i, tag in enumerate(self.tags):
            if not _TAG_RE.match(tag):
                _fail(f"{root}.tags[{i}]",
                      f"must match [A-Za-z0-9][A-Za-z0-9_.-]* (got {tag!r})")
            if tag in seen:
                _fail(f"{root}.tags[{i}]", f"duplicate tag {tag!r}")
            seen.add(tag)

    def _validate_expectations(self, root: str) -> None:
        seen = set()
        for i, expectation in enumerate(self.expectations):
            if expectation.classification not in EXPECTED_CLASSIFICATIONS:
                _fail(f"{root}.expectations[{i}].classification",
                      f"must be one of {list(EXPECTED_CLASSIFICATIONS)}, "
                      f"got {expectation.classification!r}")
            if expectation.tool in seen:
                _fail(f"{root}.expectations[{i}].tool",
                      f"duplicate expectation for tool {expectation.tool!r}")
            seen.add(expectation.tool)

    def _validate_program(self, root: str) -> None:
        program = self.program
        for field, value in (("run_as_uid", program.run_as_uid),
                             ("run_as_gid", program.run_as_gid)):
            if not 0 <= value <= MAX_ID:
                _fail(f"{root}.{field}",
                      f"must be in [0, {MAX_ID}], got {value}")
        if not program.ops:
            _fail(f"{root}.ops", "must declare at least one op")
        if len(program.ops) > MAX_OPS:
            _fail(f"{root}.ops", f"must have at most {MAX_OPS} entries")
        if not any(op.target for op in program.ops):
            _fail(f"{root}.ops",
                  "at least one op must be marked \"target\": true")
        if len(program.setup) > MAX_SETUP:
            _fail(f"{root}.setup", f"must have at most {MAX_SETUP} entries")
        for i, action in enumerate(program.setup):
            self._validate_setup_action(action, f"{root}.setup[{i}]")
        table, params = syscall_table(), syscall_params()
        for i, op in enumerate(program.ops):
            self._validate_op(op, table, params, f"{root}.ops[{i}]")
        # Dataflow must resolve in the foreground program (all ops) AND
        # in the background program (target ops stripped out, paper §3).
        self._validate_dataflow(program.ops, root, variant="foreground")
        self._validate_dataflow(
            tuple(op if not op.target else None for op in program.ops),
            root, variant="background",
        )

    @staticmethod
    def _validate_setup_action(action: SetupSpec, path: str) -> None:
        for field, value in (("path", action.path),
                             ("link_target", action.link_target)):
            if not value:
                continue
            if value.startswith("/") or "\\" in value:
                _fail(f"{path}.{field}",
                      "must be a relative path inside the staging "
                      f"directory, got {value!r}")
            if ".." in value.split("/"):
                _fail(f"{path}.{field}",
                      f"must not contain '..' segments, got {value!r}")
        if not 0 <= action.mode <= 0o7777:
            _fail(f"{path}.mode",
                  f"must be in [0, 0o7777], got {action.mode}")
        if action.kind == "symlink" and not action.link_target:
            _fail(f"{path}.link_target",
                  "is required for \"symlink\" setup actions")
        if action.kind != "symlink" and action.link_target:
            _fail(f"{path}.link_target",
                  f"is only valid for \"symlink\" actions, not {action.kind!r}")

    @staticmethod
    def _validate_op(
        op: OpSpec,
        table: Mapping[str, Tuple[int, int]],
        params: Mapping[str, Tuple[Tuple[str, Optional[type]], ...]],
        path: str,
    ) -> None:
        if op.call not in table:
            _fail(f"{path}.call",
                  f"unknown syscall {op.call!r}; the kernel implements: "
                  f"{sorted(table)}")
        required, maximum = table[op.call]
        if not required <= len(op.args) <= maximum:
            expected = (
                f"exactly {required}" if required == maximum
                else f"between {required} and {maximum}"
            )
            _fail(f"{path}.args",
                  f"{op.call} takes {expected} argument(s), "
                  f"got {len(op.args)}")
        for j, arg in enumerate(op.args):
            name, expected_type = params[op.call][j]
            if isinstance(arg, str) and arg.startswith("$"):
                # a $var resolves to a kernel-bound *int* at run time,
                # so it can only stand in an int (or unchecked) slot
                if expected_type in (str, bytes):
                    _fail(f"{path}.args[{j}]",
                          f"{arg!r} resolves to an integer at run time, "
                          f"but {op.call} argument {name!r} expects "
                          f"{expected_type.__name__}")
                continue
            if expected_type is not None and (
                not isinstance(arg, expected_type)
                or isinstance(arg, bool)
            ):
                _fail(f"{path}.args[{j}]",
                      f"{op.call} argument {name!r} must be "
                      f"{expected_type.__name__}, "
                      f"got {type(arg).__name__}")
        if op.result is not None:
            if not _RESULT_RE.match(op.result):
                _fail(f"{path}.result",
                      "must be an identifier ([A-Za-z_][A-Za-z0-9_]*), "
                      f"got {op.result!r}")
            if op.result == "self":
                _fail(f"{path}.result",
                      "'self' is bound implicitly and cannot be rebound")

    @staticmethod
    def _validate_dataflow(
        ops: Tuple[Optional[OpSpec], ...], root: str, variant: str
    ) -> None:
        """Mirror the executor's variable binding over one variant.

        ``ops`` carries ``None`` at the positions the variant drops, so
        error paths still index into the full op list.
        """
        bound = {"self"}
        for i, op in enumerate(ops):
            if op is None:
                continue
            for j, arg in enumerate(op.args):
                if not isinstance(arg, str) or not arg.startswith("$"):
                    continue
                name = arg[1:]
                if name not in bound:
                    hint = (
                        " in the background variant (target ops are "
                        "stripped out)" if variant == "background" else ""
                    )
                    _fail(f"{root}.ops[{i}].args[{j}]",
                          f"references unbound variable {arg!r}{hint}")
            # binding rules of repro.suite.executor._run_ops
            if op.result:
                bound.add(op.result)
            if op.call in ("pipe", "pipe2"):
                prefix = op.result or "pipe"
                bound.update((f"{prefix}_r", f"{prefix}_w"))
            if op.call == "socketpair":
                prefix = op.result or "sock"
                bound.update((f"{prefix}_a", f"{prefix}_b"))
            if op.call in ("fork", "vfork", "clone"):
                bound.add(op.result or "child")

    def to_program(self) -> Program:
        return compile_spec(self)


# -- compilation --------------------------------------------------------------


def compile_spec(spec: BenchmarkSpec) -> Program:
    """Validate and compile a spec into the executable Program.

    The result is the same dataclass value (hence the same ``repr`` and
    the same artifact-store key material) a hand-written
    ``suite/registry.py`` row with these fields would produce, so a
    spec-defined benchmark yields byte-identical pipeline results.
    """
    if not isinstance(spec, BenchmarkSpec):
        raise ValidationError(
            f"compile_spec() takes a BenchmarkSpec, got {type(spec).__name__}"
        )
    spec.validate()
    return Program(
        name=spec.name,
        ops=tuple(
            Op(
                call=op.call,
                args=op.args,
                result=op.result,
                target=op.target,
                expect_success=op.expect_success,
            )
            for op in spec.program.ops
        ),
        setup=tuple(
            SetupAction(
                kind=action.kind,
                path=action.path,
                mode=action.mode,
                content=action.content,
                link_target=action.link_target,
            )
            for action in spec.program.setup
        ),
        group=spec.group,
        group_name=spec.group_name,
        run_as_uid=spec.program.run_as_uid,
        run_as_gid=spec.program.run_as_gid,
        description=spec.description,
        expected=tuple(
            (e.tool, e.classification, e.note) for e in spec.expectations
        ),
    )


def spec_from_program(
    program: Program, tags: Tuple[str, ...] = ()
) -> BenchmarkSpec:
    """The inverse of :func:`compile_spec` (used for the builtin rows).

    ``compile_spec(spec_from_program(p)) == p`` holds for every program
    the suite registry carries; the round-trip test enforces it.
    """
    return BenchmarkSpec(
        name=program.name,
        program=ProgramSpec(
            ops=tuple(
                OpSpec(
                    call=op.call,
                    args=op.args,
                    result=op.result,
                    target=op.target,
                    expect_success=op.expect_success,
                )
                for op in program.ops
            ),
            setup=tuple(
                SetupSpec(
                    kind=action.kind,
                    path=action.path,
                    mode=action.mode,
                    content=action.content,
                    link_target=action.link_target,
                )
                for action in program.setup
            ),
            run_as_uid=program.run_as_uid,
            run_as_gid=program.run_as_gid,
        ),
        group=program.group,
        group_name=program.group_name,
        description=program.description,
        tags=tuple(tags),
        expectations=tuple(
            ExpectationSpec(tool=tool, classification=classification,
                            note=note)
            for tool, classification, note in program.expected
        ),
    )


# -- persistence (the artifact store's "spec" stage) -------------------------


def spec_digest(spec: BenchmarkSpec) -> str:
    """Content digest of a spec — its identity in the store's spec stage."""
    return canonical_key({"spec": spec.to_payload()})


def persist_spec(store: ArtifactStore, spec: BenchmarkSpec) -> str:
    """Persist a validated spec under the ``spec`` stage; returns digest.

    Keys are content digests, so re-adding the same spec is idempotent.
    Persisting has *replace* semantics per name: older artifacts
    carrying the same benchmark name under a different digest are
    removed, so an edited spec never leaves a stale twin behind for
    :func:`load_persisted_specs` to resurrect.
    """
    spec.validate()
    payload = spec.to_payload()
    digest = spec_digest(spec)
    # An artifact's filename stem IS its content digest (store.save
    # names files by canonical_key of the same material), so same-name
    # staleness only needs the payload's name field — no per-file spec
    # decode or digest recompute.
    for path, stored in list(store.iter_stage(SPEC_STAGE)):
        if (path.stem != digest and isinstance(stored, Mapping)
                and stored.get("name") == spec.name):
            try:
                path.unlink()
            except OSError:
                pass
    store.save(SPEC_STAGE, {"spec": payload}, payload)
    return digest


def iter_persisted_specs(
    store: ArtifactStore, skip_digests: Container[str] = ()
) -> Iterator[Tuple[Path, BenchmarkSpec]]:
    """Yield ``(artifact_path, spec)`` for every decodable stored spec.

    Artifacts that fail structural decoding are skipped (and counted
    invalid), matching the store's corruption-tolerance contract.
    ``skip_digests`` (artifact filename stems) are dropped before any
    file read, so incremental consumers rescan a store for the price
    of a directory listing.
    """
    for path, payload in store.iter_stage(SPEC_STAGE, skip_digests):
        try:
            yield path, BenchmarkSpec.from_payload(payload)
        except ValidationError:
            store.stats.invalid += 1


def load_persisted_specs(store: ArtifactStore) -> List[BenchmarkSpec]:
    """Every decodable spec persisted in the store, path order."""
    return [spec for _, spec in iter_persisted_specs(store)]


def remove_persisted_spec(store: ArtifactStore, name: str) -> int:
    """Delete every persisted spec named ``name``; returns count removed."""
    removed = 0
    for path, spec in list(iter_persisted_specs(store)):
        if spec.name == name:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed
