"""``repro.api`` — the versioned, typed public surface (v1).

The single supported way in, for programs and remote clients alike:

* :mod:`repro.api.types` — frozen request/response dataclasses with
  strict validation and JSON codecs (:data:`API_VERSION` tags the
  vocabulary);
* :mod:`repro.api.service` — :class:`BenchmarkService`, the façade over
  the staged pipeline, capture registry, suite registry, and artifact
  store;
* :mod:`repro.api.jobs` — the async :class:`JobManager` behind
  ``submit()``/``poll()``/``cancel()``;
* :mod:`repro.api.http` — the embedded stdlib HTTP JSON service
  (``provmark serve``);
* :mod:`repro.api.errors` — the error vocabulary the CLI and HTTP
  surfaces render identically.

Quickstart::

    from repro.api import BenchmarkService, RunRequest

    service = BenchmarkService()
    response = service.run(RunRequest(benchmark="open", tool="spade", seed=5))
    print(response.result.summary())

    job = service.submit(RunRequest(benchmark="open", tool="camflow", seed=5))
    while not service.poll(job.job_id).finished:
        ...
"""

from repro.api.errors import (
    ApiError,
    NotFoundError,
    ValidationError,
    render_error,
)
from repro.api.http import ApiHTTPServer, DEFAULT_PORT, make_server
from repro.api.jobs import JobCancelled, JobManager
from repro.api.service import BenchmarkService
from repro.api.types import (
    API_VERSION,
    BatchRequest,
    BenchmarkInfo,
    JobStatus,
    RunRequest,
    RunResponse,
    ToolInfo,
    ToolQuery,
)

__all__ = [
    "API_VERSION",
    "ApiError",
    "ApiHTTPServer",
    "BatchRequest",
    "BenchmarkInfo",
    "BenchmarkService",
    "DEFAULT_PORT",
    "JobCancelled",
    "JobManager",
    "JobStatus",
    "NotFoundError",
    "RunRequest",
    "RunResponse",
    "ToolInfo",
    "ToolQuery",
    "ValidationError",
    "make_server",
    "render_error",
]
