"""``repro.api`` — the versioned, typed public surface (v1).

The single supported way in, for programs and remote clients alike:

* :mod:`repro.api.types` — frozen request/response dataclasses with
  strict validation and JSON codecs (:data:`API_VERSION` tags the
  vocabulary);
* :mod:`repro.api.specs` — declarative benchmark specifications
  (:class:`BenchmarkSpec` and friends): benchmarks as validated data
  objects that compile into suite programs and persist in the artifact
  store;
* :mod:`repro.api.service` — :class:`BenchmarkService`, the façade over
  the staged pipeline, capture registry, suite registry, and artifact
  store;
* :mod:`repro.api.jobs` — the async :class:`JobManager` behind
  ``submit()``/``poll()``/``cancel()``;
* :mod:`repro.api.http` — the embedded stdlib HTTP JSON service
  (``provmark serve``);
* :mod:`repro.api.errors` — the error vocabulary the CLI and HTTP
  surfaces render identically.

Quickstart::

    from repro.api import BenchmarkService, RunRequest

    service = BenchmarkService()
    response = service.run(RunRequest(benchmark="open", tool="spade", seed=5))
    print(response.result.summary())

    job = service.submit(RunRequest(benchmark="open", tool="camflow", seed=5))
    while not service.poll(job.job_id).finished:
        ...
"""

from repro.api.errors import (
    ApiError,
    BackpressureError,
    ConflictError,
    DeadlineError,
    ForbiddenError,
    MethodNotAllowedError,
    NotFoundError,
    RateLimitError,
    UnauthorizedError,
    ValidationError,
    error_body,
    error_headers,
    render_error,
)
from repro.api.http import ApiHTTPServer, DEFAULT_PORT, make_server
from repro.api.jobs import JobCancelled, JobManager
from repro.api.service import BenchmarkService
from repro.api.specs import (
    SPEC_STAGE,
    BenchmarkSpec,
    ExpectationSpec,
    OpSpec,
    ProgramSpec,
    SetupSpec,
    compile_spec,
    load_persisted_specs,
    persist_spec,
    remove_persisted_spec,
    spec_digest,
    spec_from_program,
)
from repro.api.types import (
    API_VERSION,
    BatchRequest,
    BenchmarkInfo,
    JobStatus,
    RunRequest,
    RunResponse,
    SynthConfig,
    SynthCoverage,
    SynthReport,
    ToolInfo,
    ToolQuery,
)

__all__ = [
    "API_VERSION",
    "ApiError",
    "ApiHTTPServer",
    "BackpressureError",
    "BatchRequest",
    "BenchmarkInfo",
    "BenchmarkService",
    "BenchmarkSpec",
    "compile_spec",
    "ConflictError",
    "DeadlineError",
    "DEFAULT_PORT",
    "error_body",
    "error_headers",
    "ExpectationSpec",
    "ForbiddenError",
    "JobCancelled",
    "JobManager",
    "JobStatus",
    "load_persisted_specs",
    "make_server",
    "MethodNotAllowedError",
    "NotFoundError",
    "OpSpec",
    "persist_spec",
    "ProgramSpec",
    "RateLimitError",
    "remove_persisted_spec",
    "render_error",
    "RunRequest",
    "RunResponse",
    "SetupSpec",
    "spec_digest",
    "spec_from_program",
    "SPEC_STAGE",
    "SynthConfig",
    "SynthCoverage",
    "SynthReport",
    "ToolInfo",
    "ToolQuery",
    "UnauthorizedError",
    "ValidationError",
]
