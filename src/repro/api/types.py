"""Typed requests and responses of the ``repro.api`` v1 surface.

Every type is a frozen dataclass that validates strictly on
construction (:class:`~repro.api.errors.ValidationError` on the first
bad field) and round-trips through JSON::

    decode(encode(x)) == x

``to_payload()`` emits plain JSON-serializable dicts; ``from_payload()``
rejects unknown keys and wrong-typed values, so a malformed HTTP body or
a stale stored payload fails loudly instead of half-decoding.  Graph and
result values reuse the PR 2 payload codecs
(:meth:`repro.core.result.BenchmarkResult.to_payload` and the graph
codecs in :mod:`repro.storage.artifacts`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.api.errors import ValidationError
from repro.api.specs import BenchmarkSpec
from repro.core.result import BenchmarkResult
from repro.storage.artifacts import ArtifactError

#: version tag of this request/response vocabulary; served as the
#: ``/v1`` HTTP prefix and embedded in every response envelope
API_VERSION = "1"

#: the two graph-matching engines a request may name
ENGINES = ("native", "asp")

#: similarity-class pair choice policies (paper §3.4)
PAIR_POLICIES = ("smallest", "largest")

#: lifecycle states of an async job
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: kinds of work a job can carry
JOB_KINDS = ("run", "batch")


# -- field validation helpers -----------------------------------------------


def _fail(type_name: str, field: str, message: str) -> None:
    raise ValidationError(f"{type_name}.{field}: {message}")


def _check_str(
    type_name: str, field: str, value: object,
    optional: bool = False, non_empty: bool = False,
) -> None:
    if value is None:
        if not optional:
            _fail(type_name, field, "must be a string, not None")
        return
    if not isinstance(value, str):
        _fail(type_name, field, f"must be a string, got {type(value).__name__}")
    if non_empty and not value:
        _fail(type_name, field, "must be non-empty")


def _check_bool(
    type_name: str, field: str, value: object, optional: bool = False
) -> None:
    if value is None and optional:
        return
    if not isinstance(value, bool):
        _fail(type_name, field, f"must be a bool, got {type(value).__name__}")


def _check_int(
    type_name: str, field: str, value: object,
    optional: bool = False, minimum: Optional[int] = None,
) -> None:
    if value is None and optional:
        return
    if not isinstance(value, int) or isinstance(value, bool):
        _fail(type_name, field, f"must be an int, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        _fail(type_name, field, f"must be >= {minimum}, got {value}")


def _check_number(
    type_name: str, field: str, value: object,
    optional: bool = False,
    minimum: Optional[float] = None, maximum: Optional[float] = None,
) -> None:
    if value is None and optional:
        return
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(type_name, field, f"must be a number, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        _fail(type_name, field, f"must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        _fail(type_name, field, f"must be <= {maximum}, got {value}")


def _check_choice(
    type_name: str, field: str, value: object, choices: Tuple[str, ...]
) -> None:
    if value not in choices:
        _fail(type_name, field, f"must be one of {list(choices)}, got {value!r}")


def _decode_kwargs(cls, payload: object) -> Dict[str, object]:
    """Strictly map a JSON object onto ``cls``'s dataclass fields.

    Unknown keys are rejected (malformed payloads must not half-decode);
    missing keys fall back to the field defaults, and JSON arrays are
    coerced to the tuples the frozen types carry.
    """
    if not isinstance(payload, Mapping):
        raise ValidationError(
            f"{cls.__name__} payload must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - names)
    if unknown:
        raise ValidationError(
            f"{cls.__name__} payload has unknown keys: {unknown}"
        )
    kwargs: Dict[str, object] = {}
    for key, value in payload.items():
        kwargs[key] = tuple(value) if isinstance(value, list) else value
    return kwargs


def _construct(cls, kwargs: Dict[str, object]):
    """Build the dataclass, turning missing-field TypeErrors into
    ValidationErrors (field validation itself happens in __post_init__)."""
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ValidationError(f"{cls.__name__} payload: {exc}") from exc


def _validate_pipeline_fields(request: object, type_name: str) -> None:
    """The configuration fields RunRequest and BatchRequest share."""
    _check_str(type_name, "tool", request.tool, non_empty=True)
    _check_str(type_name, "profile", request.profile, optional=True)
    _check_str(type_name, "config_path", request.config_path, optional=True)
    _check_int(type_name, "trials", request.trials, optional=True, minimum=1)
    _check_bool(
        type_name, "filtergraphs", request.filtergraphs, optional=True
    )
    _check_choice(type_name, "engine", request.engine, ENGINES)
    _check_int(type_name, "seed", request.seed, optional=True)
    _check_number(
        type_name, "truncation_rate", request.truncation_rate,
        minimum=0.0, maximum=1.0,
    )
    _check_choice(
        type_name, "fg_pair_policy", request.fg_pair_policy, PAIR_POLICIES
    )
    _check_choice(
        type_name, "bg_pair_policy", request.bg_pair_policy, PAIR_POLICIES
    )
    _check_str(type_name, "store_path", request.store_path, optional=True)
    _check_bool(type_name, "resume", request.resume)
    _check_bool(type_name, "cache", request.cache)


def _pipeline_payload(request: object) -> Dict[str, object]:
    return {
        "tool": request.tool,
        "profile": request.profile,
        "config_path": request.config_path,
        "trials": request.trials,
        "filtergraphs": request.filtergraphs,
        "engine": request.engine,
        "seed": request.seed,
        "truncation_rate": request.truncation_rate,
        "fg_pair_policy": request.fg_pair_policy,
        "bg_pair_policy": request.bg_pair_policy,
        "store_path": request.store_path,
        "resume": request.resume,
        "cache": request.cache,
    }


# -- requests ---------------------------------------------------------------


@dataclass(frozen=True)
class RunRequest:
    """One benchmark run, fully declared.

    The benchmark is named by exactly one of ``benchmark`` (a registered
    suite name) or ``spec`` (an inline
    :class:`~repro.api.specs.BenchmarkSpec`, validated and compiled on
    the fly without touching the registry).

    ``profile`` (optionally with ``config_path``) selects a config.ini
    tool profile exactly like ``provmark run --profile``; it overrides
    ``tool`` while ``trials``/``filtergraphs`` still apply on top.
    """

    benchmark: Optional[str] = None
    spec: Optional[BenchmarkSpec] = None
    tool: str = "spade"
    profile: Optional[str] = None
    config_path: Optional[str] = None
    trials: Optional[int] = None
    filtergraphs: Optional[bool] = None
    engine: str = "native"
    seed: Optional[int] = None
    truncation_rate: float = 0.0
    fg_pair_policy: str = "smallest"
    bg_pair_policy: str = "smallest"
    store_path: Optional[str] = None
    resume: bool = False
    cache: bool = True

    def __post_init__(self) -> None:
        if self.spec is not None and not isinstance(self.spec, BenchmarkSpec):
            _fail("RunRequest", "spec",
                  f"must be a BenchmarkSpec, got {type(self.spec).__name__}")
        if (self.benchmark is None) == (self.spec is None):
            _fail("RunRequest", "benchmark",
                  "exactly one of 'benchmark' or 'spec' must be set")
        _check_str("RunRequest", "benchmark", self.benchmark, optional=True,
                   non_empty=True)
        _validate_pipeline_fields(self, "RunRequest")

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "benchmark": self.benchmark,
            "spec": self.spec.to_payload() if self.spec is not None else None,
        }
        payload.update(_pipeline_payload(self))
        return payload

    @classmethod
    def from_payload(cls, payload: object) -> "RunRequest":
        kwargs = _decode_kwargs(cls, payload)
        if kwargs.get("spec") is not None:
            kwargs["spec"] = BenchmarkSpec.from_payload(
                kwargs["spec"], path="RunRequest.spec"
            )
        return _construct(cls, kwargs)


@dataclass(frozen=True)
class BatchRequest:
    """Many benchmark runs under one configuration.

    ``benchmarks`` names the runs explicitly; ``tags`` instead selects
    every registered benchmark carrying *all* the given tags (an open
    registry may match user-defined benchmarks too).  With neither set
    the batch is the full Table 2 suite.  ``max_workers`` fans
    independent benchmarks over a process pool exactly like
    ``provmark batch --max-workers``.
    """

    benchmarks: Optional[Tuple[str, ...]] = None
    tags: Optional[Tuple[str, ...]] = None
    max_workers: Optional[int] = None
    tool: str = "spade"
    profile: Optional[str] = None
    config_path: Optional[str] = None
    trials: Optional[int] = None
    filtergraphs: Optional[bool] = None
    engine: str = "native"
    seed: Optional[int] = None
    truncation_rate: float = 0.0
    fg_pair_policy: str = "smallest"
    bg_pair_policy: str = "smallest"
    store_path: Optional[str] = None
    resume: bool = False
    cache: bool = True

    def __post_init__(self) -> None:
        if self.benchmarks is not None:
            if not isinstance(self.benchmarks, tuple):
                _fail("BatchRequest", "benchmarks",
                      "must be a tuple of names or None")
            for i, name in enumerate(self.benchmarks):
                _check_str(
                    "BatchRequest", f"benchmarks[{i}]", name, non_empty=True
                )
        if self.tags is not None:
            if self.benchmarks is not None:
                _fail("BatchRequest", "tags",
                      "cannot be combined with an explicit 'benchmarks' list")
            if not isinstance(self.tags, tuple) or not self.tags:
                _fail("BatchRequest", "tags",
                      "must be a non-empty tuple of tag names or None")
            for i, tag in enumerate(self.tags):
                _check_str("BatchRequest", f"tags[{i}]", tag, non_empty=True)
        _check_int(
            "BatchRequest", "max_workers", self.max_workers,
            optional=True, minimum=1,
        )
        _validate_pipeline_fields(self, "BatchRequest")

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "benchmarks": (
                list(self.benchmarks) if self.benchmarks is not None else None
            ),
            "tags": list(self.tags) if self.tags is not None else None,
            "max_workers": self.max_workers,
        }
        payload.update(_pipeline_payload(self))
        return payload

    @classmethod
    def from_payload(cls, payload: object) -> "BatchRequest":
        return _construct(cls, _decode_kwargs(cls, payload))


@dataclass(frozen=True)
class ToolQuery:
    """Catalog query for registered capture backends.

    ``name=None`` lists every backend; a name restricts the answer to
    that backend (NotFoundError if it is not registered).
    """

    name: Optional[str] = None

    def __post_init__(self) -> None:
        _check_str("ToolQuery", "name", self.name, optional=True,
                   non_empty=True)

    def to_payload(self) -> Dict[str, object]:
        return {"name": self.name}

    @classmethod
    def from_payload(cls, payload: object) -> "ToolQuery":
        return _construct(cls, _decode_kwargs(cls, payload))


# -- responses --------------------------------------------------------------


@dataclass(frozen=True)
class ToolInfo:
    """One registered capture backend with its resolved profile."""

    name: str
    trials: int
    filtergraphs: bool
    output_format: str
    description: str = ""

    def __post_init__(self) -> None:
        _check_str("ToolInfo", "name", self.name, non_empty=True)
        _check_int("ToolInfo", "trials", self.trials, minimum=1)
        _check_bool("ToolInfo", "filtergraphs", self.filtergraphs)
        _check_str("ToolInfo", "output_format", self.output_format,
                   non_empty=True)
        _check_str("ToolInfo", "description", self.description)

    def to_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "trials": self.trials,
            "filtergraphs": self.filtergraphs,
            "output_format": self.output_format,
            "description": self.description,
        }

    @classmethod
    def from_payload(cls, payload: object) -> "ToolInfo":
        return _construct(cls, _decode_kwargs(cls, payload))


@dataclass(frozen=True)
class BenchmarkInfo:
    """One suite benchmark as the catalog endpoints describe it."""

    name: str
    group: int
    group_name: str
    description: str = ""
    tags: Tuple[str, ...] = ()
    builtin: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "tags", tuple(self.tags))
        _check_str("BenchmarkInfo", "name", self.name, non_empty=True)
        _check_int("BenchmarkInfo", "group", self.group, minimum=0)
        _check_str("BenchmarkInfo", "group_name", self.group_name)
        _check_str("BenchmarkInfo", "description", self.description)
        for i, tag in enumerate(self.tags):
            _check_str("BenchmarkInfo", f"tags[{i}]", tag, non_empty=True)
        _check_bool("BenchmarkInfo", "builtin", self.builtin)

    def to_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "group": self.group,
            "group_name": self.group_name,
            "description": self.description,
            "tags": list(self.tags),
            "builtin": self.builtin,
        }

    @classmethod
    def from_payload(cls, payload: object) -> "BenchmarkInfo":
        return _construct(cls, _decode_kwargs(cls, payload))


@dataclass(frozen=True)
class RunResponse:
    """The result envelope for one completed benchmark run.

    ``result`` is the full :class:`~repro.core.result.BenchmarkResult`
    — graphs, timings, solver and store counters — byte-identical to
    what the pre-redesign ``ProvMark.run_benchmark`` produced.
    """

    result: BenchmarkResult
    api_version: str = API_VERSION

    def __post_init__(self) -> None:
        if not isinstance(self.result, BenchmarkResult):
            _fail("RunResponse", "result",
                  f"must be a BenchmarkResult, got {type(self.result).__name__}")
        if self.api_version != API_VERSION:
            _fail("RunResponse", "api_version",
                  f"must be {API_VERSION!r}, got {self.api_version!r}")

    def to_payload(self) -> Dict[str, object]:
        return {
            "api_version": self.api_version,
            "result": self.result.to_payload(),
        }

    @classmethod
    def from_payload(cls, payload: object) -> "RunResponse":
        kwargs = _decode_kwargs(cls, payload)
        if "result" not in kwargs:
            raise ValidationError("RunResponse payload is missing 'result'")
        try:
            result = BenchmarkResult.from_payload(kwargs["result"])
        except (ArtifactError, AttributeError, IndexError, KeyError,
                TypeError, ValueError) as exc:
            raise ValidationError(
                f"RunResponse.result: malformed BenchmarkResult payload "
                f"({exc})"
            ) from exc
        kwargs["result"] = result
        return _construct(cls, kwargs)


@dataclass(frozen=True)
class JobStatus:
    """A point-in-time snapshot of an async job.

    ``result`` (run jobs) or ``results`` (batch jobs) is populated once
    ``state == "done"``; ``stage`` tracks the most recent
    stage-boundary :class:`~repro.core.stages.ProgressEvent` as
    ``"<benchmark>/<stage>:<status>"``.
    """

    job_id: str
    state: str
    kind: str = "run"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    total: int = 1
    completed: int = 0
    stage: str = ""
    error: str = ""
    result: Optional[RunResponse] = None
    results: Optional[Tuple[RunResponse, ...]] = None
    api_version: str = API_VERSION

    def __post_init__(self) -> None:
        _check_str("JobStatus", "job_id", self.job_id, non_empty=True)
        _check_choice("JobStatus", "state", self.state, JOB_STATES)
        _check_choice("JobStatus", "kind", self.kind, JOB_KINDS)
        _check_number("JobStatus", "submitted_at", self.submitted_at,
                      minimum=0.0)
        _check_number("JobStatus", "started_at", self.started_at,
                      optional=True, minimum=0.0)
        _check_number("JobStatus", "finished_at", self.finished_at,
                      optional=True, minimum=0.0)
        _check_int("JobStatus", "total", self.total, minimum=0)
        _check_int("JobStatus", "completed", self.completed, minimum=0)
        _check_str("JobStatus", "stage", self.stage)
        _check_str("JobStatus", "error", self.error)
        if self.result is not None and not isinstance(self.result, RunResponse):
            _fail("JobStatus", "result", "must be a RunResponse or None")
        if self.results is not None:
            if not isinstance(self.results, tuple) or any(
                not isinstance(r, RunResponse) for r in self.results
            ):
                _fail("JobStatus", "results",
                      "must be a tuple of RunResponse or None")
        if self.api_version != API_VERSION:
            _fail("JobStatus", "api_version",
                  f"must be {API_VERSION!r}, got {self.api_version!r}")

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    def to_payload(self) -> Dict[str, object]:
        return {
            "api_version": self.api_version,
            "job_id": self.job_id,
            "state": self.state,
            "kind": self.kind,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "total": self.total,
            "completed": self.completed,
            "stage": self.stage,
            "error": self.error,
            "result": self.result.to_payload() if self.result else None,
            "results": (
                [r.to_payload() for r in self.results]
                if self.results is not None else None
            ),
        }

    @classmethod
    def from_payload(cls, payload: object) -> "JobStatus":
        kwargs = _decode_kwargs(cls, payload)
        if kwargs.get("result") is not None:
            kwargs["result"] = RunResponse.from_payload(kwargs["result"])
        if kwargs.get("results") is not None:
            results = kwargs["results"]
            if not isinstance(results, tuple):
                raise ValidationError(
                    "JobStatus.results payload must be an array"
                )
            kwargs["results"] = tuple(
                RunResponse.from_payload(r) for r in results
            )
        return _construct(cls, kwargs)
