"""Typed requests and responses of the ``repro.api`` v1 surface.

Every type is a frozen dataclass that validates strictly on
construction (:class:`~repro.api.errors.ValidationError` on the first
bad field) and round-trips through JSON::

    decode(encode(x)) == x

``to_payload()`` emits plain JSON-serializable dicts; ``from_payload()``
rejects unknown keys and wrong-typed values, so a malformed HTTP body or
a stale stored payload fails loudly instead of half-decoding.  Graph and
result values reuse the PR 2 payload codecs
(:meth:`repro.core.result.BenchmarkResult.to_payload` and the graph
codecs in :mod:`repro.storage.artifacts`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.api.errors import ValidationError
from repro.api.specs import BenchmarkSpec
from repro.core.result import BenchmarkResult
from repro.sched.policy import PRIORITY_CLASSES
from repro.storage.artifacts import ArtifactError

#: version tag of this request/response vocabulary; served as the
#: ``/v1`` HTTP prefix and embedded in every response envelope
API_VERSION = "1"

#: the two graph-matching engines a request may name
ENGINES = ("native", "asp")

#: similarity-class pair choice policies (paper §3.4)
PAIR_POLICIES = ("smallest", "largest")

#: lifecycle states of an async job
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: kinds of work a job can carry
JOB_KINDS = ("run", "batch", "synth")


# -- field validation helpers -----------------------------------------------


def _fail(type_name: str, field: str, message: str) -> None:
    raise ValidationError(f"{type_name}.{field}: {message}")


def _check_str(
    type_name: str, field: str, value: object,
    optional: bool = False, non_empty: bool = False,
) -> None:
    if value is None:
        if not optional:
            _fail(type_name, field, "must be a string, not None")
        return
    if not isinstance(value, str):
        _fail(type_name, field, f"must be a string, got {type(value).__name__}")
    if non_empty and not value:
        _fail(type_name, field, "must be non-empty")


def _check_bool(
    type_name: str, field: str, value: object, optional: bool = False
) -> None:
    if value is None and optional:
        return
    if not isinstance(value, bool):
        _fail(type_name, field, f"must be a bool, got {type(value).__name__}")


def _check_int(
    type_name: str, field: str, value: object,
    optional: bool = False, minimum: Optional[int] = None,
) -> None:
    if value is None and optional:
        return
    if not isinstance(value, int) or isinstance(value, bool):
        _fail(type_name, field, f"must be an int, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        _fail(type_name, field, f"must be >= {minimum}, got {value}")


def _check_number(
    type_name: str, field: str, value: object,
    optional: bool = False,
    minimum: Optional[float] = None, maximum: Optional[float] = None,
) -> None:
    if value is None and optional:
        return
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(type_name, field, f"must be a number, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        _fail(type_name, field, f"must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        _fail(type_name, field, f"must be <= {maximum}, got {value}")


def _check_choice(
    type_name: str, field: str, value: object, choices: Tuple[str, ...]
) -> None:
    if value not in choices:
        _fail(type_name, field, f"must be one of {list(choices)}, got {value!r}")


def _decode_kwargs(cls, payload: object) -> Dict[str, object]:
    """Strictly map a JSON object onto ``cls``'s dataclass fields.

    Unknown keys are rejected (malformed payloads must not half-decode);
    missing keys fall back to the field defaults, and JSON arrays are
    coerced to the tuples the frozen types carry.
    """
    if not isinstance(payload, Mapping):
        raise ValidationError(
            f"{cls.__name__} payload must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - names)
    if unknown:
        raise ValidationError(
            f"{cls.__name__} payload has unknown keys: {unknown}"
        )
    kwargs: Dict[str, object] = {}
    for key, value in payload.items():
        kwargs[key] = tuple(value) if isinstance(value, list) else value
    return kwargs


def _construct(cls, kwargs: Dict[str, object]):
    """Build the dataclass, turning missing-field TypeErrors into
    ValidationErrors (field validation itself happens in __post_init__)."""
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ValidationError(f"{cls.__name__} payload: {exc}") from exc


def _validate_pipeline_fields(request: object, type_name: str) -> None:
    """The configuration fields RunRequest and BatchRequest share."""
    _check_str(type_name, "tool", request.tool, non_empty=True)
    _check_str(type_name, "profile", request.profile, optional=True)
    _check_str(type_name, "config_path", request.config_path, optional=True)
    _check_int(type_name, "trials", request.trials, optional=True, minimum=1)
    _check_bool(
        type_name, "filtergraphs", request.filtergraphs, optional=True
    )
    _check_choice(type_name, "engine", request.engine, ENGINES)
    _check_int(type_name, "seed", request.seed, optional=True)
    _check_number(
        type_name, "truncation_rate", request.truncation_rate,
        minimum=0.0, maximum=1.0,
    )
    _check_choice(
        type_name, "fg_pair_policy", request.fg_pair_policy, PAIR_POLICIES
    )
    _check_choice(
        type_name, "bg_pair_policy", request.bg_pair_policy, PAIR_POLICIES
    )
    _check_str(type_name, "store_path", request.store_path, optional=True)
    _check_bool(type_name, "resume", request.resume)
    _check_bool(type_name, "cache", request.cache)
    _check_number(type_name, "deadline", request.deadline, optional=True)
    if request.deadline is not None and request.deadline <= 0:
        _fail(type_name, "deadline",
              f"must be > 0 seconds, got {request.deadline}")
    if request.priority is not None:
        _check_choice(type_name, "priority", request.priority,
                      PRIORITY_CLASSES)


def _pipeline_payload(request: object) -> Dict[str, object]:
    return {
        "priority": request.priority,
        "tool": request.tool,
        "profile": request.profile,
        "config_path": request.config_path,
        "trials": request.trials,
        "filtergraphs": request.filtergraphs,
        "engine": request.engine,
        "seed": request.seed,
        "truncation_rate": request.truncation_rate,
        "fg_pair_policy": request.fg_pair_policy,
        "bg_pair_policy": request.bg_pair_policy,
        "store_path": request.store_path,
        "resume": request.resume,
        "cache": request.cache,
        "deadline": request.deadline,
    }


# -- requests ---------------------------------------------------------------


@dataclass(frozen=True)
class RunRequest:
    """One benchmark run, fully declared.

    The benchmark is named by exactly one of ``benchmark`` (a registered
    suite name) or ``spec`` (an inline
    :class:`~repro.api.specs.BenchmarkSpec`, validated and compiled on
    the fly without touching the registry).

    ``profile`` (optionally with ``config_path``) selects a config.ini
    tool profile exactly like ``provmark run --profile``; it overrides
    ``tool`` while ``trials``/``filtergraphs`` still apply on top.
    """

    benchmark: Optional[str] = None
    spec: Optional[BenchmarkSpec] = None
    tool: str = "spade"
    profile: Optional[str] = None
    config_path: Optional[str] = None
    trials: Optional[int] = None
    filtergraphs: Optional[bool] = None
    engine: str = "native"
    seed: Optional[int] = None
    truncation_rate: float = 0.0
    fg_pair_policy: str = "smallest"
    bg_pair_policy: str = "smallest"
    store_path: Optional[str] = None
    resume: bool = False
    cache: bool = True
    #: per-benchmark wall-clock budget, seconds (enforced at stage
    #: boundaries; an overrun is a permanent DeadlineError, never retried)
    deadline: Optional[float] = None
    #: requested scheduling class (None = the kind's default; ``urgent``
    #: requires the admin role when submitted through authenticated HTTP)
    priority: Optional[str] = None

    def __post_init__(self) -> None:
        if self.spec is not None and not isinstance(self.spec, BenchmarkSpec):
            _fail("RunRequest", "spec",
                  f"must be a BenchmarkSpec, got {type(self.spec).__name__}")
        if (self.benchmark is None) == (self.spec is None):
            _fail("RunRequest", "benchmark",
                  "exactly one of 'benchmark' or 'spec' must be set")
        _check_str("RunRequest", "benchmark", self.benchmark, optional=True,
                   non_empty=True)
        _validate_pipeline_fields(self, "RunRequest")

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "benchmark": self.benchmark,
            "spec": self.spec.to_payload() if self.spec is not None else None,
        }
        payload.update(_pipeline_payload(self))
        return payload

    @classmethod
    def from_payload(cls, payload: object) -> "RunRequest":
        kwargs = _decode_kwargs(cls, payload)
        if kwargs.get("spec") is not None:
            kwargs["spec"] = BenchmarkSpec.from_payload(
                kwargs["spec"], path="RunRequest.spec"
            )
        return _construct(cls, kwargs)


@dataclass(frozen=True)
class BatchRequest:
    """Many benchmark runs under one configuration.

    ``benchmarks`` names the runs explicitly; ``tags`` instead selects
    every registered benchmark carrying *all* the given tags (an open
    registry may match user-defined benchmarks too).  With neither set
    the batch is the full Table 2 suite.  ``max_workers`` fans
    independent benchmarks over a process pool exactly like
    ``provmark batch --max-workers``.
    """

    benchmarks: Optional[Tuple[str, ...]] = None
    tags: Optional[Tuple[str, ...]] = None
    max_workers: Optional[int] = None
    tool: str = "spade"
    profile: Optional[str] = None
    config_path: Optional[str] = None
    trials: Optional[int] = None
    filtergraphs: Optional[bool] = None
    engine: str = "native"
    seed: Optional[int] = None
    truncation_rate: float = 0.0
    fg_pair_policy: str = "smallest"
    bg_pair_policy: str = "smallest"
    store_path: Optional[str] = None
    resume: bool = False
    cache: bool = True
    #: per-benchmark wall-clock budget, seconds (each run in the batch
    #: gets its own budget; enforced at stage boundaries)
    deadline: Optional[float] = None
    #: requested scheduling class (None = the kind's default; ``urgent``
    #: requires the admin role when submitted through authenticated HTTP)
    priority: Optional[str] = None

    def __post_init__(self) -> None:
        if self.benchmarks is not None:
            if not isinstance(self.benchmarks, tuple):
                _fail("BatchRequest", "benchmarks",
                      "must be a tuple of names or None")
            for i, name in enumerate(self.benchmarks):
                _check_str(
                    "BatchRequest", f"benchmarks[{i}]", name, non_empty=True
                )
        if self.tags is not None:
            if self.benchmarks is not None:
                _fail("BatchRequest", "tags",
                      "cannot be combined with an explicit 'benchmarks' list")
            if not isinstance(self.tags, tuple) or not self.tags:
                _fail("BatchRequest", "tags",
                      "must be a non-empty tuple of tag names or None")
            for i, tag in enumerate(self.tags):
                _check_str("BatchRequest", f"tags[{i}]", tag, non_empty=True)
        _check_int(
            "BatchRequest", "max_workers", self.max_workers,
            optional=True, minimum=1,
        )
        _validate_pipeline_fields(self, "BatchRequest")

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "benchmarks": (
                list(self.benchmarks) if self.benchmarks is not None else None
            ),
            "tags": list(self.tags) if self.tags is not None else None,
            "max_workers": self.max_workers,
        }
        payload.update(_pipeline_payload(self))
        return payload

    @classmethod
    def from_payload(cls, payload: object) -> "BatchRequest":
        return _construct(cls, _decode_kwargs(cls, payload))


@dataclass(frozen=True)
class SynthConfig:
    """One coverage-guided benchmark-synthesis run, fully declared.

    ``seed`` determines everything: the same configuration always
    yields the same candidate specs, the same survivor digests, and the
    same coverage report.  ``count`` candidates are produced (a
    ``mutation_rate`` fraction by mutating builtin or earlier
    candidates, the rest generated fresh), evaluated through the staged
    pipeline under every tool in ``tools``, deduplicated by
    generalized-graph fingerprint, and kept only when they add
    coverage.  Survivors are registered into the suite registry (tagged
    ``synth`` plus ``tags``) unless ``register`` is false, and
    persisted into the ``store_path`` artifact store's ``spec`` stage
    when one is configured.
    """

    count: int = 20
    seed: int = 0
    tools: Tuple[str, ...] = ("spade", "opus", "camflow")
    tags: Tuple[str, ...] = ()
    max_ops: int = 6
    mutation_rate: float = 0.4
    name_prefix: str = "synth"
    trials: Optional[int] = None
    engine: str = "native"
    register: bool = True
    store_path: Optional[str] = None
    max_workers: Optional[int] = None
    #: requested scheduling class (None = the synth default, background)
    priority: Optional[str] = None

    #: generation bounds protecting the service from hostile configs
    MAX_COUNT = 256
    MAX_PROGRAM_OPS = 64

    def __post_init__(self) -> None:
        object.__setattr__(self, "tools", tuple(self.tools))
        object.__setattr__(self, "tags", tuple(self.tags))
        _check_int("SynthConfig", "count", self.count, minimum=1)
        if self.count > self.MAX_COUNT:
            _fail("SynthConfig", "count",
                  f"must be <= {self.MAX_COUNT}, got {self.count}")
        _check_int("SynthConfig", "seed", self.seed)
        if not self.tools:
            _fail("SynthConfig", "tools", "must name at least one tool")
        for i, tool in enumerate(self.tools):
            _check_str("SynthConfig", f"tools[{i}]", tool, non_empty=True)
        if len(set(self.tools)) != len(self.tools):
            _fail("SynthConfig", "tools", "must not repeat a tool")
        for i, tag in enumerate(self.tags):
            _check_str("SynthConfig", f"tags[{i}]", tag, non_empty=True)
        _check_int("SynthConfig", "max_ops", self.max_ops, minimum=2)
        if self.max_ops > self.MAX_PROGRAM_OPS:
            _fail("SynthConfig", "max_ops",
                  f"must be <= {self.MAX_PROGRAM_OPS}, got {self.max_ops}")
        _check_number("SynthConfig", "mutation_rate", self.mutation_rate,
                      minimum=0.0, maximum=1.0)
        _check_str("SynthConfig", "name_prefix", self.name_prefix,
                   non_empty=True)
        _check_int("SynthConfig", "trials", self.trials, optional=True,
                   minimum=1)
        _check_choice("SynthConfig", "engine", self.engine, ENGINES)
        _check_bool("SynthConfig", "register", self.register)
        _check_str("SynthConfig", "store_path", self.store_path,
                   optional=True)
        _check_int("SynthConfig", "max_workers", self.max_workers,
                   optional=True, minimum=1)
        if self.priority is not None:
            _check_choice("SynthConfig", "priority", self.priority,
                          PRIORITY_CLASSES)

    def to_payload(self) -> Dict[str, object]:
        return {
            "priority": self.priority,
            "count": self.count,
            "seed": self.seed,
            "tools": list(self.tools),
            "tags": list(self.tags),
            "max_ops": self.max_ops,
            "mutation_rate": self.mutation_rate,
            "name_prefix": self.name_prefix,
            "trials": self.trials,
            "engine": self.engine,
            "register": self.register,
            "store_path": self.store_path,
            "max_workers": self.max_workers,
        }

    @classmethod
    def from_payload(cls, payload: object) -> "SynthConfig":
        return _construct(cls, _decode_kwargs(cls, payload))


@dataclass(frozen=True)
class SynthCoverage:
    """Coverage-model growth over one synthesis run.

    ``*_before`` counts come from the registry's existing suite
    (motifs start at zero — they are observed by running candidates,
    not statically); ``*_after`` counts include every accepted
    survivor's keys.
    """

    syscalls_before: int = 0
    syscalls_after: int = 0
    arg_shapes_before: int = 0
    arg_shapes_after: int = 0
    motifs_before: int = 0
    motifs_after: int = 0
    new_syscalls: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "new_syscalls", tuple(self.new_syscalls))
        for name in ("syscalls_before", "syscalls_after",
                     "arg_shapes_before", "arg_shapes_after",
                     "motifs_before", "motifs_after"):
            _check_int("SynthCoverage", name, getattr(self, name), minimum=0)
        for i, call in enumerate(self.new_syscalls):
            _check_str("SynthCoverage", f"new_syscalls[{i}]", call,
                       non_empty=True)

    def to_payload(self) -> Dict[str, object]:
        return {
            "syscalls_before": self.syscalls_before,
            "syscalls_after": self.syscalls_after,
            "arg_shapes_before": self.arg_shapes_before,
            "arg_shapes_after": self.arg_shapes_after,
            "motifs_before": self.motifs_before,
            "motifs_after": self.motifs_after,
            "new_syscalls": list(self.new_syscalls),
        }

    @classmethod
    def from_payload(cls, payload: object) -> "SynthCoverage":
        return _construct(cls, _decode_kwargs(cls, payload))


@dataclass(frozen=True)
class SynthReport:
    """Everything one synthesis run produced.

    ``kept``/``digests``/``specs`` are aligned (one entry per
    survivor, candidate order).  For a fixed :class:`SynthConfig` the
    whole report minus nothing is deterministic — re-running the same
    seed yields byte-identical payloads.
    """

    seed: int
    requested: int
    generated: int
    mutated: int
    kept: Tuple[str, ...]
    digests: Tuple[str, ...]
    duplicates: int
    no_gain: int
    failed: int
    tools: Tuple[str, ...]
    coverage: SynthCoverage
    specs: Tuple[BenchmarkSpec, ...] = ()
    registered: bool = False
    persisted: int = 0
    api_version: str = API_VERSION

    def __post_init__(self) -> None:
        for name in ("kept", "digests", "tools", "specs"):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        _check_int("SynthReport", "seed", self.seed)
        for name in ("requested", "generated", "mutated", "duplicates",
                     "no_gain", "failed", "persisted"):
            _check_int("SynthReport", name, getattr(self, name), minimum=0)
        for i, name in enumerate(self.kept):
            _check_str("SynthReport", f"kept[{i}]", name, non_empty=True)
        for i, digest in enumerate(self.digests):
            _check_str("SynthReport", f"digests[{i}]", digest,
                       non_empty=True)
        if len(self.kept) != len(self.digests):
            _fail("SynthReport", "digests",
                  "must align one-to-one with 'kept'")
        if self.specs and len(self.specs) != len(self.kept):
            _fail("SynthReport", "specs",
                  "must align one-to-one with 'kept'")
        for i, tool in enumerate(self.tools):
            _check_str("SynthReport", f"tools[{i}]", tool, non_empty=True)
        if not isinstance(self.coverage, SynthCoverage):
            _fail("SynthReport", "coverage",
                  f"must be a SynthCoverage, got "
                  f"{type(self.coverage).__name__}")
        for i, spec in enumerate(self.specs):
            if not isinstance(spec, BenchmarkSpec):
                _fail("SynthReport", f"specs[{i}]",
                      f"must be a BenchmarkSpec, got {type(spec).__name__}")
        _check_bool("SynthReport", "registered", self.registered)
        if self.api_version != API_VERSION:
            _fail("SynthReport", "api_version",
                  f"must be {API_VERSION!r}, got {self.api_version!r}")

    def to_payload(self) -> Dict[str, object]:
        return {
            "api_version": self.api_version,
            "seed": self.seed,
            "requested": self.requested,
            "generated": self.generated,
            "mutated": self.mutated,
            "kept": list(self.kept),
            "digests": list(self.digests),
            "duplicates": self.duplicates,
            "no_gain": self.no_gain,
            "failed": self.failed,
            "tools": list(self.tools),
            "coverage": self.coverage.to_payload(),
            "specs": [spec.to_payload() for spec in self.specs],
            "registered": self.registered,
            "persisted": self.persisted,
        }

    @classmethod
    def from_payload(cls, payload: object) -> "SynthReport":
        kwargs = _decode_kwargs(cls, payload)
        if "coverage" not in kwargs:
            raise ValidationError("SynthReport payload is missing 'coverage'")
        kwargs["coverage"] = SynthCoverage.from_payload(kwargs["coverage"])
        specs = kwargs.get("specs") or ()
        if not isinstance(specs, tuple):
            raise ValidationError("SynthReport.specs payload must be an array")
        kwargs["specs"] = tuple(
            BenchmarkSpec.from_payload(spec, path=f"SynthReport.specs[{i}]")
            for i, spec in enumerate(specs)
        )
        return _construct(cls, kwargs)


@dataclass(frozen=True)
class ToolQuery:
    """Catalog query for registered capture backends.

    ``name=None`` lists every backend; a name restricts the answer to
    that backend (NotFoundError if it is not registered).
    """

    name: Optional[str] = None

    def __post_init__(self) -> None:
        _check_str("ToolQuery", "name", self.name, optional=True,
                   non_empty=True)

    def to_payload(self) -> Dict[str, object]:
        return {"name": self.name}

    @classmethod
    def from_payload(cls, payload: object) -> "ToolQuery":
        return _construct(cls, _decode_kwargs(cls, payload))


# -- responses --------------------------------------------------------------


@dataclass(frozen=True)
class ToolInfo:
    """One registered capture backend with its resolved profile."""

    name: str
    trials: int
    filtergraphs: bool
    output_format: str
    description: str = ""

    def __post_init__(self) -> None:
        _check_str("ToolInfo", "name", self.name, non_empty=True)
        _check_int("ToolInfo", "trials", self.trials, minimum=1)
        _check_bool("ToolInfo", "filtergraphs", self.filtergraphs)
        _check_str("ToolInfo", "output_format", self.output_format,
                   non_empty=True)
        _check_str("ToolInfo", "description", self.description)

    def to_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "trials": self.trials,
            "filtergraphs": self.filtergraphs,
            "output_format": self.output_format,
            "description": self.description,
        }

    @classmethod
    def from_payload(cls, payload: object) -> "ToolInfo":
        return _construct(cls, _decode_kwargs(cls, payload))


@dataclass(frozen=True)
class BenchmarkInfo:
    """One suite benchmark as the catalog endpoints describe it."""

    name: str
    group: int
    group_name: str
    description: str = ""
    tags: Tuple[str, ...] = ()
    builtin: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "tags", tuple(self.tags))
        _check_str("BenchmarkInfo", "name", self.name, non_empty=True)
        _check_int("BenchmarkInfo", "group", self.group, minimum=0)
        _check_str("BenchmarkInfo", "group_name", self.group_name)
        _check_str("BenchmarkInfo", "description", self.description)
        for i, tag in enumerate(self.tags):
            _check_str("BenchmarkInfo", f"tags[{i}]", tag, non_empty=True)
        _check_bool("BenchmarkInfo", "builtin", self.builtin)

    def to_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "group": self.group,
            "group_name": self.group_name,
            "description": self.description,
            "tags": list(self.tags),
            "builtin": self.builtin,
        }

    @classmethod
    def from_payload(cls, payload: object) -> "BenchmarkInfo":
        return _construct(cls, _decode_kwargs(cls, payload))


@dataclass(frozen=True)
class RunResponse:
    """The result envelope for one completed benchmark run.

    ``result`` is the full :class:`~repro.core.result.BenchmarkResult`
    — graphs, timings, solver and store counters — byte-identical to
    what the pre-redesign ``ProvMark.run_benchmark`` produced.
    """

    result: BenchmarkResult
    api_version: str = API_VERSION

    def __post_init__(self) -> None:
        if not isinstance(self.result, BenchmarkResult):
            _fail("RunResponse", "result",
                  f"must be a BenchmarkResult, got {type(self.result).__name__}")
        if self.api_version != API_VERSION:
            _fail("RunResponse", "api_version",
                  f"must be {API_VERSION!r}, got {self.api_version!r}")

    def to_payload(self) -> Dict[str, object]:
        return {
            "api_version": self.api_version,
            "result": self.result.to_payload(),
        }

    @classmethod
    def from_payload(cls, payload: object) -> "RunResponse":
        kwargs = _decode_kwargs(cls, payload)
        if "result" not in kwargs:
            raise ValidationError("RunResponse payload is missing 'result'")
        try:
            result = BenchmarkResult.from_payload(kwargs["result"])
        except (ArtifactError, AttributeError, IndexError, KeyError,
                TypeError, ValueError) as exc:
            raise ValidationError(
                f"RunResponse.result: malformed BenchmarkResult payload "
                f"({exc})"
            ) from exc
        kwargs["result"] = result
        return _construct(cls, kwargs)


@dataclass(frozen=True)
class JobStatus:
    """A point-in-time snapshot of an async job.

    ``result`` (run jobs) or ``results`` (batch jobs) is populated once
    ``state == "done"``; ``stage`` tracks the most recent
    stage-boundary :class:`~repro.core.stages.ProgressEvent` as
    ``"<benchmark>/<stage>:<status>"``.
    """

    job_id: str
    state: str
    kind: str = "run"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    total: int = 1
    completed: int = 0
    stage: str = ""
    error: str = ""
    #: delivery attempts so far (0 while queued; the execution plane
    #: increments it on every claim, including lease-recovery retries)
    attempts: int = 0
    #: correlation with the middleware layer: the authenticated client
    #: that submitted the job and the per-request id its access-log line
    #: carries, so spool records and structured logs join up ("" when
    #: the job was submitted outside the HTTP surface)
    client_id: str = ""
    request_id: str = ""
    #: the scheduling class admission stamped onto the job ("" for jobs
    #: from managers predating the scheduler)
    priority: str = ""
    #: seconds the job waited queued before its first claim (None while
    #: still waiting — per-class live waits are on ``/v1/metrics``)
    queue_wait: Optional[float] = None
    result: Optional[RunResponse] = None
    results: Optional[Tuple[RunResponse, ...]] = None
    #: synthesis jobs report a SynthReport instead of run responses
    report: Optional[SynthReport] = None
    api_version: str = API_VERSION

    def __post_init__(self) -> None:
        _check_str("JobStatus", "job_id", self.job_id, non_empty=True)
        _check_choice("JobStatus", "state", self.state, JOB_STATES)
        _check_choice("JobStatus", "kind", self.kind, JOB_KINDS)
        _check_number("JobStatus", "submitted_at", self.submitted_at,
                      minimum=0.0)
        _check_number("JobStatus", "started_at", self.started_at,
                      optional=True, minimum=0.0)
        _check_number("JobStatus", "finished_at", self.finished_at,
                      optional=True, minimum=0.0)
        _check_int("JobStatus", "total", self.total, minimum=0)
        _check_int("JobStatus", "completed", self.completed, minimum=0)
        _check_str("JobStatus", "stage", self.stage)
        _check_str("JobStatus", "error", self.error)
        _check_int("JobStatus", "attempts", self.attempts, minimum=0)
        _check_str("JobStatus", "client_id", self.client_id)
        _check_str("JobStatus", "request_id", self.request_id)
        if self.priority:
            _check_choice("JobStatus", "priority", self.priority,
                          PRIORITY_CLASSES)
        _check_number("JobStatus", "queue_wait", self.queue_wait,
                      optional=True, minimum=0.0)
        if self.result is not None and not isinstance(self.result, RunResponse):
            _fail("JobStatus", "result", "must be a RunResponse or None")
        if self.results is not None:
            if not isinstance(self.results, tuple) or any(
                not isinstance(r, RunResponse) for r in self.results
            ):
                _fail("JobStatus", "results",
                      "must be a tuple of RunResponse or None")
        if self.report is not None and not isinstance(self.report, SynthReport):
            _fail("JobStatus", "report", "must be a SynthReport or None")
        if self.api_version != API_VERSION:
            _fail("JobStatus", "api_version",
                  f"must be {API_VERSION!r}, got {self.api_version!r}")

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    def to_payload(self) -> Dict[str, object]:
        return {
            "api_version": self.api_version,
            "job_id": self.job_id,
            "state": self.state,
            "kind": self.kind,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "total": self.total,
            "completed": self.completed,
            "stage": self.stage,
            "error": self.error,
            "attempts": self.attempts,
            "client_id": self.client_id,
            "request_id": self.request_id,
            "priority": self.priority,
            "queue_wait": self.queue_wait,
            "result": self.result.to_payload() if self.result else None,
            "results": (
                [r.to_payload() for r in self.results]
                if self.results is not None else None
            ),
            "report": (
                self.report.to_payload() if self.report is not None else None
            ),
        }

    @classmethod
    def from_payload(cls, payload: object) -> "JobStatus":
        kwargs = _decode_kwargs(cls, payload)
        if kwargs.get("result") is not None:
            kwargs["result"] = RunResponse.from_payload(kwargs["result"])
        if kwargs.get("results") is not None:
            results = kwargs["results"]
            if not isinstance(results, tuple):
                raise ValidationError(
                    "JobStatus.results payload must be an array"
                )
            kwargs["results"] = tuple(
                RunResponse.from_payload(r) for r in results
            )
        if kwargs.get("report") is not None:
            kwargs["report"] = SynthReport.from_payload(kwargs["report"])
        return _construct(cls, kwargs)


@dataclass(frozen=True)
class ClusterNodeInfo:
    """One registered agent node as ``GET /v1/cluster`` describes it."""

    node_id: str
    host: str = ""
    workers: int = 0
    claims: int = 0
    last_seen_age: float = 0.0

    def __post_init__(self) -> None:
        _check_str("ClusterNodeInfo", "node_id", self.node_id, non_empty=True)
        _check_str("ClusterNodeInfo", "host", self.host)
        _check_int("ClusterNodeInfo", "workers", self.workers, minimum=0)
        _check_int("ClusterNodeInfo", "claims", self.claims, minimum=0)
        _check_number("ClusterNodeInfo", "last_seen_age", self.last_seen_age,
                      minimum=0.0)

    def to_payload(self) -> Dict[str, object]:
        return {
            "node_id": self.node_id,
            "host": self.host,
            "workers": self.workers,
            "claims": self.claims,
            "last_seen_age": self.last_seen_age,
        }

    @classmethod
    def from_payload(cls, payload: object) -> "ClusterNodeInfo":
        return _construct(cls, _decode_kwargs(cls, payload))


@dataclass(frozen=True)
class ClusterStatus:
    """The fleet snapshot behind ``GET /v1/cluster``.

    ``enabled=False`` (a single-host plane) carries zeroed counters and
    no nodes — the schema is stable either way, so dashboards never
    branch on key presence.
    """

    enabled: bool
    coordinator: str = ""
    draining: bool = False
    nodes: Tuple[ClusterNodeInfo, ...] = ()
    remote_workers: int = 0
    local_workers: int = 0
    claims_total: int = 0
    completions_total: int = 0
    events_seq: int = 0
    api_version: str = API_VERSION

    def __post_init__(self) -> None:
        _check_bool("ClusterStatus", "enabled", self.enabled)
        _check_str("ClusterStatus", "coordinator", self.coordinator)
        _check_bool("ClusterStatus", "draining", self.draining)
        if not isinstance(self.nodes, tuple) or any(
            not isinstance(n, ClusterNodeInfo) for n in self.nodes
        ):
            _fail("ClusterStatus", "nodes",
                  "must be a tuple of ClusterNodeInfo")
        _check_int("ClusterStatus", "remote_workers", self.remote_workers,
                   minimum=0)
        _check_int("ClusterStatus", "local_workers", self.local_workers,
                   minimum=0)
        _check_int("ClusterStatus", "claims_total", self.claims_total,
                   minimum=0)
        _check_int("ClusterStatus", "completions_total",
                   self.completions_total, minimum=0)
        _check_int("ClusterStatus", "events_seq", self.events_seq, minimum=0)
        if self.api_version != API_VERSION:
            _fail("ClusterStatus", "api_version",
                  f"must be {API_VERSION!r}, got {self.api_version!r}")

    def to_payload(self) -> Dict[str, object]:
        return {
            "api_version": self.api_version,
            "enabled": self.enabled,
            "coordinator": self.coordinator,
            "draining": self.draining,
            "nodes": [n.to_payload() for n in self.nodes],
            "remote_workers": self.remote_workers,
            "local_workers": self.local_workers,
            "claims_total": self.claims_total,
            "completions_total": self.completions_total,
            "events_seq": self.events_seq,
        }

    @classmethod
    def from_payload(cls, payload: object) -> "ClusterStatus":
        kwargs = _decode_kwargs(cls, payload)
        if "nodes" in kwargs:
            nodes = kwargs["nodes"]
            if not isinstance(nodes, tuple):
                raise ValidationError(
                    "ClusterStatus.nodes payload must be an array"
                )
            kwargs["nodes"] = tuple(
                ClusterNodeInfo.from_payload(n) for n in nodes
            )
        return _construct(cls, kwargs)
