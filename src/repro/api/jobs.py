"""Async job manager behind ``BenchmarkService.submit/poll/cancel``.

Jobs run on a shared :class:`~concurrent.futures.ThreadPoolExecutor`;
each job thread drives the same façade entry points a synchronous caller
would (``service.run`` / ``service.run_batch``), so results are
byte-identical either way.  A batch job with ``max_workers > 1`` fans
its benchmarks over ``run_many``'s process-pool workers — at the cost of
per-stage progress and mid-sweep cancellation, which need the serial
in-process path (stage events cannot cross process boundaries).

Progress flows the other way through the :class:`Pipeline`'s
stage-boundary hook: every :class:`~repro.core.stages.ProgressEvent` a
job's pipeline emits updates that job's record, and the same hook is the
cancellation point — ``cancel()`` marks the job, and the next stage
boundary raises :class:`JobCancelled` out of the pipeline, aborting the
run without killing the worker thread.  A queued job cancels
immediately; a cancelled running job stops at the next boundary.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Deque, Dict, List, Optional, Tuple

from repro.api.errors import (
    ApiError,
    BackpressureError,
    NotFoundError,
    ValidationError,
    render_error,
)
from repro.api.types import JobStatus, RunResponse
from repro.core.stages import ProgressEvent
from repro.sched.admission import AdmissionController
from repro.sched.policy import (
    DEFAULT_CLASS_BY_KIND,
    PRIORITY_CLASSES,
    summarize_class_stats,
    zeroed_class_stats,
)


class JobCancelled(Exception):
    """Raised inside a job's pipeline when its cancellation was requested."""


class _Job:
    """Mutable job record; snapshots go out as frozen JobStatus values."""

    def __init__(
        self,
        job_id: str,
        kind: str,
        total: int,
        client_id: str = "",
        request_id: str = "",
        priority: str = "",
    ) -> None:
        self.job_id = job_id
        self.kind = kind
        self.client_id = client_id
        self.request_id = request_id
        self.priority = priority
        self.state = "queued"
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.total = total
        self.completed = 0
        self.stage = ""
        self.error = ""
        self.attempts = 0
        self.result: Optional[RunResponse] = None
        self.results: Optional[Tuple[RunResponse, ...]] = None
        self.report = None  # SynthReport for synthesis jobs
        self.cancel_requested = threading.Event()
        self.future: Optional[Future] = None

    def snapshot(self) -> JobStatus:
        return JobStatus(
            job_id=self.job_id,
            state=self.state,
            kind=self.kind,
            submitted_at=self.submitted_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
            total=self.total,
            completed=self.completed,
            stage=self.stage,
            error=self.error,
            attempts=self.attempts,
            client_id=self.client_id,
            request_id=self.request_id,
            priority=self.priority,
            queue_wait=(
                max(0.0, self.started_at - self.submitted_at)
                if self.started_at is not None else None
            ),
            result=self.result,
            results=self.results,
            report=self.report,
        )


class JobManager:
    """Thread-pool execution of submitted run/batch requests."""

    #: finished job records retained for polling; the oldest are evicted
    #: beyond this, bounding a long-running server's memory (each record
    #: holds full result graphs)
    MAX_FINISHED_JOBS = 256

    def __init__(
        self,
        max_workers: int = 4,
        capacity: Optional[int] = None,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        self._max_workers = max(1, max_workers)
        #: queued+running jobs admitted before submit() answers 429
        #: (None = unbounded, the historical behavior)
        self._capacity = capacity
        #: optional scheduler gate (priority classes + quotas).  The
        #: thread pool itself stays FIFO — true priority claim order
        #: needs the durable fleet queue — but quotas are enforced and
        #: the class/queue-wait are stamped onto every snapshot, so the
        #: API contract is identical across both managers.
        self._admission = admission
        self._pool: Optional[ThreadPoolExecutor] = None
        self._jobs: Dict[str, _Job] = {}
        self._lock = threading.RLock()
        self._seq = itertools.count(1)
        self._closed = False
        self._evicted = 0
        #: recent job wall-clock durations, for the Retry-After estimate
        self._durations: Deque[float] = deque(maxlen=32)

    # -- public API ---------------------------------------------------------

    def submit(
        self,
        service,
        request,
        kind: str,
        total: int,
        client_id: str = "",
        request_id: str = "",
        role: str = "",
    ) -> JobStatus:
        """Queue a validated run/batch job (``kind``/``total`` resolved
        by the service, which already expanded the benchmark list).

        ``client_id``/``request_id`` are correlation-only: the HTTP
        layer stamps the auth-resolved client and per-request id onto
        the job record so access-log lines and job snapshots join up.
        ``role`` feeds the admission controller (when one is
        configured): explicit priorities validate against it and quotas
        resolve through it.
        """
        with self._lock:
            if self._closed:
                raise ValidationError(
                    "job manager is shut down; no new jobs accepted"
                )
            if self._admission is not None:
                priority = self._admission.admit(
                    request, kind, role, client_id,
                    active=(
                        (job.client_id, job.state)
                        for job in self._jobs.values()
                    ),
                    retry_after=self._retry_after_estimate,
                )
            else:
                explicit = getattr(request, "priority", None)
                priority = (
                    str(explicit) if explicit
                    else DEFAULT_CLASS_BY_KIND.get(kind, "batch")
                )
            if self._capacity is not None:
                active = sum(
                    1 for job in self._jobs.values()
                    if job.state in ("queued", "running")
                )
                if active >= self._capacity:
                    raise BackpressureError(
                        f"job queue is at capacity "
                        f"({active}/{self._capacity} active jobs); "
                        f"retry later",
                        retry_after=self._retry_after_estimate(),
                    )
            # The unguessable suffix is the only access control on job
            # ids (they are capability tokens over /v1/jobs), so use the
            # full 128 bits of uuid4, not a truncation.
            job_id = f"job-{next(self._seq):04d}-{uuid.uuid4().hex}"
            job = _Job(job_id, kind, total, client_id, request_id, priority)
            self._jobs[job_id] = job
            self._evict_finished()
            job.future = self._executor().submit(
                self._run_job, service, job, request
            )
            # snapshot under the lock: the worker thread may already be
            # flipping the job to "running"
            return job.snapshot()

    def poll(self, job_id: str) -> JobStatus:
        """A point-in-time status snapshot (NotFoundError for bad ids)."""
        with self._lock:
            return self._get(job_id).snapshot()

    def cancel(self, job_id: str) -> JobStatus:
        """Request cancellation; queued jobs stop now, running ones at
        the next stage boundary."""
        with self._lock:
            job = self._get(job_id)
            job.cancel_requested.set()
            if job.state == "queued" and job.future is not None:
                if job.future.cancel():
                    job.state = "cancelled"
                    job.finished_at = time.time()
            return job.snapshot()

    def jobs(self) -> List[JobStatus]:
        """Snapshots of every job this manager has seen, oldest first."""
        with self._lock:
            return [job.snapshot() for job in self._jobs.values()]

    def queue_stats(self) -> Dict[str, object]:
        """Queue depth and churn counters for ``GET /v1/health``.

        ``evicted`` is the total finished-job records dropped by the
        retention cap — the counter that explains why an old job id now
        404s instead of leaving the eviction silent.
        """
        with self._lock:
            pending = sum(
                1 for job in self._jobs.values() if job.state == "queued"
            )
            leased = sum(
                1 for job in self._jobs.values() if job.state == "running"
            )
            priorities = {name: 0 for name in PRIORITY_CLASSES}
            for job in self._jobs.values():
                if job.state == "queued":
                    cls = job.priority or DEFAULT_CLASS_BY_KIND.get(
                        job.kind, "batch"
                    )
                    if cls in priorities:
                        priorities[cls] += 1
            return {
                "pending": pending,
                "leased": leased,
                "active": pending + leased,
                "capacity": self._capacity,
                "evicted": self._evicted,
                "workers": self._max_workers,
                "priorities": priorities,
                "promotions": 0,
            }

    def sched_stats(self) -> Dict[str, object]:
        """Per-class depth/wait stats, shape-compatible with the fleet
        manager's (the thread pool never promotes, so ``promotions``
        stays 0)."""
        now = time.time()
        with self._lock:
            per: Dict[str, Dict[str, object]] = zeroed_class_stats()
            for job in self._jobs.values():
                cls = job.priority or DEFAULT_CLASS_BY_KIND.get(
                    job.kind, "batch"
                )
                row = per.get(cls)
                if row is None:
                    continue
                if job.state == "queued":
                    row["pending"] += 1
                    row["waits"].append(max(0.0, now - job.submitted_at))
                elif job.state == "running":
                    row["running"] += 1
                if job.started_at is not None:
                    row["waits"].append(
                        max(0.0, job.started_at - job.submitted_at)
                    )
        return {"classes": summarize_class_stats(per), "promotions": 0}

    def drain(self, timeout: float = 30.0) -> bool:
        """Graceful drain: refuse new jobs, wait out in-flight ones.

        Returns True when every queued/running job reached a terminal
        state within ``timeout`` seconds; False means jobs were still in
        flight when the budget ran out (the caller decides whether to
        escalate to ``shutdown(cancel=True)``).
        """
        with self._lock:
            self._closed = True
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            with self._lock:
                active = any(
                    job.state in ("queued", "running")
                    for job in self._jobs.values()
                )
            if not active:
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.05)

    def shutdown(self, wait: bool = True, cancel: bool = False) -> None:
        """Stop accepting jobs and release the worker pool.

        ``cancel=True`` additionally requests cancellation of every
        queued and running job first (running pipelines stop at their
        next stage boundary), so ``wait=True`` returns promptly instead
        of sitting out in-flight sweeps — the ``provmark serve``
        Ctrl-C path.  Job records stay pollable after shutdown.
        """
        with self._lock:
            self._closed = True
            if cancel:
                for job in self._jobs.values():
                    if job.state in ("queued", "running"):
                        job.cancel_requested.set()
                        if job.future is not None and job.future.cancel():
                            job.state = "cancelled"
                            job.finished_at = time.time()
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    # -- internals ----------------------------------------------------------

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="provmark-job",
            )
        return self._pool

    def _evict_finished(self) -> None:
        """Drop the oldest finished job records past the retention cap.

        Called under the lock.  In-flight (queued/running) jobs are
        never evicted, so a terminal ``poll`` can only miss after
        another ``MAX_FINISHED_JOBS`` jobs have since completed.
        """
        finished = [
            job_id for job_id, job in self._jobs.items()
            if job.state in ("done", "failed", "cancelled")
        ]
        for job_id in finished[:max(0, len(finished) - self.MAX_FINISHED_JOBS)]:
            del self._jobs[job_id]
            self._evicted += 1

    def _retry_after_estimate(self) -> float:
        """Suggested client wait when the queue is full (under the lock):
        roughly one recently observed job duration, bounded to [1, 60]."""
        if not self._durations:
            return 1.0
        typical = sorted(self._durations)[len(self._durations) // 2]
        return min(60.0, max(1.0, typical))

    def _get(self, job_id: str) -> _Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            # Deliberately does not list known ids: job ids are the only
            # access control on /v1/jobs, so enumerating them in a 404
            # body would let any client find and cancel others' jobs.
            raise NotFoundError(f"unknown job {job_id!r}") from None

    def _run_job(self, service, job: _Job, request) -> None:
        with self._lock:
            if job.cancel_requested.is_set():
                job.state = "cancelled"
                job.finished_at = time.time()
                return
            job.state = "running"
            job.started_at = time.time()
            job.attempts = 1  # the thread pool never retries

        def progress(event: ProgressEvent) -> None:
            if job.cancel_requested.is_set():
                raise JobCancelled(job.job_id)
            with self._lock:
                job.stage = f"{event.benchmark}/{event.stage}:{event.status}"

        def advance(response: RunResponse) -> None:
            with self._lock:
                job.completed += 1

        workers = getattr(request, "max_workers", None)
        try:
            if job.kind == "run":
                response = service.run(request, progress=progress)
                with self._lock:
                    job.result = response
                    job.completed = 1
                    job.state = "done"
            elif job.kind == "synth":
                # the engine's candidate pipelines emit the same
                # stage-boundary events, so progress (and cancellation)
                # work exactly like a serial batch
                report = service.synthesize(request, progress=progress)
                with self._lock:
                    job.report = report
                    job.completed = job.total
                    job.state = "done"
            elif workers is not None and workers > 1:
                # Honor the process-pool fan-out.  Stage boundaries are
                # not observable across worker processes, so progress
                # stays coarse and cancellation only applies before the
                # sweep starts.
                if job.cancel_requested.is_set():
                    raise JobCancelled(job.job_id)
                responses = service.run_batch(request)
                with self._lock:
                    job.results = responses
                    job.completed = len(responses)
                    job.state = "done"
            else:
                responses = service.run_batch(
                    request, progress=progress, on_response=advance
                )
                with self._lock:
                    job.results = responses
                    job.completed = len(responses)
                    job.state = "done"
        except JobCancelled:
            with self._lock:
                job.state = "cancelled"
        except ApiError as exc:
            with self._lock:
                job.state = "failed"
                job.error = render_error(exc)
        except Exception as exc:  # noqa: BLE001 — job threads must not die
            with self._lock:
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {render_error(exc)}"
        finally:
            with self._lock:
                job.finished_at = time.time()
                if job.started_at is not None:
                    self._durations.append(job.finished_at - job.started_at)
