"""Seeded, deterministic fault injection for the execution plane.

A :class:`FaultPlan` is a list of :class:`FaultSpec` rows describing
*when* to break *what*: kill the worker process at a stage boundary,
tear an artifact-store write in half, inject latency into a stage, or
silently stop heartbeating so the supervisor declares the worker lost.
Chaos tests wire a plan through
:class:`~repro.exec.supervisor.Supervisor` into every worker process and
then assert the recovery paths — lease requeue, capped backoff, the
store's corruption-tolerant reads — produce results byte-identical to a
fault-free run.

Determinism has two layers:

* **Occurrence counting.** Each spec names its firing site (kind, stage,
  benchmark, worker index) and fires on the ``at``-th matching event in
  a process.  Counters are plain integers — no clocks, no randomness —
  so the same plan against the same workload fires at the same point
  every time.
* **Seeded probability.** A spec with ``probability < 1`` flips a coin
  from a :class:`random.Random` keyed on ``(plan seed, worker, spec
  index)``; the same seed yields the same fault schedule.  There is no
  module-level RNG (the repo-wide unseeded-randomness guard applies
  here too).

Cross-process budgets: retried jobs land in *fresh* worker processes
whose occurrence counters start over, so a naively per-process fault
would re-fire on every retry and no job could ever survive
``max_attempts``.  ``times`` bounds the total firings fleet-wide: when
the plan is bound to a coordination directory (the supervisor binds it
to the spool), each firing must claim an ``O_EXCL`` token file, so a
``times=1`` kill happens exactly once no matter how many workers replay
the same occurrence point.

The layer is dependency-free (stdlib only); the hooks it implements are
called from the worker's stage-boundary progress callback and from
:meth:`repro.storage.artifacts.ArtifactStore.save` via the module's
``DEFAULT_FAULT_GATE`` seam.
"""

from __future__ import annotations

import os
import random
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: the fault kinds the execution plane knows how to inject
FAULT_KINDS = (
    "worker_kill",     # os._exit at a stage boundary (no cleanup, no excuses)
    "torn_write",      # artifact store publishes a truncated file, then fails
    "stage_latency",   # sleep at a stage boundary (deadline/lease pressure)
    "heartbeat_loss",  # worker keeps running but stops heartbeating
    "conn_drop",       # coordinator drops the connection before responding
    "partition",       # client loses all connectivity for `latency` seconds
)

#: exit code of a fault-killed worker (mirrors SIGKILL's 128+9)
KILLED_EXIT_CODE = 137


class FaultError(Exception):
    """A malformed fault spec or plan payload."""


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault, addressed by site and occurrence.

    ``stage``/``benchmark`` filter stage-boundary kinds (empty matches
    any); ``status`` picks the boundary edge (``started``/``finished``).
    ``worker`` restricts the fault to one worker slot index (``None``
    matches every worker).  The fault arms on the ``at``-th matching
    occurrence within a process and fires at most ``times`` times across
    the whole fleet (see :meth:`FaultPlan.bind`).
    """

    kind: str
    stage: str = ""
    benchmark: str = ""
    status: str = "started"
    worker: Optional[int] = None
    at: int = 1
    times: int = 1
    probability: float = 1.0
    #: seconds slept by ``stage_latency``; window of a ``partition``
    latency: float = 0.0
    #: bytes kept by ``torn_write`` (-1 = half the payload)
    keep_bytes: int = -1
    #: wire op filter for ``conn_drop``/``partition`` (empty matches any)
    op: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{list(FAULT_KINDS)}"
            )
        if self.status not in ("started", "finished", "failed"):
            raise FaultError(
                f"fault status must be a stage-boundary status, "
                f"got {self.status!r}"
            )
        if self.at < 1:
            raise FaultError(f"fault 'at' must be >= 1, got {self.at}")
        if self.times < 1:
            raise FaultError(f"fault 'times' must be >= 1, got {self.times}")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.latency < 0:
            raise FaultError(f"fault latency must be >= 0, got {self.latency}")

    def to_payload(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "stage": self.stage,
            "benchmark": self.benchmark,
            "status": self.status,
            "worker": self.worker,
            "at": self.at,
            "times": self.times,
            "probability": self.probability,
            "latency": self.latency,
            "keep_bytes": self.keep_bytes,
            "op": self.op,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "FaultSpec":
        if not isinstance(payload, Mapping):
            raise FaultError(
                f"fault spec payload must be an object, "
                f"got {type(payload).__name__}"
            )
        known = {
            "kind", "stage", "benchmark", "status", "worker",
            "at", "times", "probability", "latency", "keep_bytes", "op",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise FaultError(f"fault spec payload has unknown keys: {unknown}")
        if "kind" not in payload:
            raise FaultError("fault spec payload is missing 'kind'")
        try:
            return cls(**dict(payload))
        except TypeError as exc:
            raise FaultError(f"malformed fault spec payload: {exc}") from exc


class FaultPlan:
    """An armed set of fault specs, counting occurrences as they stream by.

    The plan is the *gate object* for every injection seam:

    * ``on_stage(benchmark, stage, status)`` — called from the worker's
      stage-boundary progress hook; fires ``stage_latency`` (sleep) and
      ``worker_kill`` (``os._exit``).
    * ``on_store_write(stage, path, blob)`` — called by
      :meth:`ArtifactStore.save` just before the atomic rename; a firing
      ``torn_write`` publishes a truncated payload under the *final*
      name (simulating a crash on a non-atomic filesystem) and raises
      ``OSError`` so the writer sees the failure.
    * ``on_attempt_start()`` / ``heartbeat_suppressed()`` — arm and
      query ``heartbeat_loss``; the worker's heartbeat thread checks the
      latter before each beat.

    A plan instance is process-local mutable state; build one per worker
    with :meth:`bind` (which fixes the worker index and the fleet-wide
    token directory).
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec] = (),
        seed: int = 0,
        worker: Optional[int] = None,
        token_dir: Optional[str] = None,
    ) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = int(seed)
        self.worker = worker
        self.token_dir = token_dir
        self._counts: Dict[int, int] = {}
        self._local_fired: Dict[int, int] = {}
        self._heartbeat_lost = False
        #: what fired, for test assertions: (kind, site, occurrence)
        self.fired: List[Tuple[str, str, int]] = []
        self._rngs: Dict[int, random.Random] = {}

    # -- construction --------------------------------------------------------

    def bind(self, worker: int, token_dir: Optional[str]) -> "FaultPlan":
        """A fresh per-process plan fixed to one worker slot index."""
        return FaultPlan(
            self.specs, seed=self.seed, worker=worker, token_dir=token_dir
        )

    def to_payload(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "specs": [spec.to_payload() for spec in self.specs],
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "FaultPlan":
        if not isinstance(payload, Mapping):
            raise FaultError(
                f"fault plan payload must be an object, "
                f"got {type(payload).__name__}"
            )
        specs = payload.get("specs", ())
        if not isinstance(specs, (list, tuple)):
            raise FaultError("fault plan 'specs' must be an array")
        seed = payload.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise FaultError("fault plan 'seed' must be an int")
        return cls([FaultSpec.from_payload(s) for s in specs], seed=seed)

    # -- injection hooks -----------------------------------------------------

    def on_stage(self, benchmark: str, stage: str, status: str) -> None:
        """Stage-boundary hook: may sleep, may never return (kill)."""
        for index, spec in enumerate(self.specs):
            if spec.kind not in ("worker_kill", "stage_latency"):
                continue
            if not self._site_matches(spec, benchmark, stage, status):
                continue
            if not self._arm(index, spec):
                continue
            site = f"{benchmark}/{stage}:{status}"
            if spec.kind == "stage_latency":
                self.fired.append(("stage_latency", site, spec.at))
                time.sleep(spec.latency)
            else:
                # No cleanup, no atexit, no flushing: this is the crash
                # the supervisor exists to survive.
                os._exit(KILLED_EXIT_CODE)

    def on_store_write(self, stage: str, path: object, blob: str) -> None:
        """Artifact-store hook: a firing spec tears the write.

        Publishes ``keep_bytes`` (default: half) of ``blob`` under the
        final ``path`` — no temp file, no rename, exactly the partial
        state a mid-write crash leaves on a non-atomic filesystem — and
        raises ``OSError`` so the caller's write fails after the
        corruption is already on disk.
        """
        for index, spec in enumerate(self.specs):
            if spec.kind != "torn_write":
                continue
            if spec.stage and spec.stage != stage:
                continue
            if spec.worker is not None and spec.worker != self.worker:
                continue
            if not self._arm(index, spec):
                continue
            keep = spec.keep_bytes if spec.keep_bytes >= 0 else len(blob) // 2
            target = Path(str(path))
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(blob[:keep])
            self.fired.append(("torn_write", f"{stage}:{target.name}", spec.at))
            raise OSError(
                f"injected torn write: published {keep}/{len(blob)} bytes "
                f"of stage {stage!r} artifact"
            )

    def on_attempt_start(self) -> None:
        """Arm ``heartbeat_loss`` at job-attempt starts."""
        for index, spec in enumerate(self.specs):
            if spec.kind != "heartbeat_loss":
                continue
            if spec.worker is not None and spec.worker != self.worker:
                continue
            if not self._arm(index, spec):
                continue
            self.fired.append(("heartbeat_loss", "attempt", spec.at))
            self._heartbeat_lost = True

    def heartbeat_suppressed(self) -> bool:
        """True once a ``heartbeat_loss`` fault has fired in this process."""
        return self._heartbeat_lost

    def on_cluster_op(self, op: str) -> bool:
        """Coordinator-side hook: True when a ``conn_drop`` fires on this
        wire op — the server then closes the connection *after* doing the
        work but before the response leaves, the exact window where the
        client's retry must rely on idempotency."""
        for index, spec in enumerate(self.specs):
            if spec.kind != "conn_drop":
                continue
            if spec.op and spec.op != op:
                continue
            if not self._arm(index, spec):
                continue
            self.fired.append(("conn_drop", op, spec.at))
            return True
        return False

    def partition_seconds(self, op: str) -> float:
        """Client-side hook: a firing ``partition`` returns its window in
        seconds (``latency``); the remote queue then refuses to connect
        for that long, feeding real backoff/retry machinery."""
        for index, spec in enumerate(self.specs):
            if spec.kind != "partition":
                continue
            if spec.op and spec.op != op:
                continue
            if spec.worker is not None and spec.worker != self.worker:
                continue
            if not self._arm(index, spec):
                continue
            self.fired.append(("partition", op, spec.at))
            return max(0.0, spec.latency)
        return 0.0

    # -- internals -----------------------------------------------------------

    def _site_matches(
        self, spec: FaultSpec, benchmark: str, stage: str, status: str
    ) -> bool:
        if spec.worker is not None and spec.worker != self.worker:
            return False
        if spec.stage and spec.stage != stage:
            return False
        if spec.benchmark and spec.benchmark != benchmark:
            return False
        return spec.status == status

    def _arm(self, index: int, spec: FaultSpec) -> bool:
        """Count one matching occurrence; True when the fault fires now."""
        count = self._counts.get(index, 0) + 1
        self._counts[index] = count
        if count != spec.at:
            return False
        if spec.probability < 1.0:
            if self._rng(index).random() >= spec.probability:
                return False
        return self._claim_token(index, spec)

    def _rng(self, index: int) -> random.Random:
        rng = self._rngs.get(index)
        if rng is None:
            material = f"{self.seed}:{self.worker}:{index}".encode()
            rng = random.Random(zlib.crc32(material))
            self._rngs[index] = rng
        return rng

    def _claim_token(self, index: int, spec: FaultSpec) -> bool:
        """Consume one of the spec's fleet-wide ``times`` firing tokens.

        Without a token directory the budget is process-local.  With one
        (the supervisor binds plans to the spool), ``O_EXCL`` file
        creation arbitrates between processes — including a retried
        worker replaying the exact occurrence that killed its
        predecessor, which is the case the budget exists for.
        """
        if self.token_dir is None:
            fired = self._local_fired.get(index, 0)
            if fired >= spec.times:
                return False
            self._local_fired[index] = fired + 1
            return True
        token_root = Path(self.token_dir)
        token_root.mkdir(parents=True, exist_ok=True)
        for shot in range(spec.times):
            token = token_root / f"fault-{index}-{shot}.fired"
            try:
                fd = os.open(str(token), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False


#: Process-wide fault gate adopted by newly created
#: :class:`~repro.storage.artifacts.ArtifactStore` instances (see the
#: ``DEFAULT_FAULT_GATE`` seam there).  The worker entry point installs
#: its bound plan here so every store the worker builds — however deep
#: in the driver stack — routes writes through the plan.  Always None in
#: production processes.
def install_store_gate(plan: Optional[FaultPlan]) -> None:
    """Point the artifact-store write seam at ``plan`` (None clears it)."""
    from repro.storage import artifacts

    artifacts.DEFAULT_FAULT_GATE = plan
