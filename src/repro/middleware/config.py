"""Assemble a middleware chain from a JSON config file.

``provmark serve --middleware config.json`` hands this module a config
like::

    {
      "metrics": true,
      "access_log": {"path": "access.log"},
      "auth": {
        "tokens": {
          "reader-token":  {"client": "dash",  "role": "read"},
          "ci-token":      {"client": "ci",    "role": "submit"},
          "op-token":      {"client": "ops",   "role": "admin"}
        },
        "allow_anonymous": null
      },
      "ratelimit": {
        "rate": 10, "burst": 20,
        "clients": {"ci": {"rate": 50, "burst": 100}},
        "roles": {"admin": {"rate": 100, "burst": 200},
                  "read": {"rate": 5, "burst": 10}}
      },
      "idempotency": {"store": "artifacts", "max_entries": 1024}
    }

and gets back a :class:`~repro.middleware.chain.MiddlewareChain` in the
canonical order — metrics outermost (so throttled and replayed requests
are still counted), then access log, auth (resolving ``client_id``),
rate limiting (keyed on that identity), and idempotency innermost (a
cache hit still flows through everything above it).  Sections are
independent: omit one and that layer is simply absent.  ``metrics``
defaults to on; everything else to off.  Unknown top-level keys are
rejected — a typoed section silently disabling auth would be a security
hole, not a convenience.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Mapping, Optional, Union

from repro.api.errors import ValidationError
from repro.middleware.auth import AuthMiddleware
from repro.middleware.chain import Middleware, MiddlewareChain
from repro.middleware.idempotency import IdempotencyMiddleware
from repro.middleware.logs import AccessLogMiddleware
from repro.middleware.metrics import MetricsMiddleware
from repro.middleware.ratelimit import RateLimitMiddleware

#: recognized top-level config sections, in chain order
SECTIONS = ("metrics", "access_log", "auth", "ratelimit", "idempotency")


def load_config(path: Union[str, Path]) -> Mapping[str, object]:
    """Read and minimally validate a middleware config file."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ValidationError(f"cannot read middleware config: {exc}") from exc
    try:
        config = json.loads(text)
    except ValueError as exc:
        raise ValidationError(
            f"middleware config {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(config, dict):
        raise ValidationError(
            f"middleware config {path} must be a JSON object, "
            f"got {type(config).__name__}"
        )
    return config


def build_chain(
    config: Mapping[str, object],
    base_dir: Optional[Union[str, Path]] = None,
) -> MiddlewareChain:
    """A chain from a parsed config (see the module example).

    Relative ``idempotency.store`` / ``access_log.path`` values resolve
    against ``base_dir`` (the config file's directory, typically).
    """
    unknown = sorted(set(config) - set(SECTIONS))
    if unknown:
        raise ValidationError(
            f"middleware config has unknown section(s) {unknown}; "
            f"expected a subset of {list(SECTIONS)}"
        )
    root = Path(base_dir) if base_dir is not None else Path(".")
    middlewares: List[Middleware] = []

    if config.get("metrics", True):
        middlewares.append(MetricsMiddleware())

    access = config.get("access_log", False)
    if access:
        if isinstance(access, Mapping) and access.get("path"):
            middlewares.append(
                AccessLogMiddleware(path=_resolve(root, str(access["path"])))
            )
        else:
            middlewares.append(AccessLogMiddleware())

    auth = config.get("auth")
    if auth is not None:
        if not isinstance(auth, Mapping):
            raise ValidationError("middleware config: 'auth' must be an object")
        tokens = auth.get("tokens")
        if not isinstance(tokens, Mapping) or not tokens:
            raise ValidationError(
                "middleware config: 'auth.tokens' must be a non-empty "
                "object mapping tokens to {client, role}"
            )
        allow_anonymous = auth.get("allow_anonymous")
        middlewares.append(
            AuthMiddleware(tokens, allow_anonymous=allow_anonymous)
        )

    ratelimit = config.get("ratelimit")
    if ratelimit is not None:
        if not isinstance(ratelimit, Mapping):
            raise ValidationError(
                "middleware config: 'ratelimit' must be an object"
            )
        middlewares.append(
            RateLimitMiddleware(
                rate=_number(ratelimit, "rate", 10.0, "ratelimit.rate"),
                burst=_number(ratelimit, "burst", 20.0, "ratelimit.burst"),
                quotas=ratelimit.get("clients"),
                roles=ratelimit.get("roles"),
            )
        )

    idempotency = config.get("idempotency")
    if idempotency is not None:
        if not isinstance(idempotency, Mapping) or not idempotency.get("store"):
            raise ValidationError(
                "middleware config: 'idempotency' needs a 'store' directory"
            )
        max_entries = idempotency.get("max_entries")
        if max_entries is not None and (
            not isinstance(max_entries, int) or isinstance(max_entries, bool)
        ):
            raise ValidationError(
                f"middleware config: 'idempotency.max_entries' must be an "
                f"integer, got {max_entries!r}"
            )
        middlewares.append(
            IdempotencyMiddleware(
                _resolve(root, str(idempotency["store"])),
                max_entries=max_entries,
            )
        )

    return MiddlewareChain(middlewares)


def _number(
    section: Mapping[str, object], key: str, default: float, where: str
) -> float:
    """A numeric config field, or a uniform ValidationError — a typoed
    ``{"rate": "fast"}`` must exit 2 like any bad config, not traceback."""
    value = section.get(key, default)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValidationError(
            f"middleware config: '{where}' must be a number, got {value!r}"
        )
    return float(value)


def _resolve(root: Path, value: str) -> Path:
    path = Path(value)
    return path if path.is_absolute() else root / path
