"""Server-Sent Events streaming of job progress.

``GET /v1/jobs/<id>/events`` answers a ``text/event-stream`` body that
follows one job to completion, replacing poll loops with a single
long-lived response.  The stream is built by *snapshot polling* on the
server: :func:`job_event_stream` repeatedly calls ``service.poll(id)``
and emits an event whenever the observable surface (state, completed
count, current stage) changes.  Polling the façade rather than hooking
the executor means the stream works identically over the in-process
``JobManager`` and the spool-backed ``FleetJobManager`` — both already
expose consistent snapshots, and a worker crash/retry simply shows up
as the next snapshot diff.

Wire format (https://html.spec.whatwg.org/multipage/server-sent-events):

* ``event: snapshot`` — first event, the job's full current status;
* ``event: progress`` — a change in ``(state, completed, stage)``,
  with the cheap fields only (no result graphs mid-run);
* ``event: heartbeat`` — comment-like keepalive when nothing changed
  for ``heartbeat`` seconds, so proxies do not reap the connection;
* terminal — named by the final state (``done`` / ``failed`` /
  ``cancelled``), carrying the full status payload including results,
  after which the stream ends and the connection closes.

Resume: every ``snapshot``/``progress``/terminal frame carries an
``id:`` line equal to the job's *completed count* at emit time — the
one monotonic, restart-stable measure of stream position (attempt
retries reset stages but never lower ``completed``).  Browsers and
spec-conforming clients echo the last seen id back as the
``Last-Event-ID`` header on reconnect; :func:`job_event_stream` accepts
it as ``last_event_id`` and replays one synthetic ``progress`` frame
per missed completion (reconstructed from the job record's current
counters) before the fresh snapshot, so a dropped connection never
loses a completion tick.  Heartbeats carry no id — per the SSE spec
they do not advance the client's stored position.

The generator is transport-free (yields ``bytes`` chunks) and takes
injectable ``clock``/``sleep``, so ordering and heartbeat timing are
unit-testable without sockets or real time.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Iterator, Optional, Tuple

#: job states after which no further events can occur
TERMINAL_STATES = ("done", "failed", "cancelled")

#: default seconds between service.poll() snapshots
DEFAULT_POLL_INTERVAL = 0.2

#: default seconds of silence before a keepalive event
DEFAULT_HEARTBEAT = 15.0

#: hard ceiling on one stream's lifetime — a forgotten client cannot
#: pin a handler thread forever (ends with a ``timeout`` frame)
SSE_MAX_STREAM_SECONDS = 3600.0


def format_event(
    name: str, payload: object, event_id: Optional[int] = None
) -> bytes:
    """One SSE frame: optional ``id:``, ``event:``, ``data:`` lines."""
    data = json.dumps(payload, sort_keys=True)
    lines = [f"event: {name}"]
    if event_id is not None:
        lines.append(f"id: {event_id}")
    for chunk in data.splitlines() or [""]:
        lines.append(f"data: {chunk}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def _progress_payload(status) -> dict:
    return {
        "job_id": status.job_id,
        "state": status.state,
        "kind": status.kind,
        "total": status.total,
        "completed": status.completed,
        "stage": status.stage,
        "attempts": status.attempts,
        "error": status.error,
    }


def job_event_stream(
    service,
    job_id: str,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    heartbeat: float = DEFAULT_HEARTBEAT,
    max_duration: Optional[float] = None,
    last_event_id: Optional[int] = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> Iterator[bytes]:
    """SSE frames following ``job_id`` until it reaches a terminal state
    (or ``max_duration`` elapses, ending with a ``timeout`` frame).

    ``last_event_id`` is the completed count the client last saw
    (``Last-Event-ID`` on reconnect); completions it missed while
    disconnected are replayed as synthetic ``progress`` frames before
    the fresh snapshot.

    The first ``service.poll`` happens *here*, not inside the returned
    generator, so a missing job raises ``NotFoundError`` while the HTTP
    layer can still answer a plain 404 instead of a broken stream.
    """
    first = service.poll(job_id)

    def _frames(status) -> Iterator[bytes]:
        started = clock()
        last_emit = started
        if last_event_id is not None:
            # Replay each completion tick the client missed.  Only the
            # counter is reconstructable from the record (per-tick
            # stages are gone), so replayed frames carry the current
            # state/stage with the historical completed count.
            for missed in range(
                max(0, last_event_id) + 1, status.completed + 1
            ):
                payload = _progress_payload(status)
                payload["completed"] = missed
                payload["replayed"] = True
                yield format_event("progress", payload, event_id=missed)
        yield format_event(
            "snapshot", status.to_payload(), event_id=status.completed
        )
        observed: Tuple[str, int, str] = (
            status.state, status.completed, status.stage
        )
        while status.state not in TERMINAL_STATES:
            if max_duration is not None and clock() - started >= max_duration:
                yield format_event(
                    "timeout", _progress_payload(status),
                    event_id=status.completed,
                )
                return
            sleep(poll_interval)
            status = service.poll(job_id)
            current = (status.state, status.completed, status.stage)
            if status.state in TERMINAL_STATES:
                break
            if current != observed:
                observed = current
                last_emit = clock()
                yield format_event(
                    "progress", _progress_payload(status),
                    event_id=status.completed,
                )
            elif clock() - last_emit >= heartbeat:
                last_emit = clock()
                yield format_event("heartbeat", {"job_id": job_id})
        # terminal frame is named by the state itself and carries the
        # full payload (results included) — nothing is needed after it
        yield format_event(
            status.state, status.to_payload(), event_id=status.completed
        )

    return _frames(first)
