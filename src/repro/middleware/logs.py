"""Structured JSON access logging.

``AccessLogMiddleware`` emits one JSON object per completed request —
success, short-circuit, or error — to a stream (stderr by default) or
an append-only file.  Each line carries the correlation fields the rest
of the system speaks: the per-request ``request_id`` (also stamped on
job records by the HTTP layer) and the auth-resolved ``client_id``, so
an access-log line, a ``/v1/metrics`` counter, and a job spool record
for the same submission all join on the same ids.

Log lines are written under a lock (handler threads share the stream)
and rendered with ``sort_keys`` so the field order is stable for
line-oriented tooling.  A failing write never breaks the request — the
chain swallows ``on_error`` exceptions, and ``_emit`` guards the
success path the same way.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Optional, TextIO, Union

from repro.api.errors import ApiError, render_error
from repro.middleware.chain import Middleware
from repro.middleware.context import RequestContext, Response


class AccessLogMiddleware(Middleware):
    """One structured JSON line per request (see module docs)."""

    name = "access_log"

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        path: Optional[Union[str, Path]] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._path = Path(path) if path is not None else None
        self._stream = stream
        self._clock = clock
        self._lock = threading.Lock()

    def on_request(self, ctx: RequestContext):
        ctx.state["access_log.start"] = time.perf_counter()
        return None

    def on_response(self, ctx: RequestContext, response: Response):
        record = self._base_record(ctx)
        record["status"] = response.status
        if response.streaming:
            record["streaming"] = True
        replay = response.headers.get("X-Idempotent-Replay")
        if replay:
            record["replay"] = replay
        self._emit(record)
        return None

    def on_error(self, ctx: RequestContext, error: ApiError) -> None:
        record = self._base_record(ctx)
        record["status"] = error.http_status
        record["error"] = type(error).__name__
        record["message"] = render_error(error)
        self._emit(record)

    def _base_record(self, ctx: RequestContext) -> Dict[str, object]:
        record: Dict[str, object] = {
            "ts": round(self._clock(), 6),
            "request_id": ctx.request_id,
            "client_id": ctx.client_id,
            "method": ctx.method,
            "path": ctx.path,
            "remote": ctx.remote_addr,
        }
        started = ctx.state.get("access_log.start")
        if isinstance(started, float):
            record["duration_ms"] = round(
                (time.perf_counter() - started) * 1000.0, 3
            )
        return record

    def _emit(self, record: Dict[str, object]) -> None:
        line = json.dumps(record, sort_keys=True)
        try:
            with self._lock:
                if self._path is not None:
                    with self._path.open("a") as handle:
                        handle.write(line + "\n")
                else:
                    stream = self._stream or sys.stderr
                    stream.write(line + "\n")
                    stream.flush()
        except OSError:  # a dead log target must not fail the request
            pass
