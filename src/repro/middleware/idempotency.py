"""Idempotent response caching over the artifact store.

``IdempotencyMiddleware`` makes retried submissions safe and repeated
deterministic work free, in two modes:

* **Header mode** — a client sends ``Idempotency-Key: <key>`` on a POST.
  The first response (any 2xx JSON) is persisted under ``(client, key,
  path)``; an identical retry replays it byte-for-byte — including a
  202 job envelope, so a retried submit returns the *same* job instead
  of spooling a duplicate.  A retry under the same key with a
  *different* body digest is a client bug and gets a 409
  :class:`~repro.api.errors.ConflictError`.

* **Auto mode** — deterministic runs need no cooperation: a ``POST
  /v1/runs`` whose body pins a ``seed`` is keyed by the canonical
  request body (minus the transport-only ``wait`` flag).  The first
  completed 200 response is cached; any later identical submission —
  even one asking for async execution — is answered ``200`` straight
  from the store, no job spooled, no pipeline run.

Responses live in the content-addressed
:class:`~repro.storage.artifacts.ArtifactStore` under the ``response``
stage, next to the pipeline's own artifacts: same atomic writes, same
corruption-is-a-miss behavior, same ``StoreStats`` counters (exposed as
the ``response_cache`` gauge in ``/v1/metrics``).  Replays carry an
``X-Idempotent-Replay: <mode>`` header so clients and tests can tell a
cache hit from fresh work.

``max_entries`` bounds the ``response`` stage with LRU eviction
(``provmark serve --response-cache-max N``): every replay touches its
artifact's mtime, and each save evicts the least-recently-used entries
past the cap.  Unbounded by default — the cache is tiny JSON envelopes
— but a long-lived appliance serving many distinct seeded runs can now
cap its disk footprint.  Evictions surface as ``evicted`` on the
``response_cache`` gauge.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Dict, Optional, Union

from repro.api.errors import ConflictError, ValidationError
from repro.middleware.chain import Middleware
from repro.middleware.context import RequestContext, Response
from repro.middleware.metrics import REPLAY_HEADER
from repro.storage.artifacts import ArtifactStore

#: artifact-store stage holding cached response envelopes
RESPONSE_STAGE = "response"

#: the request header opting a POST into header-mode idempotency
IDEMPOTENCY_HEADER = "idempotency-key"

#: the route whose deterministic requests are auto-cached
AUTO_CACHE_PATH = "/v1/runs"


class IdempotencyMiddleware(Middleware):
    """Replay cached responses for repeated POSTs (see module docs)."""

    name = "idempotency"

    def __init__(
        self,
        store: Union[ArtifactStore, str, Path],
        max_entries: Optional[int] = None,
    ) -> None:
        self.store = (
            store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        )
        if max_entries is not None and int(max_entries) < 1:
            raise ValidationError(
                f"idempotency: max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = int(max_entries) if max_entries is not None else None
        self._evicted = 0
        self._evict_lock = threading.Lock()

    def bind(self, chain) -> None:
        super().bind(chain)

        def cache_gauge() -> Dict[str, object]:
            row = self.store.stats.as_row()
            seen = row["hits"] + row["misses"]
            row["hit_ratio"] = round(row["hits"] / seen, 4) if seen else 0.0
            row["evicted"] = self._evicted
            row["max_entries"] = self.max_entries
            return row

        self.metrics.gauge_fn("response_cache", cache_gauge)

    # -- request side ------------------------------------------------------

    def on_request(self, ctx: RequestContext):
        if ctx.method != "POST":
            return None
        key = ctx.header(IDEMPOTENCY_HEADER)
        if key is not None and key.strip():
            return self._header_mode(ctx, key.strip())
        return self._auto_mode(ctx)

    def _header_mode(self, ctx: RequestContext, key: str):
        material = {
            "mode": "header",
            "client": ctx.client_id,
            "key": key,
            "path": ctx.path,
        }
        record = self.store.load(RESPONSE_STAGE, material)
        if isinstance(record, dict):
            if record.get("body_digest") != ctx.body_digest:
                raise ConflictError(
                    f"Idempotency-Key {key!r} was first used with a "
                    "different request body; idempotent retries must "
                    "repeat the original request exactly"
                )
            self._touch(material)
            return self._replay(record, "header")
        ctx.state["idempotency.material"] = material
        ctx.state["idempotency.mode"] = "header"
        return None

    def _auto_mode(self, ctx: RequestContext):
        if (ctx.path.rstrip("/") or "/") != AUTO_CACHE_PATH:
            return None
        body = ctx.body
        if not isinstance(body, dict) or body.get("seed") is None:
            return None  # unseeded runs are not deterministic; never cache
        material = {
            "mode": "auto",
            "path": AUTO_CACHE_PATH,
            "request": {k: v for k, v in body.items() if k != "wait"},
        }
        record = self.store.load(RESPONSE_STAGE, material)
        if isinstance(record, dict):
            self._touch(material)
            return self._replay(record, "auto")
        ctx.state["idempotency.material"] = material
        ctx.state["idempotency.mode"] = "auto"
        return None

    def _replay(self, record: Dict[str, object], mode: str) -> Response:
        self.metrics.inc("idempotency_replay_total", mode)
        return Response(
            status=int(record.get("status", 200)),
            payload=record.get("payload"),  # type: ignore[arg-type]
            headers={REPLAY_HEADER: mode},
        )

    # -- response side -----------------------------------------------------

    def on_response(
        self, ctx: RequestContext, response: Response
    ) -> Optional[Response]:
        material = ctx.state.get("idempotency.material")
        if material is None:
            return None
        mode = ctx.state.get("idempotency.mode")
        if response.streaming or not isinstance(response.payload, dict):
            return None
        # header mode caches any final 2xx (incl. the 202 job envelope —
        # the point is submit-once); auto mode only a completed run
        cacheable = (
            200 <= response.status < 300
            if mode == "header" else response.status == 200
        )
        if not cacheable:
            return None
        self.store.save(
            RESPONSE_STAGE,
            material,
            {
                "body_digest": ctx.body_digest,
                "status": response.status,
                "payload": response.payload,
            },
        )
        self.metrics.inc("idempotency_cached_total", str(mode))
        self._evict_lru()
        return None

    # -- LRU bound ---------------------------------------------------------

    def _touch(self, material: Dict[str, object]) -> None:
        """Bump a cache hit's mtime so eviction sees it as recently used."""
        if self.max_entries is None:
            return
        try:
            os.utime(self.store.path_for(RESPONSE_STAGE, material))
        except OSError:
            pass  # racing eviction/cleanup: the replay already succeeded

    def _evict_lru(self) -> None:
        """Drop least-recently-used cached responses past ``max_entries``."""
        if self.max_entries is None:
            return
        stage_dir = self.store.root / RESPONSE_STAGE
        with self._evict_lock:
            entries = []
            for path in stage_dir.glob("*.json"):
                try:
                    entries.append((path.stat().st_mtime, path))
                except OSError:
                    continue  # vanished mid-scan
            entries.sort()
            excess = len(entries) - self.max_entries
            for _, path in entries[:excess]:
                try:
                    path.unlink()
                except OSError:
                    continue  # concurrent eviction already took it
                self._evicted += 1
