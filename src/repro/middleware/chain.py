"""`Middleware` and `MiddlewareChain`: typed request interception.

The wags-style hook shape (SNIPPETS.md: ``on_call_tool`` over a typed
``MiddlewareContext``) adapted to this service's HTTP surface: each
:class:`Middleware` implements up to three hooks over a frozen
:class:`~repro.middleware.context.RequestContext`:

* ``on_request(ctx)`` — before the handler.  Return ``None`` to pass
  the request through unchanged, a *new* ``RequestContext`` to refine
  it (auth resolving the client), or a
  :class:`~repro.middleware.context.Response` to short-circuit the
  request entirely (an idempotency cache hit).  Raise an
  :class:`~repro.api.errors.ApiError` to reject it (401/403/429).
* ``on_response(ctx, response)`` — after the handler (or a
  short-circuit by a *later* middleware), in reverse registration
  order.  Return a ``Response`` to substitute, ``None`` to keep.
* ``on_error(ctx, error)`` — observation of a failed dispatch, reverse
  order, for every middleware whose ``on_request`` completed.  Purely
  observational: return values are ignored and exceptions are
  swallowed (a broken log line must not mask the real failure).

The chain is constructed once and shared by every HTTP handler thread,
so middlewares keep per-*client* state (rate-limit buckets) behind their
own locks and use ``ctx.state`` for per-*request* scratch.  Dispatch is
socket-free — a chain is unit-testable by passing any callable handler.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple, Union

from repro.api.errors import ApiError, render_error
from repro.middleware.context import RequestContext, Response

#: what an on_request hook may return
RequestHookResult = Union[None, RequestContext, Response]

#: the terminal request handler a chain wraps
Handler = Callable[[RequestContext], Response]


class MiddlewareError(Exception):
    """A middleware broke its contract (bad hook return type)."""


class Middleware:
    """Base middleware: every hook defaults to a no-op.

    Subclasses set ``name`` (used in metrics labels and config) and
    override the hooks they need.  :meth:`bind` is called once when the
    chain is assembled, handing the middleware the chain's shared
    :class:`~repro.middleware.metrics.MetricsRegistry`.
    """

    name = "middleware"

    def bind(self, chain: "MiddlewareChain") -> None:
        """Called once at chain assembly; default keeps the registry."""
        self.metrics = chain.metrics

    def on_request(self, ctx: RequestContext) -> RequestHookResult:
        return None

    def on_response(
        self, ctx: RequestContext, response: Response
    ) -> Optional[Response]:
        return None

    def on_error(self, ctx: RequestContext, error: ApiError) -> None:
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class MiddlewareChain:
    """An ordered middleware composition around one request handler.

    ``dispatch`` runs every ``on_request`` in order, the handler, then
    ``on_response`` in reverse for the middlewares that saw the request
    — the classic onion.  A middleware that short-circuits with a
    ``Response`` skips the handler *and* every later middleware, but the
    earlier (outer) ones still get ``on_response``, so metrics and
    access logs cover cache hits exactly like real handler work.

    Failures: any ``ApiError`` (from a hook or the handler) is shown to
    the outer middlewares' ``on_error`` and re-raised for the HTTP layer
    to render; an unexpected exception is observed as a wrapped 500 but
    re-raised unwrapped so the HTTP layer's fallback keeps its exact
    behavior.
    """

    def __init__(
        self,
        middlewares: Iterable[Middleware] = (),
        metrics: Optional[object] = None,
    ) -> None:
        # lazy import: metrics.py subclasses Middleware from here
        from repro.middleware.metrics import MetricsRegistry

        self.middlewares: Tuple[Middleware, ...] = tuple(middlewares)
        for mw in self.middlewares:
            if not isinstance(mw, Middleware):
                raise MiddlewareError(
                    f"chain entries must be Middleware instances, got "
                    f"{type(mw).__name__}"
                )
        #: one registry shared by every middleware and the /v1/metrics
        #: endpoint, whether or not a MetricsMiddleware is on the chain
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        for mw in self.middlewares:
            mw.bind(self)

    def __len__(self) -> int:
        return len(self.middlewares)

    def dispatch(self, ctx: RequestContext, handler: Handler) -> Response:
        """Run one request through the chain and the handler."""
        ran: List[Middleware] = []
        try:
            response: Optional[Response] = None
            for mw in self.middlewares:
                out = mw.on_request(ctx)
                if out is None:
                    ran.append(mw)
                    continue
                if isinstance(out, RequestContext):
                    ctx = out
                    ran.append(mw)
                    continue
                if isinstance(out, Response):
                    # short-circuit: this middleware answered; only the
                    # outer ones get the response hooks
                    response = out
                    break
                raise MiddlewareError(
                    f"{mw.name}.on_request returned "
                    f"{type(out).__name__}; expected None, "
                    "RequestContext, or Response"
                )
            if response is None:
                response = handler(ctx)
            if not isinstance(response, Response):
                raise MiddlewareError(
                    f"handler returned {type(response).__name__}; "
                    "expected Response"
                )
            for mw in reversed(ran):
                out = mw.on_response(ctx, response)
                if out is None:
                    continue
                if isinstance(out, Response):
                    response = out
                    continue
                raise MiddlewareError(
                    f"{mw.name}.on_response returned "
                    f"{type(out).__name__}; expected None or Response"
                )
            return response
        except ApiError as exc:
            self._observe_error(ran, ctx, exc)
            raise
        except Exception as exc:
            # surfaced to hooks as the 500 it will render as, re-raised
            # unwrapped so the HTTP layer's fallback path is unchanged
            wrapped = ApiError(
                f"internal error: {type(exc).__name__}: {render_error(exc)}"
            )
            self._observe_error(ran, ctx, wrapped)
            raise

    @staticmethod
    def _observe_error(
        ran: List[Middleware], ctx: RequestContext, error: ApiError
    ) -> None:
        for mw in reversed(ran):
            try:
                mw.on_error(ctx, error)
            except Exception:  # noqa: BLE001 — observation must not mask
                pass
