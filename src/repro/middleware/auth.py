"""Token-based authentication and role authorization.

``AuthMiddleware`` maps ``Authorization: Bearer <token>`` to a client
identity and role from a static token table (the kind of thing
``provmark serve --middleware config.json`` carries), then checks the
role against what the route demands:

* ``read``  — every GET (catalog, health, jobs, metrics, SSE);
* ``submit`` — submitting work (``POST /v1/runs``, ``POST
  /v1/benchmarks``) and cancelling jobs (``DELETE /v1/jobs/<id>``);
* ``admin`` — destructive or expensive surface: benchmark synthesis
  (``POST /v1/synth``) and catalog deletion
  (``DELETE /v1/benchmarks/<name>``).

Roles are ranked (``read < submit < admin``); a role covers every
requirement at or below its rank.  ``/v1/health`` never requires auth —
probes must work before anyone has a token.  A missing or unknown token
is a 401 (with ``WWW-Authenticate: Bearer``) unless the chain was built
with ``allow_anonymous`` set to a role, in which case tokenless requests
proceed as the ``anonymous`` client with that role; a *known* client
whose role does not reach the route's requirement is a 403.

On success the middleware returns a refined
:class:`~repro.middleware.context.RequestContext` carrying
``client_id``/``role``, which is what the rate limiter keys its buckets
on and what job records persist for correlation.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.api.errors import ForbiddenError, UnauthorizedError, ValidationError
from repro.middleware.chain import Middleware
from repro.middleware.context import ANONYMOUS, RequestContext
from repro.sched.policy import ADMIN_ONLY_CLASSES

#: role ranks: a client role covers requirements at or below its rank
ROLE_RANKS: Dict[str, int] = {"read": 0, "submit": 1, "admin": 2}

#: routes that never require a credential
EXEMPT_PATHS: Tuple[str, ...] = ("/v1/health",)


def required_role(method: str, path: str) -> Optional[str]:
    """The minimum role a route demands, or ``None`` for exempt routes."""
    clean = path.rstrip("/") or "/"
    if clean in EXEMPT_PATHS:
        return None
    if method == "GET":
        return "read"
    if method == "POST":
        if clean == "/v1/synth":
            return "admin"
        return "submit"
    if method == "DELETE":
        if clean.startswith("/v1/benchmarks/"):
            return "admin"
        return "submit"
    # unknown methods fall to the routing layer's 405; demand the floor
    return "read"


class AuthMiddleware(Middleware):
    """Resolve ``Authorization: Bearer`` tokens and enforce route roles.

    ``tokens`` maps each bearer token to ``{"client": <id>, "role":
    <read|submit|admin>}``.  ``allow_anonymous`` (``None`` by default —
    credentials required) names the role granted to tokenless requests.
    """

    name = "auth"

    def __init__(
        self,
        tokens: Mapping[str, Mapping[str, str]],
        allow_anonymous: Optional[str] = None,
    ) -> None:
        self._by_token: Dict[str, Tuple[str, str]] = {}
        for token, entry in tokens.items():
            if not token or not isinstance(token, str):
                raise ValidationError("auth: tokens must be non-empty strings")
            client = str(entry.get("client", "") or "")
            role = str(entry.get("role", "") or "")
            if not client:
                raise ValidationError(
                    f"auth: token entry for {client or '<unnamed>'!r} "
                    "is missing 'client'"
                )
            if role not in ROLE_RANKS:
                raise ValidationError(
                    f"auth: client {client!r} has unknown role {role!r} "
                    f"(expected one of {sorted(ROLE_RANKS)})"
                )
            self._by_token[token] = (client, role)
        if allow_anonymous is not None and allow_anonymous not in ROLE_RANKS:
            raise ValidationError(
                f"auth: allow_anonymous role {allow_anonymous!r} unknown "
                f"(expected one of {sorted(ROLE_RANKS)})"
            )
        self._anonymous_role = allow_anonymous

    def on_request(self, ctx: RequestContext):
        needed = required_role(ctx.method, ctx.path)
        if needed is None:
            return None
        client, role = self._resolve(ctx)
        if ROLE_RANKS[role] < ROLE_RANKS[needed]:
            self.metrics.inc("auth_denied_total", client)
            raise ForbiddenError(
                f"client {client!r} (role {role!r}) may not "
                f"{ctx.method} {ctx.path}: requires role {needed!r}"
            )
        # Admin-only scheduling classes are enforced at the edge too
        # (admission re-checks; failing here keeps the rejection in the
        # auth metrics and ahead of request parsing).  Unknown priority
        # strings are left for request validation's 400.
        requested = (
            ctx.body.get("priority") if isinstance(ctx.body, Mapping)
            else None
        )
        if (
            requested in ADMIN_ONLY_CLASSES
            and ROLE_RANKS[role] < ROLE_RANKS["admin"]
        ):
            self.metrics.inc("auth_priority_denied_total", client)
            raise ForbiddenError(
                f"client {client!r} (role {role!r}) may not request "
                f"priority {requested!r}: requires role 'admin'"
            )
        self.metrics.inc("auth_ok_total", client)
        return ctx.replace(client_id=client, role=role)

    def _resolve(self, ctx: RequestContext) -> Tuple[str, str]:
        header = ctx.header("authorization")
        if header is None:
            if self._anonymous_role is not None:
                return ANONYMOUS, self._anonymous_role
            self.metrics.inc("auth_denied_total", ANONYMOUS)
            raise UnauthorizedError(
                "missing Authorization header (expected 'Bearer <token>')"
            )
        scheme, _, token = header.partition(" ")
        if scheme.lower() != "bearer" or not token.strip():
            self.metrics.inc("auth_denied_total", ANONYMOUS)
            raise UnauthorizedError(
                "malformed Authorization header (expected 'Bearer <token>')"
            )
        entry = self._by_token.get(token.strip())
        if entry is None:
            self.metrics.inc("auth_denied_total", ANONYMOUS)
            raise UnauthorizedError("unknown bearer token")
        return entry
