"""`MetricsRegistry` and the request-metrics middleware.

One registry instance lives on the
:class:`~repro.middleware.chain.MiddlewareChain` and is shared by every
middleware and by ``GET /v1/metrics``.  Three instrument kinds, all
thread-safe behind one lock:

* **counters** — monotonically increasing, keyed by ``(name, label)``
  (``http_requests_total`` labeled ``"POST /v1/runs 200"``);
* **histograms** — fixed log-spaced latency buckets plus count / sum /
  min / max, so p50/p99-style questions are answerable without keeping
  samples;
* **gauges** — *callbacks* sampled at render time, which is how live
  state (job-queue depth, response-cache hit ratios) appears in
  ``/v1/metrics`` without anything pushing updates.  Solver and
  artifact-store counters are *harvested* from run-response payloads
  instead: the native solver's counters are per-thread, invisible to a
  gauge sampled from the metrics-render thread.

:class:`MetricsMiddleware` populates the request-level instruments:
per-route/method latency histograms and status counts, with job ``/v1``
path segments normalized (``/v1/jobs/{id}``) so unbounded id spaces do
not explode the label set.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.api.errors import ApiError
from repro.middleware.chain import Middleware

#: response header marking an idempotent replay (set by the idempotency
#: middleware, skipped by pipeline-counter harvesting)
REPLAY_HEADER = "X-Idempotent-Replay"

#: histogram bucket upper bounds, seconds (log-spaced; +Inf implicit)
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def route_label(path: str) -> str:
    """A bounded route template for a concrete request path.

    Ids and names embedded in paths are collapsed
    (``/v1/jobs/job-0001-ab12`` → ``/v1/jobs/{id}``) so metric labels
    stay a small fixed set however many jobs or benchmarks exist.
    """
    parts = path.rstrip("/").split("/")
    if len(parts) >= 4 and parts[1] == "v1":
        if parts[2] == "jobs":
            tail = "/events" if parts[-1] == "events" and len(parts) == 5 \
                else ""
            return f"/v1/jobs/{{id}}{tail}"
        if parts[2] == "benchmarks":
            return "/v1/benchmarks/{name}"
    return path.rstrip("/") or "/"


class _Histogram:
    __slots__ = ("counts", "count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.counts = [0] * (len(LATENCY_BUCKETS) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        for i, bound in enumerate(LATENCY_BUCKETS):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(
            self.minimum, value
        )
        self.maximum = value if self.maximum is None else max(
            self.maximum, value
        )

    def as_payload(self) -> Dict[str, object]:
        buckets: Dict[str, int] = {}
        for bound, count in zip(LATENCY_BUCKETS, self.counts):
            buckets[f"{bound:g}"] = count
        buckets["+Inf"] = self.counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Thread-safe counters, latency histograms, and gauge callbacks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Dict[str, int]] = {}
        self._histograms: Dict[str, Dict[str, _Histogram]] = {}
        self._gauges: Dict[str, Callable[[], object]] = {}

    # -- instruments ---------------------------------------------------------

    def inc(self, name: str, label: str = "", by: int = 1) -> None:
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[label] = series.get(label, 0) + by

    def observe(self, name: str, label: str, value: float) -> None:
        with self._lock:
            series = self._histograms.setdefault(name, {})
            histogram = series.get(label)
            if histogram is None:
                histogram = series[label] = _Histogram()
            histogram.observe(value)

    def gauge_fn(self, name: str, fn: Callable[[], object]) -> None:
        """Register a live-state sampler, called at every render."""
        with self._lock:
            self._gauges[name] = fn

    # -- read side -----------------------------------------------------------

    def counter_value(self, name: str, label: str = "") -> int:
        with self._lock:
            return self._counters.get(name, {}).get(label, 0)

    def counter_total(self, name: str) -> int:
        with self._lock:
            return sum(self._counters.get(name, {}).values())

    def render(self) -> Dict[str, object]:
        """The full registry as one JSON-serializable payload.

        Gauge callbacks run *outside* the lock (they may take other
        locks — the job manager's); a failing gauge renders as an error
        string instead of breaking the endpoint.
        """
        with self._lock:
            counters = {
                name: dict(series)
                for name, series in sorted(self._counters.items())
            }
            histograms = {
                name: {
                    label: histogram.as_payload()
                    for label, histogram in sorted(series.items())
                }
                for name, series in sorted(self._histograms.items())
            }
            gauge_fns = list(self._gauges.items())
        gauges: Dict[str, object] = {}
        for name, fn in sorted(gauge_fns):
            try:
                gauges[name] = fn()
            except Exception as exc:  # noqa: BLE001 — keep the endpoint up
                gauges[name] = f"error: {type(exc).__name__}: {exc}"
        return {
            "counters": counters,
            "histograms": histograms,
            "gauges": gauges,
        }


#: timings counters MetricsMiddleware lifts out of run-response payloads
_PIPELINE_COUNTERS: Tuple[str, ...] = (
    "solver_steps", "solver_searches", "matching_cache_hits",
    "cost_cache_hits", "decomposed_components", "store_hits",
    "store_misses",
)


class MetricsMiddleware(Middleware):
    """Outermost chain layer: latency + status counts for every request.

    Counts short-circuited responses (idempotent replays) and rejected
    requests (401/403/429 raised by inner middlewares) identically to
    handler-served ones — it sits first, so everything that reaches the
    service is on its books.  Successful synchronous run responses also
    have their ``result.timings`` solver/store counters folded into
    ``pipeline_*`` registry counters (the native solver's own counters
    are per-thread, so a render-time gauge could not see handler-thread
    work); replays are skipped so cached work is not double-counted.
    """

    name = "metrics"

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.metrics: Optional[MetricsRegistry] = None

    def on_request(self, ctx):
        ctx.state["metrics.start"] = self._clock()
        return None

    def on_response(self, ctx, response):
        self._record(ctx, response.status)
        if ctx.method == "POST" and response.status == 200:
            self._harvest_timings(response)
        return None

    def on_error(self, ctx, error: ApiError) -> None:
        self._record(ctx, error.http_status)
        self.metrics.inc("http_errors_total", type(error).__name__)

    def _record(self, ctx, status: int) -> None:
        label = f"{ctx.method} {route_label(ctx.path)}"
        self.metrics.inc("http_requests_total", f"{label} {status}")
        started = ctx.state.get("metrics.start")
        if isinstance(started, float):
            self.metrics.observe(
                "http_request_seconds", label, self._clock() - started
            )

    def _harvest_timings(self, response) -> None:
        if response.headers.get(REPLAY_HEADER):
            return
        payload = response.payload
        if not isinstance(payload, dict):
            return
        result = payload.get("result")
        if not isinstance(result, dict):
            return
        timings = result.get("timings")
        if not isinstance(timings, dict):
            return
        for key in _PIPELINE_COUNTERS:
            value = timings.get(key)
            if isinstance(value, int) and value > 0:
                self.metrics.inc(f"pipeline_{key}", by=value)


def register_service_gauges(registry: MetricsRegistry, service) -> None:
    """Wire the live-state ``jobs``/``sched`` gauges ``/v1/metrics``
    reports.

    Samples the job manager's ``queue_stats()`` (depth, capacity,
    evicted, per-class pending, autoscale counters — the execution
    plane's health surface) plus job counts by state, and — when the
    manager speaks the scheduler surface — a ``sched`` gauge of
    per-class pending/running/queue-wait quantiles with the monotonic
    aging-promotion count doubled as ``sched_promotions_total``.
    Registered by ``make_server`` so the endpoint is live with or
    without any middleware configured.
    """

    def jobs_gauge() -> Dict[str, object]:
        states: Dict[str, int] = {}
        snapshots: List = service.jobs.jobs()
        for job in snapshots:
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "total": len(snapshots),
            "states": states,
            "queue": service.jobs.queue_stats(),
        }

    registry.gauge_fn("jobs", jobs_gauge)

    sched_stats = getattr(service.jobs, "sched_stats", None)
    if callable(sched_stats):
        registry.gauge_fn("sched", sched_stats)
        registry.gauge_fn(
            "sched_promotions_total",
            lambda: sched_stats().get("promotions", 0),
        )

    cluster_stats = getattr(service.jobs, "cluster_stats", None)
    cluster_summary = getattr(service.jobs, "cluster_summary", None)
    if callable(cluster_stats) and callable(cluster_summary):
        def cluster_gauge() -> Dict[str, object]:
            """Full fleet payload, per-node rows included."""
            stats = cluster_stats()
            if stats is None:
                return {"enabled": False, "nodes": []}
            return {
                "enabled": True,
                "address": stats.get("address"),
                "draining": stats.get("draining"),
                "remote_workers": stats.get("remote_workers"),
                "counters": stats.get("counters"),
                "nodes": stats.get("nodes"),
            }

        registry.gauge_fn("cluster", cluster_gauge)
        registry.gauge_fn(
            "cluster_nodes",
            lambda: cluster_summary().get("nodes", 0),
        )
        registry.gauge_fn(
            "cluster_claims_total",
            lambda: (
                ((cluster_stats() or {}).get("counters") or {})
                .get("claims_total", 0)
            ),
        )
