"""`repro.middleware`: typed request interception for the HTTP service.

A :class:`MiddlewareChain` of :class:`Middleware` hooks dispatched by
``repro.api.http`` around every façade call — auth, rate limiting,
idempotent response caching, metrics, access logs — plus the SSE job
event stream.  Socket-free and unit-testable; assembled from JSON config
by :func:`build_chain` for ``provmark serve --middleware``.
"""

from repro.middleware.auth import AuthMiddleware, required_role
from repro.middleware.chain import Middleware, MiddlewareChain, MiddlewareError
from repro.middleware.config import build_chain, load_config
from repro.middleware.context import (
    ANONYMOUS,
    SSE_CONTENT_TYPE,
    RequestContext,
    Response,
    body_digest,
    new_request_id,
)
from repro.middleware.idempotency import IdempotencyMiddleware
from repro.middleware.logs import AccessLogMiddleware
from repro.middleware.metrics import (
    REPLAY_HEADER,
    MetricsMiddleware,
    MetricsRegistry,
    register_service_gauges,
    route_label,
)
from repro.middleware.ratelimit import RateLimitMiddleware
from repro.middleware.sse import format_event, job_event_stream

__all__ = [
    "ANONYMOUS",
    "REPLAY_HEADER",
    "SSE_CONTENT_TYPE",
    "AccessLogMiddleware",
    "AuthMiddleware",
    "IdempotencyMiddleware",
    "Middleware",
    "MiddlewareChain",
    "MiddlewareError",
    "MetricsMiddleware",
    "MetricsRegistry",
    "RateLimitMiddleware",
    "RequestContext",
    "Response",
    "body_digest",
    "build_chain",
    "format_event",
    "job_event_stream",
    "load_config",
    "new_request_id",
    "register_service_gauges",
    "required_role",
    "route_label",
]
