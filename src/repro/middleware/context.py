"""The typed request/response vocabulary of the middleware chain.

A :class:`RequestContext` is the frozen, middleware-facing view of one
HTTP request: method, path, normalized headers, the parsed JSON body and
its raw-byte digest, the resolved client identity, and a per-request
correlation id.  Middlewares never see sockets or handler objects — the
HTTP layer builds one context per request, and hooks that *refine* the
request (auth resolving ``client_id``/``role``) return a replacement via
:meth:`RequestContext.replace` instead of mutating.

The one deliberately mutable field is ``state``: a per-request scratch
dict the chain threads through every hook, so a middleware can leave a
note for its own ``on_response`` (the idempotency layer stashes the
cache key it decided on during ``on_request`` there) without smuggling
request-scoped state into middleware instances, which are shared across
handler threads.

A :class:`Response` is what handlers and short-circuiting middlewares
produce: a status, a JSON payload (or a byte-chunk iterator for
streaming responses — the SSE endpoint), and extra headers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple, Union

#: content type of streaming (Server-Sent Events) responses
SSE_CONTENT_TYPE = "text/event-stream"

#: the client id of requests no auth layer has resolved
ANONYMOUS = "anonymous"


def new_request_id() -> str:
    """An unguessable per-request correlation id (``req-<hex>``)."""
    return f"req-{uuid.uuid4().hex[:16]}"


def body_digest(raw: bytes) -> str:
    """SHA-256 hex digest of the raw request body ("" for no body)."""
    return hashlib.sha256(raw).hexdigest() if raw else ""


@dataclass(frozen=True)
class RequestContext:
    """One request as the middleware chain sees it.

    ``headers`` is a tuple of lower-cased ``(name, value)`` pairs —
    hashable and frozen like the rest; :meth:`header` does the lookup.
    ``client_id``/``role`` start anonymous/empty until an auth
    middleware replaces the context.  ``deadline`` is an absolute
    ``time.monotonic()`` instant when the client sent a
    ``Request-Timeout`` header, else ``None``.
    """

    method: str
    path: str
    query: str = ""
    headers: Tuple[Tuple[str, str], ...] = ()
    #: parsed JSON body (None for bodyless or non-JSON requests)
    body: Optional[Mapping[str, object]] = None
    #: SHA-256 of the raw body bytes ("" when there is no body)
    body_digest: str = ""
    client_id: str = ANONYMOUS
    role: str = ""
    request_id: str = field(default_factory=new_request_id)
    received_at: float = field(default_factory=time.time)
    remote_addr: str = ""
    deadline: Optional[float] = None
    #: per-request scratch shared by all hooks of one dispatch; never
    #: part of equality/hash semantics (mutable by design)
    state: Dict[str, object] = field(
        default_factory=dict, compare=False, repr=False
    )

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Case-insensitive header lookup (first match wins)."""
        wanted = name.lower()
        for key, value in self.headers:
            if key == wanted:
                return value
        return default

    def replace(self, **changes: object) -> "RequestContext":
        """A copy with the given fields replaced (``state`` is shared)."""
        return dataclasses.replace(self, **changes)

    @staticmethod
    def normalize_headers(
        raw: Union[Mapping[str, str], Iterable[Tuple[str, str]]]
    ) -> Tuple[Tuple[str, str], ...]:
        """Lower-case and freeze headers (a mapping or ``(k, v)`` pairs —
        ``email.message.Message.items()`` included)."""
        items = raw.items() if hasattr(raw, "items") else raw
        return tuple((k.lower(), str(v)) for k, v in items)


@dataclass
class Response:
    """What one dispatched request answers.

    ``payload`` is the JSON body for ordinary responses; ``stream`` (an
    iterator of byte chunks, each written and flushed individually)
    replaces it for streaming responses, with ``content_type`` switched
    to ``text/event-stream``.  Exactly one of the two should be set.
    """

    status: int = 200
    payload: Optional[Dict[str, object]] = None
    headers: Dict[str, str] = field(default_factory=dict)
    stream: Optional[Iterator[bytes]] = None
    content_type: str = "application/json"

    @property
    def streaming(self) -> bool:
        return self.stream is not None
