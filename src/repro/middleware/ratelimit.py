"""Per-client token-bucket rate limiting.

``RateLimitMiddleware`` keeps one token bucket per ``client_id`` (so it
sits *after* auth on the chain, keying on resolved identities rather
than whatever the socket claims).  Each bucket refills continuously at
``rate`` tokens/second up to ``burst``; a request costs one token, and
an empty bucket raises
:class:`~repro.api.errors.RateLimitError` — rendered as ``429`` with a
``Retry-After`` that tells the client exactly when the next token lands.

This is the *admission* layer, in front of the execution plane's own
queue-capacity backpressure (PR 6): a single client hammering the API
is throttled here, per identity, before it can fill the shared queue
and starve everyone else's submissions.

``quotas`` overrides ``(rate, burst)`` for specific clients — paying
tenants get bigger buckets, the anonymous role a smaller one — and
``roles`` overrides them for whole roles (``admin`` > ``submit`` >
``read``), resolved *after* client overrides: the most specific quota
wins (client > role > default).  Buckets are still keyed per client, so
two ``submit`` clients sharing a role quota each get their own bucket
at that size.  The clock is injectable so quota exhaustion and refill
are unit-testable without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.api.errors import RateLimitError, ValidationError
from repro.middleware.chain import Middleware
from repro.middleware.context import RequestContext

#: routes rate limiting never throttles (probes and metric scrapes)
EXEMPT_PATHS: Tuple[str, ...] = ("/v1/health", "/v1/metrics")


class _Bucket:
    __slots__ = ("tokens", "updated_at")

    def __init__(self, tokens: float, updated_at: float) -> None:
        self.tokens = tokens
        self.updated_at = updated_at


class RateLimitMiddleware(Middleware):
    """Token-bucket admission control keyed on the resolved client id."""

    name = "ratelimit"

    def __init__(
        self,
        rate: float = 10.0,
        burst: float = 20.0,
        quotas: Optional[Mapping[str, Mapping[str, float]]] = None,
        roles: Optional[Mapping[str, Mapping[str, float]]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._default = self._check_quota("default", rate, burst)
        self._quotas: Dict[str, Tuple[float, float]] = {}
        for client, entry in (quotas or {}).items():
            self._quotas[str(client)] = self._check_quota(
                client,
                self._entry_number(client, entry, "rate", rate),
                self._entry_number(client, entry, "burst", burst),
            )
        self._roles: Dict[str, Tuple[float, float]] = {}
        for role, entry in (roles or {}).items():
            self._roles[str(role)] = self._check_quota(
                f"role {role}",
                self._entry_number(f"role {role}", entry, "rate", rate),
                self._entry_number(f"role {role}", entry, "burst", burst),
            )
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, _Bucket] = {}

    def _resolve_quota(self, client_id: str, role: str) -> Tuple[float, float]:
        """Most-specific wins: client override → role override → default."""
        if client_id in self._quotas:
            return self._quotas[client_id]
        if role and role in self._roles:
            return self._roles[role]
        return self._default

    @staticmethod
    def _entry_number(
        who: str, entry: object, key: str, default: float
    ) -> float:
        """One numeric quota field, uniformly validated — a quota entry
        like ``{"rate": "fast"}`` must fail as a ValidationError (config
        error, exit 2), never as a bare ValueError traceback."""
        if not isinstance(entry, Mapping):
            raise ValidationError(
                f"ratelimit: quota for {who!r} must be an object with "
                f"'rate'/'burst', got {type(entry).__name__}"
            )
        value = entry.get(key, default)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValidationError(
                f"ratelimit: quota for {who!r} has non-numeric "
                f"{key}={value!r}"
            )
        return float(value)

    @staticmethod
    def _check_quota(
        client: str, rate: float, burst: float
    ) -> Tuple[float, float]:
        if rate <= 0 or burst < 1:
            raise ValidationError(
                f"ratelimit: quota for {client!r} needs rate > 0 and "
                f"burst >= 1, got rate={rate}, burst={burst}"
            )
        return (float(rate), float(burst))

    def on_request(self, ctx: RequestContext):
        if (ctx.path.rstrip("/") or "/") in EXEMPT_PATHS:
            return None
        rate, burst = self._resolve_quota(ctx.client_id, ctx.role)
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(ctx.client_id)
            if bucket is None:
                bucket = self._buckets[ctx.client_id] = _Bucket(burst, now)
            else:
                elapsed = max(0.0, now - bucket.updated_at)
                bucket.tokens = min(burst, bucket.tokens + elapsed * rate)
                bucket.updated_at = now
            if bucket.tokens >= 1.0:
                bucket.tokens -= 1.0
                return None
            wait = (1.0 - bucket.tokens) / rate
        self.metrics.inc("ratelimit_throttled_total", ctx.client_id)
        raise RateLimitError(
            f"client {ctx.client_id!r} exceeded its request quota "
            f"({rate:g}/s, burst {burst:g}); retry in {wait:.2f}s",
            retry_after=wait,
        )

    def tokens_remaining(self, client_id: str, role: str = "") -> float:
        """The bucket level right now (tests and diagnostics)."""
        rate, burst = self._resolve_quota(client_id, role)
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(client_id)
            if bucket is None:
                return burst
            elapsed = max(0.0, now - bucket.updated_at)
            return min(burst, bucket.tokens + elapsed * rate)
