"""RemoteQueue: the coordinator, duck-typed as a local ``JobQueue``.

A worker process on an agent host runs the unmodified
:func:`~repro.exec.worker.worker_main` loop; the only difference is
that its queue object speaks TCP.  This client implements exactly the
queue surface the worker and its supervisor use — ``claim`` /
``heartbeat`` / ``update_progress`` / ``complete`` / ``fail`` /
``retry_or_fail`` / ``mark_cancelled`` / ``cancel_requested`` /
``recover`` / ``evict_finished`` — plus the node lifecycle verbs the
agent itself needs (``register`` / ``deregister`` / node heartbeat).

Connection loss is survived, not surfaced: every call retries over a
fresh connection under capped exponential backoff before giving up
with :class:`~repro.cluster.protocol.ClusterUnavailableError`.  That
makes **idempotency** the load-bearing property — a ``complete`` whose
response was lost to a partition is simply resent, and the
coordinator's queue only charges the fair-share ledger on the first
``done`` transition, so the retry can never double-bill.  Typed errors
in a *received* response (``NotFoundError``, ``ValidationError``...)
are never retried: they are answers, not failures.

``partition`` fault specs inject connection loss client-side: a firing
spec opens a deterministic no-connectivity window during which every
call raises ``ConnectionError`` into the same retry path real
partitions exercise.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster import protocol
from repro.cluster.protocol import (
    ClusterUnavailableError,
    FrameError,
    encode_request,
    recv_frame,
    send_frame,
)
from repro.faults import FaultPlan

#: reconnect schedule: capped exponential backoff over this many tries
DEFAULT_MAX_RETRIES = 8
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 1.0

#: per-operation socket timeout (a wedged coordinator looks like loss)
DEFAULT_TIMEOUT = 10.0


class RemoteQueue:
    """One node's client connection to the cluster coordinator."""

    def __init__(
        self,
        host: str,
        port: int,
        node_id: str,
        auth: str = "",
        timeout: float = DEFAULT_TIMEOUT,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.node_id = node_id
        self.auth = auth
        self.timeout = timeout
        self.max_retries = max(0, int(max_retries))
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.faults = faults
        self._sock: Optional[socket.socket] = None
        # one socket, many threads (worker main loop + heartbeat thread):
        # calls serialize, which also keeps request/response pairing trivial
        self._lock = threading.Lock()
        self._partition_until = 0.0
        #: transport-level reconnects performed (for tests/telemetry)
        self.reconnects = 0

    # -- construction over process boundaries --------------------------------

    def to_payload(self) -> Dict[str, object]:
        """A picklable/JSON description a worker process rebuilds from."""
        return {
            "host": self.host,
            "port": self.port,
            "node_id": self.node_id,
            "auth": self.auth,
            "timeout": self.timeout,
            "max_retries": self.max_retries,
            "backoff_base": self.backoff_base,
            "backoff_cap": self.backoff_cap,
        }

    @classmethod
    def from_payload(
        cls,
        payload: Mapping[str, object],
        node_id: Optional[str] = None,
        faults: Optional[FaultPlan] = None,
    ) -> "RemoteQueue":
        return cls(
            host=str(payload["host"]),
            port=int(payload["port"]),
            node_id=str(node_id or payload.get("node_id") or "node"),
            auth=str(payload.get("auth") or ""),
            timeout=float(payload.get("timeout") or DEFAULT_TIMEOUT),
            max_retries=int(
                payload.get("max_retries", DEFAULT_MAX_RETRIES)
            ),
            backoff_base=float(
                payload.get("backoff_base", DEFAULT_BACKOFF_BASE)
            ),
            backoff_cap=float(
                payload.get("backoff_cap", DEFAULT_BACKOFF_CAP)
            ),
            faults=faults,
        )

    # -- transport ------------------------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def _close_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _maybe_partition(self, op: str) -> None:
        """Open/enforce an injected no-connectivity window for this call."""
        if self.faults is not None:
            seconds = self.faults.partition_seconds(op)
            if seconds > 0:
                self._partition_until = max(
                    self._partition_until, time.monotonic() + seconds
                )
        if time.monotonic() < self._partition_until:
            self._close_socket()
            raise ConnectionError("injected network partition")

    def _call(self, message: "protocol._Message") -> Dict[str, object]:
        """One request/response round trip, retried across reconnects.

        Retries cover transport failures only (socket errors, frames
        torn by a dying peer).  A decoded error *response* propagates
        untouched — it is the coordinator's answer.  Safe because every
        mutating verb is idempotent coordinator-side: replaying a
        ``complete``/``fail``/``retry`` whose response was lost
        converges on the same terminal record.
        """
        with self._lock:
            attempt = 0
            while True:
                try:
                    self._maybe_partition(message.op)
                    sock = self._connect()
                    send_frame(sock, encode_request(message, self.auth))
                    payload = recv_frame(sock)
                    if payload is None:
                        raise FrameError(
                            "coordinator closed the connection mid-call"
                        )
                    return protocol.decode_response(payload)
                except (OSError, FrameError) as exc:
                    self._close_socket()
                    attempt += 1
                    if attempt > self.max_retries:
                        raise ClusterUnavailableError(
                            f"coordinator {self.host}:{self.port} "
                            f"unreachable after {attempt} attempt(s): "
                            f"{type(exc).__name__}: {exc}"
                        ) from exc
                    self.reconnects += 1
                    time.sleep(
                        min(
                            self.backoff_cap,
                            self.backoff_base * (2 ** (attempt - 1)),
                        )
                    )

    def close(self) -> None:
        with self._lock:
            self._close_socket()

    # -- node lifecycle --------------------------------------------------------

    def register(self, workers: int, host: str = "") -> Dict[str, object]:
        """Join the fleet; the response body carries the spool's
        scheduler config and the fleet retry policy (config download)."""
        return self._call(protocol.Register(
            node_id=self.node_id, workers=int(workers), host=host,
        ))

    def deregister(self) -> Dict[str, object]:
        return self._call(protocol.Deregister(node_id=self.node_id))

    def node_heartbeat(self) -> Dict[str, object]:
        return self._call(protocol.Heartbeat(node_id=self.node_id))

    def stats(self) -> Dict[str, object]:
        return self._call(protocol.Stats(node_id=self.node_id))

    # -- JobQueue duck type (worker-facing) -----------------------------------

    def claim(
        self, owner: str, now: Optional[float] = None
    ) -> Optional[Dict[str, object]]:
        body = self._call(protocol.Claim(node_id=self.node_id, owner=owner))
        record = body.get("record")
        return dict(record) if isinstance(record, Mapping) else None

    def heartbeat(self, job_id: str, owner: str, stage: str = "") -> None:
        self._call(protocol.Heartbeat(
            node_id=self.node_id, job_id=job_id, owner=owner, stage=stage,
        ))

    def update_progress(
        self, job_id: str, completed: int, stage: str = ""
    ) -> None:
        self._call(protocol.Progress(
            node_id=self.node_id, job_id=job_id,
            completed=int(completed), stage=stage,
        ))

    def complete(
        self,
        job_id: str,
        result: Optional[Dict[str, object]] = None,
        results: Optional[Sequence[Dict[str, object]]] = None,
        report: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        body = self._call(protocol.Complete(
            node_id=self.node_id, job_id=job_id, result=result,
            results=tuple(results) if results is not None else None,
            report=report,
        ))
        return dict(body.get("record") or {})

    def fail(self, job_id: str, error: str) -> Dict[str, object]:
        body = self._call(protocol.Fail(
            node_id=self.node_id, job_id=job_id, error=error,
        ))
        return dict(body.get("record") or {})

    def retry_or_fail(
        self, job_id: str, error: str, policy=None
    ) -> Dict[str, object]:
        """Requeue-or-fail under the coordinator's policy (one policy
        fleet-wide; the local ``policy`` argument is deliberately unused)."""
        body = self._call(protocol.Retry(
            node_id=self.node_id, job_id=job_id, error=error,
        ))
        return dict(body.get("record") or {})

    def mark_cancelled(self, job_id: str) -> Dict[str, object]:
        body = self._call(protocol.Cancelled(
            node_id=self.node_id, job_id=job_id,
        ))
        return dict(body.get("record") or {})

    def cancel_requested(self, job_id: str) -> bool:
        body = self._call(protocol.CancelCheck(
            node_id=self.node_id, job_id=job_id,
        ))
        return bool(body.get("cancel"))

    def record(self, job_id: str) -> Optional[Dict[str, object]]:
        body = self._call(protocol.RecordGet(
            node_id=self.node_id, job_id=job_id,
        ))
        record = body.get("record")
        return dict(record) if isinstance(record, Mapping) else None

    def recover(
        self,
        policy=None,
        dead_owners: Sequence[str] = (),
        now: Optional[float] = None,
    ) -> List[str]:
        """Report locally dead worker incarnations for lease recovery.

        TTL sweeps of *other* nodes' leases are the coordinator's job —
        an empty report short-circuits locally so the supervisor's 0.1s
        tick does not turn into network chatter.
        """
        owners = tuple(dead_owners)
        if not owners:
            return []
        body = self._call(protocol.Recover(
            node_id=self.node_id, dead_owners=owners,
        ))
        recovered = body.get("recovered")
        return [str(j) for j in recovered] if isinstance(
            recovered, (list, tuple)
        ) else []

    def evict_finished(self, cap: int) -> int:
        """Eviction is spool maintenance; the coordinator does it."""
        return 0

    # -- events ---------------------------------------------------------------

    def subscribe(
        self, replay: int = 0
    ) -> Tuple[socket.socket, List[Dict[str, object]]]:
        """Open a *dedicated* streaming connection (not the call socket).

        Returns the raw socket plus the replayed event payloads; the
        caller then reads event frames with
        :func:`~repro.cluster.protocol.recv_frame` /
        :func:`~repro.cluster.protocol.decode_event` until EOF.
        """
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        try:
            send_frame(sock, encode_request(
                protocol.Subscribe(node_id=self.node_id, replay=replay),
                self.auth,
            ))
            payload = recv_frame(sock)
            if payload is None:
                raise FrameError("coordinator closed before subscribing")
            body = protocol.decode_response(payload)
        except BaseException:
            sock.close()
            raise
        history = body.get("history")
        replayed = [
            dict(e) for e in history
        ] if isinstance(history, (list, tuple)) else []
        return sock, replayed
