"""repro.cluster — the multi-host execution plane.

One :class:`ClusterCoordinator` colocated with the durable spool
arbitrates claims for the whole fleet through the local
``JobQueue.claim()`` path (priority, aging, fair share — PR 9 semantics
fleet-wide).  Remote hosts run :func:`run_agent`, whose PR 6 worker
processes speak to the coordinator through a :class:`RemoteQueue` — a
``JobQueue`` duck type over a length-prefixed, versioned JSON wire
protocol with per-message auth.  Fleet transitions fan out pub-sub
style through an :class:`EventHub`; ``subscribe`` streams them and
``GET /v1/cluster`` renders them.
"""

from repro.cluster.agent import default_node_id, parse_endpoint, run_agent
from repro.cluster.coordinator import DEFAULT_NODE_TTL, ClusterCoordinator
from repro.cluster.events import EVENT_KINDS, ClusterEvent, EventHub
from repro.cluster.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ClusterUnavailableError,
    FrameError,
    ProtocolError,
    RemoteOpError,
    decode_event,
    decode_request,
    decode_response,
    encode_request,
    recv_frame,
    send_frame,
)
from repro.cluster.remote import RemoteQueue

__all__ = [
    "ClusterCoordinator",
    "ClusterEvent",
    "ClusterUnavailableError",
    "DEFAULT_NODE_TTL",
    "EVENT_KINDS",
    "EventHub",
    "FrameError",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteOpError",
    "RemoteQueue",
    "decode_event",
    "decode_request",
    "decode_response",
    "encode_request",
    "recv_frame",
    "send_frame",
    "default_node_id",
    "parse_endpoint",
    "run_agent",
]
