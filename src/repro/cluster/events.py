"""Fleet status events: one hub, many subscribers, C-CBPS style.

The coordinator publishes every fleet-visible transition —
node join/leave, claim, completion, failure, cancellation, autoscale —
into one :class:`EventHub`.  Subscribers are content-blind queues: a
``subscribe`` connection drains its queue into event frames, the
``/v1/cluster`` route renders the retained ring buffer, and tests
assert ordering on the monotonic ``seq``.

Events are frozen dataclasses with the strict codec contract of the
rest of the wire protocol, so a subscriber can round-trip and validate
every pushed frame.  The hub keeps a bounded ring of recent events
(replayable on subscribe) and never blocks a publisher: a subscriber
that stops draining loses events past its queue bound instead of
wedging the coordinator.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from collections import deque

from repro.cluster.protocol import ProtocolError, _check_int, _check_str

#: every event kind the coordinator publishes
EVENT_KINDS = (
    "node_join", "node_leave", "claim", "complete", "fail", "cancel",
    "autoscale",
)

#: events retained for replay/rendering
DEFAULT_HISTORY = 256

#: per-subscriber queue bound (a stalled subscriber drops, never blocks)
SUBSCRIBER_QUEUE_MAX = 1024


@dataclass(frozen=True)
class ClusterEvent:
    """One fleet transition, strictly typed for the wire."""

    seq: int
    ts: float
    kind: str
    node_id: str = ""
    job_id: str = ""
    detail: str = ""

    def __post_init__(self) -> None:
        _check_int("ClusterEvent", "seq", self.seq, minimum=1)
        if not isinstance(self.ts, (int, float)) or isinstance(self.ts, bool):
            raise ProtocolError(
                f"ClusterEvent.ts: must be a number, "
                f"got {type(self.ts).__name__}"
            )
        if self.kind not in EVENT_KINDS:
            raise ProtocolError(
                f"ClusterEvent.kind: must be one of {list(EVENT_KINDS)}, "
                f"got {self.kind!r}"
            )
        _check_str("ClusterEvent", "node_id", self.node_id)
        _check_str("ClusterEvent", "job_id", self.job_id)
        _check_str("ClusterEvent", "detail", self.detail)

    def to_payload(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "node_id": self.node_id,
            "job_id": self.job_id,
            "detail": self.detail,
        }

    @classmethod
    def from_payload(cls, payload: object) -> "ClusterEvent":
        if not isinstance(payload, Mapping):
            raise ProtocolError(
                f"ClusterEvent payload must be an object, "
                f"got {type(payload).__name__}"
            )
        known = ("seq", "ts", "kind", "node_id", "job_id", "detail")
        unknown = sorted(set(payload) - set(known))
        if unknown:
            raise ProtocolError(
                f"ClusterEvent payload has unknown key(s): "
                f"{', '.join(unknown)}"
            )
        if "seq" not in payload or "ts" not in payload or "kind" not in payload:
            raise ProtocolError(
                "ClusterEvent payload needs 'seq', 'ts', and 'kind'"
            )
        try:
            return cls(**{str(k): v for k, v in payload.items()})
        except TypeError as exc:
            raise ProtocolError(
                f"malformed ClusterEvent payload: {exc}"
            ) from exc


class EventHub:
    """Bounded publish-subscribe fan-out of :class:`ClusterEvent` rows."""

    def __init__(self, history: int = DEFAULT_HISTORY) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._ring: Deque[ClusterEvent] = deque(maxlen=max(1, history))
        self._subscribers: List["queue.Queue[ClusterEvent]"] = []

    @property
    def seq(self) -> int:
        """Total events ever published (monotonic)."""
        with self._lock:
            return self._seq

    def publish(
        self,
        kind: str,
        node_id: str = "",
        job_id: str = "",
        detail: str = "",
        ts: Optional[float] = None,
    ) -> ClusterEvent:
        """Stamp, retain, and fan out one event (non-blocking)."""
        with self._lock:
            self._seq += 1
            event = ClusterEvent(
                seq=self._seq,
                ts=time.time() if ts is None else float(ts),
                kind=kind,
                node_id=node_id,
                job_id=job_id,
                detail=detail,
            )
            self._ring.append(event)
            subscribers = list(self._subscribers)
        for sub in subscribers:
            try:
                sub.put_nowait(event)
            except queue.Full:
                pass  # a wedged subscriber loses events, never blocks us
        return event

    def subscribe(
        self, replay: int = 0
    ) -> Tuple["queue.Queue[ClusterEvent]", List[ClusterEvent]]:
        """Attach a subscriber queue; returns it plus the replayed tail.

        Replay and attachment are atomic under the hub lock, so a
        subscriber sees every event exactly once: the last ``replay``
        retained events, then the live feed from the next publish on.
        """
        sub: "queue.Queue[ClusterEvent]" = queue.Queue(SUBSCRIBER_QUEUE_MAX)
        with self._lock:
            replayed = list(self._ring)[-replay:] if replay > 0 else []
            self._subscribers.append(sub)
        return sub, replayed

    def unsubscribe(self, sub: "queue.Queue[ClusterEvent]") -> None:
        with self._lock:
            try:
                self._subscribers.remove(sub)
            except ValueError:
                pass

    def recent(self, count: int = 32) -> List[ClusterEvent]:
        """The newest ``count`` retained events, oldest first."""
        with self._lock:
            tail = list(self._ring)
        return tail[-max(0, count):]
