"""ClusterCoordinator: the TCP claim arbiter colocated with the spool.

One coordinator runs next to the durable spool and exports the
:class:`~repro.exec.queue.JobQueue` over the wire protocol.  Remote
claims go through the *same* ``claim()`` path local workers use, so
every PR 9 scheduling property — strict priority from ``p<rank>.``
token prefixes, aging promotion, fair-share ledger charges — holds
fleet-wide by construction: there is exactly one arbiter and it is the
queue itself.

Beyond relaying queue verbs, the coordinator owns what only a
fleet-level view can:

* **node registry** — agents register (the response downloads the
  spool's scheduler config and the fleet retry policy), heartbeat, and
  deregister; every authenticated message from a node refreshes its
  liveness stamp;
* **dead-node recovery** — a sweeper thread declares nodes silent past
  ``node_ttl`` dead and recovers every lease held by owners under the
  node's ``<node_id>:`` prefix, exactly like the PR 6 supervisor
  recovers a dead worker's leases by owner id;
* **events** — every transition is published into an
  :class:`~repro.cluster.events.EventHub`; a ``subscribe`` request
  turns its connection into a push stream of event frames;
* **chaos seams** — ``conn_drop`` fault specs fire here, closing the
  connection after processing a matching op but *before* the response
  leaves, which is precisely the window where client-side idempotency
  earns its keep.

Each connection is handled by one daemon thread (``ThreadingTCPServer``)
looping frames until EOF; the queue's no-locks on-disk coordination
makes concurrent dispatch safe, with one coordinator-side lock guarding
only the node registry and counters.
"""

from __future__ import annotations

import socketserver
import threading
import time
from typing import Dict, List, Optional, Union

from repro.api.errors import ApiError, UnauthorizedError
from repro.cluster import protocol
from repro.cluster.events import EventHub
from repro.cluster.protocol import (
    FrameError,
    ProtocolError,
    error_response,
    event_frame,
    ok_response,
    recv_frame,
    send_frame,
)
from repro.exec.policy import RetryPolicy
from repro.exec.queue import JobQueue
from repro.faults import FaultPlan

#: seconds of node silence before its leases are recovered
DEFAULT_NODE_TTL = 5.0

#: sweeper cadence is a fraction of the TTL, bounded sane
_SWEEP_MIN, _SWEEP_MAX = 0.05, 1.0


class _NodeState:
    """Registry row for one live agent node."""

    __slots__ = ("node_id", "host", "workers", "registered_at",
                 "last_seen", "claims")

    def __init__(self, node_id: str, host: str, workers: int) -> None:
        now = time.time()
        self.node_id = node_id
        self.host = host
        self.workers = workers
        self.registered_at = now
        self.last_seen = now
        self.claims = 0

    def payload(self, now: float) -> Dict[str, object]:
        return {
            "node_id": self.node_id,
            "host": self.host,
            "workers": self.workers,
            "claims": self.claims,
            "registered_at": self.registered_at,
            "last_seen_age": max(0.0, now - self.last_seen),
        }


class ClusterCoordinator:
    """The fleet's single claim arbiter, spool-colocated."""

    def __init__(
        self,
        spool_root: Union[str, "object"],
        host: str = "127.0.0.1",
        port: int = 0,
        auth_token: str = "",
        policy: Optional[RetryPolicy] = None,
        node_ttl: float = DEFAULT_NODE_TTL,
        faults: Optional[FaultPlan] = None,
        queue: Optional[JobQueue] = None,
    ) -> None:
        self.queue = queue if queue is not None else JobQueue(spool_root)
        self.policy = policy if policy is not None else RetryPolicy()
        self.auth_token = auth_token
        self.node_ttl = max(0.1, float(node_ttl))
        self.events = EventHub()
        # conn_drop specs fire coordinator-side; bind to the spool's
        # token dir so `times` budgets hold across coordinator restarts
        self._faults = (
            faults.bind(None, str(self.queue.root / "faults"))
            if faults is not None else None
        )
        self._nodes: Dict[str, _NodeState] = {}
        self._lock = threading.Lock()
        self._draining = False
        self._stop = threading.Event()
        self._sweeper: Optional[threading.Thread] = None
        #: wire-level counters surfaced by stats()/metrics
        self.counters: Dict[str, int] = {
            "connections_total": 0,
            "claims_total": 0,
            "completions_total": 0,
            "failures_total": 0,
            "retries_total": 0,
            "recovered_leases_total": 0,
            "dead_nodes_total": 0,
            "conn_drops_total": 0,
            "auth_failures_total": 0,
        }
        coordinator = self

        class _Handler(socketserver.BaseRequestHandler):
            def handle(self) -> None:  # noqa: D102 — socketserver API
                coordinator._handle_connection(self.request)

        class _Server(socketserver.ThreadingTCPServer):
            daemon_threads = True
            allow_reuse_address = True

        self._server = _Server((host, int(port)), _Handler)
        self.host, self.port = self._server.server_address[:2]
        self._serve_thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self._serve_thread = threading.Thread(
            target=self._server.serve_forever,
            name="cluster-coordinator",
            daemon=True,
        )
        self._serve_thread.start()
        self._sweeper = threading.Thread(
            target=self._sweep_loop, name="cluster-sweeper", daemon=True
        )
        self._sweeper.start()

    def set_draining(self, draining: bool = True) -> None:
        """While draining, claims answer empty: agents idle, jobs stay
        durable, and the fleet can be stopped without losing work."""
        with self._lock:
            self._draining = bool(draining)

    def stop(self) -> None:
        self._stop.set()
        self._server.shutdown()
        self._server.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
        if self._sweeper is not None:
            self._sweeper.join(timeout=5.0)
            self._sweeper = None

    def __enter__(self) -> "ClusterCoordinator":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- fleet view -----------------------------------------------------------

    def remote_workers(self) -> int:
        """Live remote worker slots (the autoscaler's fleet-wide term)."""
        with self._lock:
            return sum(node.workers for node in self._nodes.values())

    def node_count(self) -> int:
        with self._lock:
            return len(self._nodes)

    def stats(self) -> Dict[str, object]:
        """The fleet snapshot behind ``stats`` / ``/v1/cluster``."""
        now = time.time()
        with self._lock:
            nodes = [
                node.payload(now)
                for node in sorted(
                    self._nodes.values(), key=lambda n: n.registered_at
                )
            ]
            counters = dict(self.counters)
            draining = self._draining
        return {
            "address": self.address,
            "draining": draining,
            "node_ttl": self.node_ttl,
            "nodes": nodes,
            "remote_workers": sum(int(n["workers"]) for n in nodes),
            "counters": counters,
            "events_seq": self.events.seq,
            "recent_events": [
                e.to_payload() for e in self.events.recent()
            ],
        }

    # -- connection handling ---------------------------------------------------

    def _handle_connection(self, sock) -> None:
        with self._lock:
            self.counters["connections_total"] += 1
        try:
            while not self._stop.is_set():
                try:
                    payload = recv_frame(sock)
                except FrameError:
                    return  # torn client write; nothing to answer
                if payload is None:
                    return  # clean close
                try:
                    message, auth = protocol.decode_request(payload)
                except ProtocolError as exc:
                    send_frame(sock, error_response(exc))
                    return
                if self.auth_token and auth != self.auth_token:
                    with self._lock:
                        self.counters["auth_failures_total"] += 1
                    send_frame(sock, error_response(UnauthorizedError(
                        "cluster auth token mismatch"
                    )))
                    return
                self._touch_node(message)
                if message.op == "subscribe":
                    self._stream_events(sock, message)
                    return
                response = self._dispatch(message)
                if self._fire_conn_drop(message.op):
                    return  # op processed, response dropped: chaos seam
                send_frame(sock, response)
        except OSError:
            pass  # client went away; its retry path owns the recovery
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _fire_conn_drop(self, op: str) -> bool:
        if self._faults is None:
            return False
        if not self._faults.on_cluster_op(op):
            return False
        with self._lock:
            self.counters["conn_drops_total"] += 1
        return True

    def _touch_node(self, message) -> None:
        node_id = getattr(message, "node_id", "")
        if not node_id:
            return
        with self._lock:
            node = self._nodes.get(node_id)
            if node is not None:
                node.last_seen = time.time()

    def _dispatch(self, message) -> Dict[str, object]:
        try:
            handler = getattr(self, f"_op_{message.op}")
            return ok_response(handler(message))
        except ApiError as exc:
            return error_response(exc)
        except Exception as exc:  # noqa: BLE001 — never kill the handler
            return error_response(exc)

    # -- ops -------------------------------------------------------------------

    def _op_register(self, msg: protocol.Register) -> Dict[str, object]:
        with self._lock:
            known = msg.node_id in self._nodes
            node = _NodeState(msg.node_id, msg.host, msg.workers)
            self._nodes[msg.node_id] = node
        if not known:
            self.events.publish(
                "node_join", node_id=msg.node_id,
                detail=f"{msg.workers} worker(s)",
            )
        # config download: one scheduler policy and one retry policy
        # fleet-wide, both owned by the spool side
        return {
            "node_id": msg.node_id,
            "node_ttl": self.node_ttl,
            "sched": self.queue.sched.to_payload(),
            "policy": self.policy.to_payload(),
        }

    def _op_deregister(self, msg: protocol.Deregister) -> Dict[str, object]:
        with self._lock:
            node = self._nodes.pop(msg.node_id, None)
        if node is not None:
            self.events.publish(
                "node_leave", node_id=msg.node_id, detail="deregistered"
            )
        # defensive: a deregistering node should have drained, but any
        # lease its workers still hold must not wait out the TTL
        recovered = self._recover_node_leases(msg.node_id)
        return {"recovered": recovered}

    def _op_heartbeat(self, msg: protocol.Heartbeat) -> Dict[str, object]:
        # node liveness was touched in the connection loop; refresh the
        # job lease when one is named.  `known` tells a swept node it
        # must re-register (e.g. after outliving a partition).
        if msg.job_id:
            self.queue.heartbeat(msg.job_id, msg.owner, msg.stage)
        with self._lock:
            known = msg.node_id in self._nodes
        return {"known": known}

    def _op_claim(self, msg: protocol.Claim) -> Dict[str, object]:
        with self._lock:
            draining = self._draining
        if draining:
            return {"record": None}
        record = self.queue.claim(msg.owner)
        if record is not None:
            with self._lock:
                self.counters["claims_total"] += 1
                node = self._nodes.get(msg.node_id)
                if node is not None:
                    node.claims += 1
            self.events.publish(
                "claim", node_id=msg.node_id,
                job_id=str(record.get("job_id") or ""),
                detail=str(record.get("priority") or ""),
            )
        return {"record": record}

    def _op_progress(self, msg: protocol.Progress) -> Dict[str, object]:
        self.queue.update_progress(msg.job_id, msg.completed, msg.stage)
        return {}

    def _op_complete(self, msg: protocol.Complete) -> Dict[str, object]:
        prior = self.queue.record(msg.job_id)
        already_done = prior is not None and prior.get("state") == "done"
        record = self.queue.complete(
            msg.job_id,
            result=dict(msg.result) if msg.result is not None else None,
            results=(
                [dict(r) for r in msg.results]
                if msg.results is not None else None
            ),
            report=dict(msg.report) if msg.report is not None else None,
        )
        if not already_done:
            with self._lock:
                self.counters["completions_total"] += 1
            self.events.publish(
                "complete", node_id=msg.node_id, job_id=msg.job_id,
            )
        return {"record": record, "already_done": already_done}

    def _op_fail(self, msg: protocol.Fail) -> Dict[str, object]:
        record = self.queue.fail(msg.job_id, msg.error)
        with self._lock:
            self.counters["failures_total"] += 1
        self.events.publish(
            "fail", node_id=msg.node_id, job_id=msg.job_id,
            detail=msg.error[:120],
        )
        return {"record": record}

    def _op_retry(self, msg: protocol.Retry) -> Dict[str, object]:
        record = self.queue.retry_or_fail(msg.job_id, msg.error, self.policy)
        with self._lock:
            self.counters["retries_total"] += 1
        if record.get("state") == "failed":
            self.events.publish(
                "fail", node_id=msg.node_id, job_id=msg.job_id,
                detail=f"retries exhausted: {msg.error[:100]}",
            )
        return {"record": record}

    def _op_cancelled(self, msg: protocol.Cancelled) -> Dict[str, object]:
        record = self.queue.mark_cancelled(msg.job_id)
        self.events.publish(
            "cancel", node_id=msg.node_id, job_id=msg.job_id,
        )
        return {"record": record}

    def _op_cancel_check(self, msg: protocol.CancelCheck) -> Dict[str, object]:
        return {"cancel": self.queue.cancel_requested(msg.job_id)}

    def _op_recover(self, msg: protocol.Recover) -> Dict[str, object]:
        recovered = self.queue.recover(
            self.policy, dead_owners=list(msg.dead_owners)
        )
        if recovered:
            with self._lock:
                self.counters["recovered_leases_total"] += len(recovered)
        return {"recovered": recovered}

    def _op_record(self, msg: protocol.RecordGet) -> Dict[str, object]:
        return {"record": self.queue.record(msg.job_id)}

    def _op_stats(self, msg: protocol.Stats) -> Dict[str, object]:
        payload = self.stats()
        payload["depth"] = self.queue.depth()
        payload["sched"] = self.queue.sched_stats()
        return payload

    # -- event streaming -------------------------------------------------------

    def _stream_events(self, sock, msg: protocol.Subscribe) -> None:
        sub, replayed = self.events.subscribe(msg.replay)
        try:
            send_frame(sock, ok_response({
                "subscribed": True,
                "history": [e.to_payload() for e in replayed],
            }))
            while not self._stop.is_set():
                try:
                    event = sub.get(timeout=0.5)
                except Exception:  # noqa: BLE001 — queue.Empty
                    continue
                send_frame(sock, event_frame(event.to_payload()))
        except OSError:
            pass  # subscriber went away
        finally:
            self.events.unsubscribe(sub)

    # -- dead-node sweeping ----------------------------------------------------

    def _sweep_loop(self) -> None:
        interval = min(_SWEEP_MAX, max(_SWEEP_MIN, self.node_ttl / 4.0))
        while not self._stop.wait(interval):
            self.sweep_dead_nodes()

    def sweep_dead_nodes(self, now: Optional[float] = None) -> List[str]:
        """Drop TTL-expired nodes and recover their workers' leases."""
        now = time.time() if now is None else now
        with self._lock:
            dead = [
                node_id for node_id, node in self._nodes.items()
                if now - node.last_seen > self.node_ttl
            ]
            for node_id in dead:
                del self._nodes[node_id]
                self.counters["dead_nodes_total"] += 1
        for node_id in dead:
            self.events.publish(
                "node_leave", node_id=node_id,
                detail=f"lost (no heartbeat for {self.node_ttl:g}s)",
            )
            self._recover_node_leases(node_id)
        return dead

    def _recover_node_leases(self, node_id: str) -> List[str]:
        """Recover every lease held by the node's worker incarnations.

        Agent worker owner ids are prefixed ``<node_id>:`` (the
        supervisor's ``owner_prefix``), so a dead node's in-flight jobs
        are identifiable from lease owners alone — the fleet-level twin
        of the supervisor recovering ``w<slot>.g<gen>`` owners.
        """
        prefix = f"{node_id}:"
        owners = [
            owner
            for owner in self.queue.lease_owners().values()
            if owner.startswith(prefix)
        ]
        if not owners:
            return []
        recovered = self.queue.recover(self.policy, dead_owners=owners)
        if recovered:
            with self._lock:
                self.counters["recovered_leases_total"] += len(recovered)
        return recovered
