"""Remote worker agent: PR 6 worker processes against a proxy queue.

``provmark agent --coordinator HOST:PORT --workers N`` joins the fleet:

1. **register** — the coordinator's response *is* the config download:
   the spool's scheduler policy and the fleet retry policy, so every
   node claims and retries under exactly one policy regardless of what
   its command line says;
2. **supervise** — an ordinary :class:`~repro.exec.Supervisor` runs N
   worker processes, except its queue (and every worker's) is a
   :class:`~repro.cluster.remote.RemoteQueue` and worker owner ids are
   prefixed ``<node_id>:`` so the coordinator can recover this node's
   leases by prefix if it goes silent;
3. **heartbeat** — a node-level heartbeat loop keeps the registry row
   alive (workers' per-job lease heartbeats ride the same protocol but
   do not prove the *node* is up when idle);
4. **drain** — SIGTERM drains the supervisor (in-flight jobs finish),
   then deregisters, so a polite shutdown never leaves leases to TTL
   recovery.

Results ship back through the shared store path: workers write
artifacts content-addressed into ``<plane>/store`` exactly as local
workers do, which on a fleet is a shared mount.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from pathlib import Path
from typing import Callable, Optional, Tuple

from repro.api.errors import ValidationError
from repro.cluster.protocol import ClusterUnavailableError
from repro.cluster.remote import RemoteQueue
from repro.exec.policy import RetryPolicy
from repro.exec.supervisor import Supervisor
from repro.faults import FaultPlan

#: node-registry heartbeat cadence ceiling (the join response's
#: ``node_ttl`` tightens it to ttl/3)
DEFAULT_NODE_HEARTBEAT = 1.0

DEFAULT_DRAIN_TIMEOUT = 30.0


def parse_endpoint(value: str) -> Tuple[str, int]:
    """``HOST:PORT`` → ``(host, port)``, strictly."""
    text = str(value or "").strip()
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValidationError(
            f"coordinator endpoint must be HOST:PORT, got {text!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValidationError(
            f"coordinator endpoint has a non-numeric port: {text!r}"
        ) from None
    if not (0 < port < 65536):
        raise ValidationError(
            f"coordinator endpoint port out of range: {port}"
        )
    return host, port


def default_node_id() -> str:
    """Host + pid: unique per agent process, stable for its lifetime."""
    return f"{socket.gethostname()}-{os.getpid()}"


def run_agent(
    coordinator: str,
    workers: int = 2,
    plane: str = ".provmark-agent",
    node_id: str = "",
    token: str = "",
    poll_interval: float = 0.05,
    faults: Optional[FaultPlan] = None,
    heartbeat_interval: float = DEFAULT_NODE_HEARTBEAT,
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
    stop_event: Optional[threading.Event] = None,
    log: Optional[Callable[[str], None]] = None,
) -> int:
    """Run one agent until ``stop_event`` is set (the CLI sets it on
    SIGTERM/SIGINT); returns a process exit code.

    ``plane`` is the agent's plane directory: ``<plane>/store`` is the
    (shared) artifact store results ship through, ``<plane>/spool`` only
    hosts fault-injection token budgets — job state lives coordinator-side.
    """
    emit = log if log is not None else (lambda msg: None)
    host, port = parse_endpoint(coordinator)
    node = node_id or default_node_id()
    stop = stop_event if stop_event is not None else threading.Event()

    plane_dir = Path(plane)
    spool_root = plane_dir / "spool"
    store_path = plane_dir / "store"
    spool_root.mkdir(parents=True, exist_ok=True)
    store_path.mkdir(parents=True, exist_ok=True)

    client = RemoteQueue(host, port, node, auth=token, faults=faults)
    try:
        join = client.register(workers, host=socket.gethostname())
    except ClusterUnavailableError as exc:
        emit(f"provmark agent: cannot join fleet: {exc}")
        return 3
    node_ttl = float(join.get("node_ttl") or 5.0)
    policy_payload = join.get("policy")
    policy = (
        RetryPolicy.from_payload(policy_payload)
        if isinstance(policy_payload, dict) else RetryPolicy()
    )
    emit(
        f"provmark agent: joined {host}:{port} as {node} "
        f"({workers} worker(s), lease_ttl={policy.lease_ttl:g}s, "
        f"node_ttl={node_ttl:g}s)"
    )

    supervisor = Supervisor(
        spool_root=str(spool_root),
        store_path=str(store_path),
        workers=workers,
        policy=policy,
        faults=faults,
        poll_interval=poll_interval,
        owner_prefix=f"{node}:",
        remote=client.to_payload(),
    )
    supervisor.start()
    beat_every = min(max(0.05, heartbeat_interval), node_ttl / 3.0)
    try:
        while not stop.wait(beat_every):
            try:
                beat = client.node_heartbeat()
                if not beat.get("known", True):
                    # outlived a TTL sweep (partition, coordinator
                    # restart): rejoin so the registry row comes back
                    client.register(workers, host=socket.gethostname())
                    emit(f"provmark agent: re-registered {node}")
            except ClusterUnavailableError:
                # coordinator unreachable past the retry budget: keep
                # the workers running (their own retries ride the same
                # backoff) and keep heartbeating until it returns
                emit("provmark agent: coordinator unreachable, retrying")
    finally:
        emit(f"provmark agent: draining {node}")
        clean = supervisor.drain(drain_timeout)
        try:
            client.deregister()
        except ClusterUnavailableError:
            pass  # TTL sweep will reap the registry row
        client.close()
        emit(
            f"provmark agent: {node} left the fleet "
            f"({'clean' if clean else 'forced'} drain)"
        )
    return 0 if clean else 1
