"""Wire protocol of the multi-host execution plane.

Everything the coordinator and its agents say to each other is a
**frame**: a 4-byte big-endian length prefix followed by one UTF-8 JSON
object.  Three frame shapes travel over one TCP connection:

* **requests** — ``{"version": 1, "auth": "<token>", "op": "claim",
  "body": {...}}``; every message carries the shared auth token (the
  per-message check means a connection hijacked after registration still
  cannot act);
* **responses** — ``{"version": 1, "ok": true, "body": {...}}`` or
  ``{"version": 1, "ok": false, "error": {"type", "message"}}``; error
  types map back onto the :mod:`repro.api.errors` hierarchy client-side
  so a remote ``NotFoundError`` raises exactly like a local one;
* **events** — ``{"version": 1, "event": {...}}``, pushed down a
  connection that sent ``subscribe`` (see :mod:`repro.cluster.events`).

Message bodies are frozen dataclasses with the strict codec contract of
the typed API (PR 3/4 style): unknown keys rejected, wrong-typed values
rejected with full field paths, ``decode(encode(x)) == x``.  The verbs
cover the whole worker-facing :class:`~repro.exec.queue.JobQueue`
surface — claim / heartbeat / progress / complete / fail / retry /
cancel — plus node lifecycle (register / deregister), lease recovery,
introspection (record / stats), and the event subscription.

Framing errors split in two deliberately:

* :class:`FrameError` — transport-level damage (truncated frame,
  oversized frame, unparsable JSON).  A client reading a response may
  retry these: the peer died mid-write, and every mutating verb is
  idempotent server-side.
* :class:`ProtocolError` — a well-framed but invalid message (wrong
  version, unknown op, bad envelope).  Never retried: the same bytes
  would fail the same way.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass, fields
from typing import Dict, Mapping, Optional, Tuple, Type

from repro.api.errors import (
    ApiError,
    ConflictError,
    NotFoundError,
    UnauthorizedError,
    ValidationError,
)

#: version tag every frame carries; mismatches are rejected outright
#: (a mixed-version fleet must fail loudly, not half-decode)
PROTOCOL_VERSION = 1

#: hard cap on one frame's JSON payload — batch results of a
#: 50-benchmark job are a few MB; anything near this is hostile or torn
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: the length prefix: 4-byte big-endian unsigned
_PREFIX = struct.Struct("!I")


class ProtocolError(ApiError):
    """A well-framed but invalid message (never worth retrying)."""

    http_status = 400
    exit_code = 2


class FrameError(ProtocolError):
    """Transport-level framing damage (truncation, oversize, bad JSON)."""


class ClusterUnavailableError(ApiError):
    """The coordinator stayed unreachable past the retry budget."""

    http_status = 503
    exit_code = 3


class RemoteOpError(ApiError):
    """A coordinator-side failure of a type this client cannot map."""


# -- framing -----------------------------------------------------------------


def send_frame(sock: socket.socket, payload: Mapping[str, object]) -> None:
    """Serialize and write one frame (length prefix + JSON body)."""
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(blob) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame too large to send ({len(blob)} > {MAX_FRAME_BYTES} bytes)"
        )
    sock.sendall(_PREFIX.pack(len(blob)) + blob)


def recv_frame(
    sock: socket.socket, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[Dict[str, object]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    EOF *inside* a frame is a :class:`FrameError` (the peer died
    mid-write), as are oversized length prefixes and unparsable bodies.
    """
    prefix = _recv_exact(sock, _PREFIX.size, eof_ok=True)
    if prefix is None:
        return None
    (length,) = _PREFIX.unpack(prefix)
    if length > max_bytes:
        raise FrameError(
            f"incoming frame too large ({length} > {max_bytes} bytes)"
        )
    blob = _recv_exact(sock, length, eof_ok=False)
    try:
        payload = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _recv_exact(
    sock: socket.socket, count: int, eof_ok: bool
) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == count:
                return None  # clean close between frames
            raise FrameError(
                f"connection closed mid-frame ({count - remaining}/{count} "
                "bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- message vocabulary ------------------------------------------------------


def _fail(type_name: str, field: str, message: str) -> None:
    raise ProtocolError(f"{type_name}.{field}: {message}")


def _check_str(
    type_name: str, field: str, value: object, non_empty: bool = False
) -> None:
    if not isinstance(value, str):
        _fail(type_name, field,
              f"must be a string, got {type(value).__name__}")
    if non_empty and not value:
        _fail(type_name, field, "must be non-empty")


def _check_int(
    type_name: str, field: str, value: object, minimum: int = 0
) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        _fail(type_name, field,
              f"must be an int, got {type(value).__name__}")
    if value < minimum:
        _fail(type_name, field, f"must be >= {minimum}, got {value}")


def _check_obj_or_none(type_name: str, field: str, value: object) -> None:
    if value is not None and not isinstance(value, Mapping):
        _fail(type_name, field,
              f"must be an object or null, got {type(value).__name__}")


class _Message:
    """Shared strict codec over the frozen message dataclasses."""

    op = ""  # overridden per message

    def to_payload(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            out[spec.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_payload(cls, payload: object) -> "_Message":
        if not isinstance(payload, Mapping):
            raise ProtocolError(
                f"{cls.__name__} body must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        specs = {spec.name: spec for spec in fields(cls)}
        unknown = sorted(set(payload) - set(specs))
        if unknown:
            raise ProtocolError(
                f"{cls.__name__} body has unknown key(s): {', '.join(unknown)}"
            )
        kwargs: Dict[str, object] = {}
        for name, value in payload.items():
            if isinstance(value, list):
                value = tuple(value)
            kwargs[name] = value
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ProtocolError(
                f"malformed {cls.__name__} body: {exc}"
            ) from exc


@dataclass(frozen=True)
class Register(_Message):
    """A node joins the fleet (response carries scheduler + retry policy)."""

    node_id: str
    workers: int = 1
    host: str = ""

    op = "register"

    def __post_init__(self) -> None:
        _check_str("Register", "node_id", self.node_id, non_empty=True)
        _check_int("Register", "workers", self.workers, minimum=0)
        _check_str("Register", "host", self.host)


@dataclass(frozen=True)
class Deregister(_Message):
    """A node leaves the fleet gracefully (after draining its workers)."""

    node_id: str

    op = "deregister"

    def __post_init__(self) -> None:
        _check_str("Deregister", "node_id", self.node_id, non_empty=True)


@dataclass(frozen=True)
class Heartbeat(_Message):
    """Node liveness; with a ``job_id``, also refreshes that job's lease."""

    node_id: str
    job_id: str = ""
    owner: str = ""
    stage: str = ""

    op = "heartbeat"

    def __post_init__(self) -> None:
        _check_str("Heartbeat", "node_id", self.node_id, non_empty=True)
        _check_str("Heartbeat", "job_id", self.job_id)
        _check_str("Heartbeat", "owner", self.owner)
        _check_str("Heartbeat", "stage", self.stage)
        if self.job_id and not self.owner:
            _fail("Heartbeat", "owner",
                  "must be non-empty when job_id is set")


@dataclass(frozen=True)
class Claim(_Message):
    """Claim the best runnable job for ``owner`` (a remote worker uid)."""

    node_id: str
    owner: str

    op = "claim"

    def __post_init__(self) -> None:
        _check_str("Claim", "node_id", self.node_id, non_empty=True)
        _check_str("Claim", "owner", self.owner, non_empty=True)


@dataclass(frozen=True)
class Progress(_Message):
    """Stage/progress publication for a running job."""

    node_id: str
    job_id: str
    completed: int = 0
    stage: str = ""

    op = "progress"

    def __post_init__(self) -> None:
        _check_str("Progress", "node_id", self.node_id, non_empty=True)
        _check_str("Progress", "job_id", self.job_id, non_empty=True)
        _check_int("Progress", "completed", self.completed)
        _check_str("Progress", "stage", self.stage)


@dataclass(frozen=True)
class Complete(_Message):
    """Record success (idempotent: a retried complete never re-charges)."""

    node_id: str
    job_id: str
    result: Optional[Mapping[str, object]] = None
    results: Optional[Tuple[object, ...]] = None
    report: Optional[Mapping[str, object]] = None

    op = "complete"

    def __post_init__(self) -> None:
        _check_str("Complete", "node_id", self.node_id, non_empty=True)
        _check_str("Complete", "job_id", self.job_id, non_empty=True)
        _check_obj_or_none("Complete", "result", self.result)
        _check_obj_or_none("Complete", "report", self.report)
        if self.results is not None:
            if not isinstance(self.results, tuple):
                _fail("Complete", "results",
                      f"must be an array or null, "
                      f"got {type(self.results).__name__}")
            for i, item in enumerate(self.results):
                if not isinstance(item, Mapping):
                    _fail("Complete", f"results[{i}]",
                          f"must be an object, got {type(item).__name__}")


@dataclass(frozen=True)
class Fail(_Message):
    """Record a permanent failure (API errors: retrying cannot fix)."""

    node_id: str
    job_id: str
    error: str

    op = "fail"

    def __post_init__(self) -> None:
        _check_str("Fail", "node_id", self.node_id, non_empty=True)
        _check_str("Fail", "job_id", self.job_id, non_empty=True)
        _check_str("Fail", "error", self.error, non_empty=True)


@dataclass(frozen=True)
class Retry(_Message):
    """A failed attempt: requeue under the *coordinator's* retry policy."""

    node_id: str
    job_id: str
    error: str

    op = "retry"

    def __post_init__(self) -> None:
        _check_str("Retry", "node_id", self.node_id, non_empty=True)
        _check_str("Retry", "job_id", self.job_id, non_empty=True)
        _check_str("Retry", "error", self.error, non_empty=True)


@dataclass(frozen=True)
class Cancelled(_Message):
    """A worker observed the cancel marker and stopped the job."""

    node_id: str
    job_id: str

    op = "cancelled"

    def __post_init__(self) -> None:
        _check_str("Cancelled", "node_id", self.node_id, non_empty=True)
        _check_str("Cancelled", "job_id", self.job_id, non_empty=True)


@dataclass(frozen=True)
class CancelCheck(_Message):
    """Poll the cancel marker (one stage boundary = one check)."""

    node_id: str
    job_id: str

    op = "cancel_check"

    def __post_init__(self) -> None:
        _check_str("CancelCheck", "node_id", self.node_id, non_empty=True)
        _check_str("CancelCheck", "job_id", self.job_id, non_empty=True)


@dataclass(frozen=True)
class Recover(_Message):
    """An agent supervisor reports its locally dead worker incarnations."""

    node_id: str
    dead_owners: Tuple[str, ...] = ()

    op = "recover"

    def __post_init__(self) -> None:
        _check_str("Recover", "node_id", self.node_id, non_empty=True)
        if not isinstance(self.dead_owners, tuple):
            _fail("Recover", "dead_owners",
                  f"must be an array, got {type(self.dead_owners).__name__}")
        for i, owner in enumerate(self.dead_owners):
            if not isinstance(owner, str) or not owner:
                _fail("Recover", f"dead_owners[{i}]",
                      f"must be a non-empty string, got {owner!r}")


@dataclass(frozen=True)
class RecordGet(_Message):
    """Fetch one job record (tests and tooling; not on the hot path)."""

    node_id: str
    job_id: str

    op = "record"

    def __post_init__(self) -> None:
        _check_str("RecordGet", "node_id", self.node_id, non_empty=True)
        _check_str("RecordGet", "job_id", self.job_id, non_empty=True)


@dataclass(frozen=True)
class Stats(_Message):
    """Fleet snapshot: nodes, counters, queue depth, sched stats."""

    node_id: str

    op = "stats"

    def __post_init__(self) -> None:
        _check_str("Stats", "node_id", self.node_id, non_empty=True)


@dataclass(frozen=True)
class Subscribe(_Message):
    """Switch this connection into an event stream (see events.py)."""

    node_id: str
    replay: int = 0

    op = "subscribe"

    def __post_init__(self) -> None:
        _check_str("Subscribe", "node_id", self.node_id, non_empty=True)
        _check_int("Subscribe", "replay", self.replay)


#: every request message type, keyed by wire op
MESSAGE_TYPES: Dict[str, Type[_Message]] = {
    cls.op: cls
    for cls in (
        Register, Deregister, Heartbeat, Claim, Progress, Complete,
        Fail, Retry, Cancelled, CancelCheck, Recover, RecordGet,
        Stats, Subscribe,
    )
}


# -- envelopes ---------------------------------------------------------------


def encode_request(message: _Message, auth: str = "") -> Dict[str, object]:
    return {
        "version": PROTOCOL_VERSION,
        "auth": auth,
        "op": message.op,
        "body": message.to_payload(),
    }


def decode_request(payload: Mapping[str, object]) -> Tuple[_Message, str]:
    """Envelope + body validation; returns ``(message, auth token)``."""
    if not isinstance(payload, Mapping):
        raise ProtocolError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - {"version", "auth", "op", "body"})
    if unknown:
        raise ProtocolError(
            f"request envelope has unknown key(s): {', '.join(unknown)}"
        )
    version = payload.get("version")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this node speaks {PROTOCOL_VERSION})"
        )
    auth = payload.get("auth", "")
    if not isinstance(auth, str):
        raise ProtocolError(
            f"request 'auth' must be a string, got {type(auth).__name__}"
        )
    op = payload.get("op")
    cls = MESSAGE_TYPES.get(op) if isinstance(op, str) else None
    if cls is None:
        raise ProtocolError(
            f"unknown op {op!r} (known: {', '.join(sorted(MESSAGE_TYPES))})"
        )
    return cls.from_payload(payload.get("body", {})), auth


def ok_response(body: Optional[Mapping[str, object]] = None) -> Dict[str, object]:
    return {
        "version": PROTOCOL_VERSION,
        "ok": True,
        "body": dict(body or {}),
    }


def error_response(error: BaseException) -> Dict[str, object]:
    return {
        "version": PROTOCOL_VERSION,
        "ok": False,
        "error": {
            "type": type(error).__name__,
            "message": str(error) or type(error).__name__,
        },
    }


#: error types a response may carry that map back onto local exceptions;
#: anything else raises :class:`RemoteOpError` with the type in the text
_ERROR_TYPES: Dict[str, Type[Exception]] = {
    cls.__name__: cls
    for cls in (
        ProtocolError, FrameError, ValidationError, NotFoundError,
        UnauthorizedError, ConflictError,
    )
}


def decode_response(payload: Mapping[str, object]) -> Dict[str, object]:
    """The body of an ok response; error responses raise.

    Mapped error types re-raise as their local
    :mod:`repro.api.errors` class, so remote failures propagate through
    worker code exactly like local ones (a remote ``NotFoundError`` is
    permanent, a remote ``RemoteOpError`` is retryable infrastructure).
    """
    if not isinstance(payload, Mapping):
        raise ProtocolError(
            f"response must be a JSON object, got {type(payload).__name__}"
        )
    if payload.get("version") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported response version {payload.get('version')!r}"
        )
    if payload.get("ok") is True:
        body = payload.get("body", {})
        if not isinstance(body, Mapping):
            raise ProtocolError(
                f"response body must be an object, got {type(body).__name__}"
            )
        return dict(body)
    error = payload.get("error")
    if not isinstance(error, Mapping):
        raise ProtocolError("response is neither ok nor a typed error")
    type_name = str(error.get("type") or "RemoteOpError")
    message = str(error.get("message") or "remote operation failed")
    cls = _ERROR_TYPES.get(type_name)
    if cls is not None:
        raise cls(message)
    raise RemoteOpError(f"{type_name}: {message}")


def event_frame(event_payload: Mapping[str, object]) -> Dict[str, object]:
    return {"version": PROTOCOL_VERSION, "event": dict(event_payload)}


def decode_event(payload: Mapping[str, object]) -> Dict[str, object]:
    """The event payload of a pushed event frame (see events.py)."""
    if not isinstance(payload, Mapping) or "event" not in payload:
        raise ProtocolError("expected an event frame")
    if payload.get("version") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported event version {payload.get('version')!r}"
        )
    event = payload["event"]
    if not isinstance(event, Mapping):
        raise ProtocolError("event frame payload must be an object")
    return dict(event)
