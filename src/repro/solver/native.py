"""Native branch-and-bound matchers for property graphs.

ProvMark reduces three problems to (sub)graph matching (paper §3.4–3.5):

* **similarity** — structure-only isomorphism: same shape, labels, and
  incidence, ignoring properties;
* **generalization** — among all isomorphisms between two similar graphs,
  find one minimizing the number of mismatched properties, then keep only
  the properties that agree;
* **comparison** — an *approximate subgraph isomorphism*: embed the
  background graph into the foreground graph, minimizing the number of
  background properties with no matching foreground property (Listing 4's
  cost model).

The paper solves these with clingo; this module is the fast native engine.
:mod:`repro.solver.asp` executes the paper's actual ASP programs and is
cross-checked against this implementation in the test suite.

Performance architecture (see ROADMAP.md):

* candidate domains are pruned with label/degree indexes plus two rounds
  of Weisfeiler-Leman-style neighborhood-color refinement before search;
* group feasibility is incremental — each assignment step only touches
  parallel-edge groups incident to the newly mapped node, and the inverse
  node map is maintained alongside the forward map instead of being
  rebuilt;
* ``property_mismatch_cost`` is memoized per (element1, element2) pair
  for the lifetime of one search;
* wide parallel-edge groups are assigned optimally with the Hungarian
  algorithm instead of a greedy heuristic;
* generalization reuses the isomorphism found during similarity classing
  as a warm upper bound for the minimizing search;
* exact matchings are *decomposed* whenever equivalence is provable:
  WL-singleton anchors pin the cross-component constraints, the residual
  connected components are solved independently by first-fit over their
  WL classes, and the pieces are stitched into one matching — skipping
  the monolithic search's O(V1·V2 + E1·E2) preprocessing entirely (see
  the "decomposed exact matching" section below).

All of the above can be disabled with :func:`solver_optimizations` (and
the decomposition alone with :func:`solver_decomposition`) to measure
the speedup (``bench_solver_optimizations.py``); per-thread counters are
exposed through :func:`solver_stats`.
"""

from __future__ import annotations

import itertools
import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.graph.model import Edge, Node, PropertyGraph


class SolverLimit(Exception):
    """Raised when the backtracking search exceeds its step budget."""


# -- observability ----------------------------------------------------------


@dataclass
class SolverStats:
    """Per-thread counters making the optimization wins observable.

    ``steps`` — backtracking search steps; ``searches`` — number of
    :class:`_MatchSearch` runs; ``cost_cache_hits`` — memoized property
    mismatch lookups served from cache; ``matching_cache_hits`` — warm
    starts of the generalization search from a cached similarity matching.
    ``decomposed_components`` — independent sub-problems solved by the
    decomposed matcher instead of one monolithic search;
    ``component_steps_max`` — high-water mark of steps spent inside a
    single decomposed component (the largest piece actually searched).
    """

    steps: int = 0
    searches: int = 0
    cost_cache_hits: int = 0
    matching_cache_hits: int = 0
    decomposed_components: int = 0
    component_steps_max: int = 0

    def snapshot(self) -> "SolverStats":
        """Copy the counters and open a fresh high-water-mark window.

        The accumulators are windowed by subtraction in :meth:`delta`;
        ``component_steps_max`` cannot be, so taking a snapshot zeroes the
        live mark and the next :meth:`delta` reports the largest component
        searched *since this snapshot*.  Callers always pair the two
        (stage timing windows never nest within a thread).
        """
        copied = SolverStats(
            steps=self.steps,
            searches=self.searches,
            cost_cache_hits=self.cost_cache_hits,
            matching_cache_hits=self.matching_cache_hits,
            decomposed_components=self.decomposed_components,
            component_steps_max=self.component_steps_max,
        )
        self.component_steps_max = 0
        return copied

    def delta(self, since: "SolverStats") -> "SolverStats":
        return SolverStats(
            steps=self.steps - since.steps,
            searches=self.searches - since.searches,
            cost_cache_hits=self.cost_cache_hits - since.cost_cache_hits,
            matching_cache_hits=(
                self.matching_cache_hits - since.matching_cache_hits
            ),
            decomposed_components=(
                self.decomposed_components - since.decomposed_components
            ),
            # A high-water mark, not an accumulator: ``snapshot`` zeroed
            # the mark, so the live value is the window maximum.
            component_steps_max=self.component_steps_max,
        )


_tls = threading.local()


def solver_stats() -> SolverStats:
    """The calling thread's solver counters (created on first use)."""
    stats = getattr(_tls, "stats", None)
    if stats is None:
        stats = SolverStats()
        _tls.stats = stats
    return stats


def reset_solver_stats() -> SolverStats:
    """Zero the calling thread's counters and return the fresh object."""
    _tls.stats = SolverStats()
    return _tls.stats


_OPTIMIZATIONS_ENABLED = True


@contextmanager
def solver_optimizations(enabled: bool) -> Iterator[None]:
    """Toggle the fast-path machinery (for benchmarking the speedup).

    With ``enabled=False`` the engine falls back to the reference
    behavior: label/degree candidate scans, full group rescans per step,
    uncached property costs, no warm starts.  Results are identical
    either way; only the work done differs.  (Wide parallel-edge groups
    are assigned with the exact Hungarian solver in both modes —
    exactness is not a speed toggle.)
    """
    global _OPTIMIZATIONS_ENABLED
    previous = _OPTIMIZATIONS_ENABLED
    _OPTIMIZATIONS_ENABLED = enabled
    try:
        yield
    finally:
        _OPTIMIZATIONS_ENABLED = previous


def optimizations_enabled() -> bool:
    return _OPTIMIZATIONS_ENABLED


_DECOMPOSITION_ENABLED = True


@contextmanager
def solver_decomposition(enabled: bool) -> Iterator[None]:
    """Toggle the decomposed exact matcher (for benchmarking the speedup).

    With ``enabled=False`` every exact matching runs the monolithic
    branch-and-bound.  Results are identical either way — the decomposed
    path only activates when it can prove it reproduces the monolithic
    search's answer, and falls back otherwise.
    """
    global _DECOMPOSITION_ENABLED
    previous = _DECOMPOSITION_ENABLED
    _DECOMPOSITION_ENABLED = enabled
    try:
        yield
    finally:
        _DECOMPOSITION_ENABLED = previous


def decomposition_enabled() -> bool:
    return _DECOMPOSITION_ENABLED and _OPTIMIZATIONS_ENABLED


@dataclass
class Matching:
    """A solution: node/edge mapping from graph 1 into graph 2 plus cost."""

    node_map: Dict[str, str]
    edge_map: Dict[str, str]
    cost: int

    def mapped_elements(self) -> Dict[str, str]:
        combined = dict(self.node_map)
        combined.update(self.edge_map)
        return combined


def property_mismatch_cost(
    props1: Mapping[str, str], props2: Mapping[str, str]
) -> int:
    """Listing 4 cost: properties of element 1 absent or different in 2."""
    return sum(1 for key, value in props1.items() if props2.get(key) != value)


def _edge_group_key(graph: PropertyGraph, edge: Edge) -> Tuple[str, str, str]:
    return (edge.src, edge.tgt, edge.label)


def _group_edges(graph: PropertyGraph) -> Dict[Tuple[str, str, str], List[Edge]]:
    groups: Dict[Tuple[str, str, str], List[Edge]] = {}
    for edge in graph.edges():
        groups.setdefault(_edge_group_key(graph, edge), []).append(edge)
    return groups


def _group_keys_by_node(
    groups: Dict[Tuple[str, str, str], List[Edge]]
) -> Dict[str, List[Tuple[str, str, str]]]:
    """Index group keys by incident endpoint (self-loop keys appear once)."""
    index: Dict[str, List[Tuple[str, str, str]]] = {}
    for key in groups:
        src, tgt, _ = key
        index.setdefault(src, []).append(key)
        if tgt != src:
            index.setdefault(tgt, []).append(key)
    return index


def _cached_structure(graph: PropertyGraph, key: str, build: Callable[[], object]):
    """Per-graph derived-structure cache, validated by the graph version.

    Similarity classing runs many searches over the same trial graphs;
    caching label indexes, edge groups, WL colors, and search orders on
    the graph itself makes those searches share the preprocessing.  Any
    mutation bumps :attr:`PropertyGraph.version`, which discards the
    whole store (so e.g. edge groups never hold stale ``Edge`` objects
    after a ``set_prop``).
    """
    store = getattr(graph, "_matcher_cache", None)
    if store is None or store[0] != graph.version:
        store = (graph.version, {})
        graph._matcher_cache = store  # type: ignore[attr-defined]
    values = store[1]
    if key not in values:
        values[key] = build()
    return values[key]


def _wl_colors(graph: PropertyGraph) -> Dict[str, int]:
    """Weisfeiler-Leman neighborhood colors after ``_WL_ROUNDS`` rounds.

    Colors start from node labels and are refined over the multiset of
    (edge label, direction, neighbor color).  Each round's color is the
    hash of the canonical signature, so colors computed independently for
    two graphs are comparable within one process; hash collisions can only
    enlarge candidate sets (sound), never shrink them.
    """
    colors = {node.id: hash(("wl0", node.label)) for node in graph.nodes()}
    for _ in range(_WL_ROUNDS):
        refined = {}
        for node in graph.nodes():
            node_id = node.id
            signature = (
                colors[node_id],
                tuple(sorted(
                    (edge.label, colors[edge.tgt])
                    for edge in graph.out_edges(node_id)
                )),
                tuple(sorted(
                    (edge.label, colors[edge.src])
                    for edge in graph.in_edges(node_id)
                )),
            )
            refined[node_id] = hash(signature)
        colors = refined
    return colors


def _neighborhood_signature(
    graph: PropertyGraph, node_id: str
) -> Dict[Tuple[int, str, str], int]:
    """Counts per (direction, edge label, neighbor label) bucket."""
    counts: Dict[Tuple[int, str, str], int] = {}
    for edge in graph.out_edges(node_id):
        key = (0, edge.label, graph.node(edge.tgt).label)
        counts[key] = counts.get(key, 0) + 1
    for edge in graph.in_edges(node_id):
        key = (1, edge.label, graph.node(edge.src).label)
        counts[key] = counts.get(key, 0) + 1
    return counts


def _hungarian(cost_matrix: Sequence[Sequence[int]]) -> Tuple[int, List[int]]:
    """Min-cost assignment of rows onto columns (rows <= columns).

    Potential-based shortest-augmenting-path formulation, O(n1·n2²).
    Returns the total cost and the column chosen for each row.
    """
    n1 = len(cost_matrix)
    n2 = len(cost_matrix[0])
    INF = float("inf")
    u = [0.0] * (n1 + 1)
    v = [0.0] * (n2 + 1)
    match = [0] * (n2 + 1)  # match[j] = row (1-based) assigned to column j
    way = [0] * (n2 + 1)
    for i in range(1, n1 + 1):
        match[0] = i
        j0 = 0
        minv = [INF] * (n2 + 1)
        used = [False] * (n2 + 1)
        while True:
            used[j0] = True
            i0 = match[j0]
            delta = INF
            j1 = 0
            for j in range(1, n2 + 1):
                if used[j]:
                    continue
                cur = cost_matrix[i0 - 1][j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(n2 + 1):
                if used[j]:
                    u[match[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if match[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            match[j0] = match[j1]
            j0 = j1
    columns = [0] * n1
    for j in range(1, n2 + 1):
        if match[j]:
            columns[match[j] - 1] = j - 1
    total = sum(cost_matrix[i][columns[i]] for i in range(n1))
    return total, columns


def _optimal_group_assignment(
    edges1: Sequence[Edge],
    edges2: Sequence[Edge],
    pair_cost: Optional[Callable[[Edge, Edge], int]] = None,
) -> Tuple[int, List[Tuple[str, str]]]:
    """Min-cost injective assignment of parallel-edge group 1 into group 2.

    Groups are small (parallel edges with identical endpoints and label),
    so exhaustive permutation search is used up to a threshold; wider
    groups are solved exactly with the Hungarian algorithm.  Exactness is
    not part of the optimization toggle — both engine modes assign wide
    groups optimally.
    """
    if len(edges1) > len(edges2):
        raise ValueError("group 1 larger than group 2")
    cost_of = pair_cost or (
        lambda e1, e2: property_mismatch_cost(e1.props, e2.props)
    )
    cost_matrix = [[cost_of(e1, e2) for e2 in edges2] for e1 in edges1]
    n1, n2 = len(edges1), len(edges2)
    if n1 == 1:
        best_j = min(range(n2), key=lambda j: cost_matrix[0][j])
        return cost_matrix[0][best_j], [(edges1[0].id, edges2[best_j].id)]
    if n2 <= 6:
        best_cost: Optional[int] = None
        best_perm: Optional[Tuple[int, ...]] = None
        for perm in itertools.permutations(range(n2), n1):
            cost = sum(cost_matrix[i][perm[i]] for i in range(n1))
            if best_cost is None or cost < best_cost:
                best_cost, best_perm = cost, perm
        assert best_perm is not None and best_cost is not None
        pairs = [(edges1[i].id, edges2[best_perm[i]].id) for i in range(n1)]
        return best_cost, pairs
    total, columns = _hungarian(cost_matrix)
    return total, [
        (edges1[i].id, edges2[columns[i]].id) for i in range(n1)
    ]


_WL_ROUNDS = 2


def _connected_expansion_order(graph: PropertyGraph) -> List[str]:
    """Most-constrained-first node ordering, preferring connected expansion.

    The frontier of nodes adjacent to the placed prefix is maintained
    incrementally over a precomputed adjacency map (the naive version
    rescans every remaining node's edge lists per pick, which shows up
    as the dominant search-construction cost on larger targets).  Shared
    by the monolithic search and the decomposed matcher — both must place
    nodes in exactly this order for their results to coincide.
    """
    degree = {node.id: graph.degree(node.id) for node in graph.nodes()}
    neighbors: Dict[str, set] = {node_id: set() for node_id in degree}
    for edge in graph.edges():
        neighbors[edge.src].add(edge.tgt)
        neighbors[edge.tgt].add(edge.src)
    remaining = dict.fromkeys(degree)  # insertion-ordered set
    frontier: set = set()
    order: List[str] = []
    while remaining:
        pool = [n for n in remaining if n in frontier] or list(remaining)
        pick = max(pool, key=degree.__getitem__)
        order.append(pick)
        del remaining[pick]
        frontier.discard(pick)
        frontier.update(n for n in neighbors[pick] if n in remaining)
    return order


class _MatchSearch:
    """Backtracking search shared by isomorphism and subgraph embedding."""

    def __init__(
        self,
        g1: PropertyGraph,
        g2: PropertyGraph,
        exact: bool,
        minimize_cost: bool,
        max_steps: int,
        upper_bound: Optional[int] = None,
    ) -> None:
        self.g1 = g1
        self.g2 = g2
        self.exact = exact
        self.minimize_cost = minimize_cost
        self.max_steps = max_steps
        self.steps = 0
        self.stats = solver_stats()
        self.stats.searches += 1
        self.optimized = _OPTIMIZATIONS_ENABLED
        if self.optimized:
            self.groups1 = _cached_structure(
                g1, "groups", lambda: _group_edges(g1)
            )
            self.groups2 = _cached_structure(
                g2, "groups", lambda: _group_edges(g2)
            )
            self._gkeys1_by_node = _cached_structure(
                g1, "gkeys", lambda: _group_keys_by_node(self.groups1)
            )
            self._gkeys2_by_node = (
                _cached_structure(
                    g2, "gkeys", lambda: _group_keys_by_node(self.groups2)
                )
                if exact else {}
            )
        else:
            # Reference mode scans groups directly and never consults the
            # endpoint indexes, so it does not build them.
            self.groups1 = _group_edges(g1)
            self.groups2 = _group_edges(g2)
            self._gkeys1_by_node = {}
            self._gkeys2_by_node = {}
        self.best: Optional[Matching] = None
        # Prune any branch whose bound reaches this threshold; a cached
        # similarity matching seeds it at cost+1 so only equal-or-better
        # solutions are explored (the optimum is never cut off).
        self._prune_at: Optional[int] = (
            upper_bound + 1
            if upper_bound is not None and minimize_cost and self.optimized
            else None
        )
        self._pair_cost: Optional[Dict[Tuple[str, str], int]] = (
            {} if self.optimized else None
        )
        if self.optimized:
            self.nodes1 = _cached_structure(
                g1, "order", lambda: _connected_expansion_order(g1)
            )
            self.candidates = (
                self._refined_candidates()
                if exact
                else self._embedding_candidates()
            )
        else:
            self.nodes1 = _connected_expansion_order(g1)
            self.candidates = {
                node.id: self._node_candidates(node) for node in g1.nodes()
            }
        # Admissible lower bound: from depth d onward at least the minimum
        # candidate property cost of every remaining node must be paid.
        # Without it, symmetric nodes whose every pairing costs the same
        # (e.g. volatile timestamps on interchangeable Call nodes) force an
        # exhaustive permutation sweep.  The bound is only consulted by
        # cost-minimizing searches; similarity checks skip the O(E1·E2)
        # precomputation entirely.
        if not minimize_cost:
            self._suffix_min = [0] * (len(self.nodes1) + 1)
            return
        min_cost = []
        for node_id in self.nodes1:
            node = g1.node(node_id)
            costs = [
                self._pcost(node_id, node.props, v, g2.node(v).props)
                for v in self.candidates[node_id]
            ]
            min_cost.append(min(costs) if costs else 0)
        # Edge bound: an edge's cost is realized at the depth its second
        # endpoint is assigned; until then at least the cheapest
        # label-compatible g2 edge must be paid.
        position = {node_id: i for i, node_id in enumerate(self.nodes1)}
        edges2_by_label: Dict[str, List[Edge]] = {}
        for edge in g2.edges():
            edges2_by_label.setdefault(edge.label, []).append(edge)
        edge_min_at = [0] * (len(self.nodes1) + 1)
        for edge in g1.edges():
            compatible = edges2_by_label.get(edge.label, [])
            if not compatible:
                continue
            cheapest = min(
                self._pcost(edge.id, edge.props, other.id, other.props)
                for other in compatible
            )
            completion = max(position[edge.src], position[edge.tgt])
            edge_min_at[completion] += cheapest
        self._suffix_min = [0] * (len(min_cost) + 1)
        for index in range(len(min_cost) - 1, -1, -1):
            self._suffix_min[index] = (
                self._suffix_min[index + 1] + min_cost[index] + edge_min_at[index]
            )

    # -- memoized property costs -------------------------------------------

    def _pcost(
        self,
        id1: str,
        props1: Mapping[str, str],
        id2: str,
        props2: Mapping[str, str],
    ) -> int:
        """Property mismatch cost memoized per (element1, element2) pair.

        Node and edge identifiers share one namespace within a graph, so
        (g1 id, g2 id) keys cannot collide across element kinds.
        """
        cache = self._pair_cost
        if cache is None:
            return property_mismatch_cost(props1, props2)
        key = (id1, id2)
        cached = cache.get(key)
        if cached is not None:
            self.stats.cost_cache_hits += 1
            return cached
        cost = property_mismatch_cost(props1, props2)
        cache[key] = cost
        return cost

    def _edge_pair_cost(self, e1: Edge, e2: Edge) -> int:
        return self._pcost(e1.id, e1.props, e2.id, e2.props)

    # -- candidate computation --------------------------------------------

    def _node_candidates(self, node: Node) -> List[str]:
        """Reference O(|V1|·|V2|) label/degree scan (optimizations off)."""
        result = []
        deg1_out = len(self.g1.out_edges(node.id))
        deg1_in = len(self.g1.in_edges(node.id))
        for other in self.g2.nodes():
            if other.label != node.label:
                continue
            deg2_out = len(self.g2.out_edges(other.id))
            deg2_in = len(self.g2.in_edges(other.id))
            if self.exact:
                if deg1_out != deg2_out or deg1_in != deg2_in:
                    continue
            else:
                if deg1_out > deg2_out or deg1_in > deg2_in:
                    continue
            result.append(other.id)
        return result

    def _refined_candidates(self) -> Dict[str, List[str]]:
        """Exact-mode candidate domains from WL neighborhood refinement.

        An isomorphism can only map nodes of equal WL color, so each g1
        node's domain is the g2 color class of its own color.  Round one
        already subsumes the label + exact in/out-degree checks.  Colors
        and color classes are cached per graph (see :func:`_wl_colors`).
        """
        g1, g2 = self.g1, self.g2
        colors1 = _cached_structure(g1, "wl", lambda: _wl_colors(g1))
        colors2 = _cached_structure(g2, "wl", lambda: _wl_colors(g2))

        def color_classes() -> Dict[int, List[str]]:
            by_color: Dict[int, List[str]] = {}
            for node in g2.nodes():
                by_color.setdefault(colors2[node.id], []).append(node.id)
            return by_color

        by_color = _cached_structure(g2, "wl_classes", color_classes)
        empty: List[str] = []
        return {
            node.id: by_color.get(colors1[node.id], empty)
            for node in g1.nodes()
        }

    def _embedding_candidates(self) -> Dict[str, List[str]]:
        """Embedding-mode domains from a label index + containment test.

        WL equality is unsound for subgraph embedding (the host node may
        have extra structure), so the refinement is one-sided: every
        (direction, edge label, neighbor label) bucket of the pattern node
        must be covered by the candidate's bucket.  This subsumes the
        in/out-degree inequalities.
        """
        g1, g2 = self.g1, self.g2

        def label_index() -> Dict[str, List[str]]:
            index: Dict[str, List[str]] = {}
            for node in g2.nodes():
                index.setdefault(node.label, []).append(node.id)
            return index

        def signatures(graph: PropertyGraph):
            return lambda: {
                node.id: _neighborhood_signature(graph, node.id)
                for node in graph.nodes()
            }

        nodes2_by_label = _cached_structure(g2, "by_label", label_index)
        need_sig = _cached_structure(g1, "neigh", signatures(g1))
        have_sig = _cached_structure(g2, "neigh", signatures(g2))
        result: Dict[str, List[str]] = {}
        for node in g1.nodes():
            need = need_sig[node.id]
            domain: List[str] = []
            for other_id in nodes2_by_label.get(node.label, ()):
                have = have_sig[other_id]
                if all(
                    have.get(key, 0) >= count for key, count in need.items()
                ):
                    domain.append(other_id)
            result[node.id] = domain
        return result

    # -- feasibility and cost ---------------------------------------------

    def _group_feasible(
        self,
        node_map: Dict[str, str],
        inv: Dict[str, str],
        u: str,
        v: str,
    ) -> bool:
        """Check parallel-edge-group counts for edges between mapped nodes.

        Only the groups incident to the newly mapped ``u`` (and, in exact
        mode, to its image ``v``) can change feasibility, so only those are
        examined; the inverse node map ``inv`` is maintained incrementally
        by the search rather than rebuilt per step.
        """
        if self.optimized:
            keys1: Iterable[Tuple[str, str, str]] = (
                self._gkeys1_by_node.get(u, ())
            )
        else:
            keys1 = (
                key for key in self.groups1 if u in (key[0], key[1])
            )
        for key in keys1:
            src, tgt, label = key
            mapped_src = node_map.get(src)
            mapped_tgt = node_map.get(tgt)
            if mapped_src is None or mapped_tgt is None:
                continue
            edges2 = self.groups2.get((mapped_src, mapped_tgt, label))
            count2 = len(edges2) if edges2 else 0
            count1 = len(self.groups1[key])
            if self.exact:
                if count2 != count1:
                    return False
            elif count2 < count1:
                return False
        if self.exact:
            # Reverse direction: mapped g2 nodes must not have extra edges
            # between them that g1 lacks.
            if self.optimized:
                keys2: Iterable[Tuple[str, str, str]] = (
                    self._gkeys2_by_node.get(v, ())
                )
            else:
                keys2 = (
                    key for key in self.groups2 if v in (key[0], key[1])
                )
            for key in keys2:
                src2, tgt2, label = key
                inv_src = inv.get(src2)
                inv_tgt = inv.get(tgt2)
                if inv_src is None or inv_tgt is None:
                    continue
                edges1 = self.groups1.get((inv_src, inv_tgt, label))
                count1 = len(edges1) if edges1 else 0
                if count1 != len(self.groups2[key]):
                    return False
        return True

    def _edge_cost_for(
        self, node_map: Dict[str, str], u: str
    ) -> Tuple[int, List[Tuple[str, str]]]:
        """Cost and pairing of edge groups completed by mapping node ``u``."""
        total = 0
        pairs: List[Tuple[str, str]] = []
        if self.optimized:
            keys: Iterable[Tuple[str, str, str]] = (
                self._gkeys1_by_node.get(u, ())
            )
        else:
            keys = (key for key in self.groups1 if u in (key[0], key[1]))
        for key in keys:
            src, tgt, label = key
            # A self-loop group completes on its single endpoint; a normal
            # group completes when its second endpoint is mapped.
            other = tgt if u == src else src
            if other != u and other not in node_map:
                continue
            if src == tgt and u != src:
                continue
            edges1 = self.groups1[key]
            mapped_key = (node_map[src], node_map[tgt], label)
            edges2 = self.groups2.get(mapped_key, [])
            if len(edges1) == 1 and len(edges2) == 1:
                # By far the most common shape: no assignment to optimize.
                e1, e2 = edges1[0], edges2[0]
                total += self._pcost(e1.id, e1.props, e2.id, e2.props)
                pairs.append((e1.id, e2.id))
                continue
            cost, group_pairs = _optimal_group_assignment(
                edges1, edges2, self._edge_pair_cost
            )
            total += cost
            pairs.extend(group_pairs)
        return total, pairs

    # -- search -------------------------------------------------------------

    def run(self) -> Optional[Matching]:
        try:
            if self.exact:
                if self.g1.node_count != self.g2.node_count:
                    return None
                if self.g1.edge_count != self.g2.edge_count:
                    return None
            else:
                if self.g1.node_count > self.g2.node_count:
                    return None
                if self.g1.edge_count > self.g2.edge_count:
                    return None
            if any(not cands for cands in self.candidates.values()):
                return None
            # The DFS recurses one frame per g1 node; scalability graphs
            # (scale512 ~ 1000+ nodes) overflow CPython's default 1000
            # frame limit.  Bump-only: the limit is process-global and
            # concurrent searches may be running on other threads.
            needed = 1000 + 8 * len(self.nodes1)
            if sys.getrecursionlimit() < needed:
                sys.setrecursionlimit(needed)
            self._search(0, {}, {}, {}, 0)
            return self.best
        finally:
            self.stats.steps += self.steps

    def _search(
        self,
        depth: int,
        node_map: Dict[str, str],
        inv: Dict[str, str],
        edge_map: Dict[str, str],
        cost: int,
    ) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise SolverLimit(
                f"matching exceeded {self.max_steps} search steps"
            )
        if self.best is not None and not self.minimize_cost:
            return
        if self.minimize_cost:
            limit = (
                self.best.cost if self.best is not None else self._prune_at
            )
            if limit is not None and cost + self._suffix_min[depth] >= limit:
                return
        if depth == len(self.nodes1):
            if self.best is None or cost < self.best.cost:
                self.best = Matching(dict(node_map), dict(edge_map), cost)
            return
        u = self.nodes1[depth]
        props_u = self.g1.node(u).props
        candidates = [v for v in self.candidates[u] if v not in inv]
        if self.minimize_cost:
            # Cheapest-first ordering finds a low-cost solution early, after
            # which branch-and-bound prunes the symmetric alternatives
            # (e.g. OPUS's many interchangeable Env nodes).
            candidates.sort(
                key=lambda v: self._pcost(
                    u, props_u, v, self.g2.node(v).props
                )
            )
        for v in candidates:
            node_map[u] = v
            inv[v] = u
            if not self._group_feasible(node_map, inv, u, v):
                del node_map[u]
                del inv[v]
                continue
            node_cost = self._pcost(u, props_u, v, self.g2.node(v).props)
            edge_cost, pairs = self._edge_cost_for(node_map, u)
            for edge1_id, edge2_id in pairs:
                edge_map[edge1_id] = edge2_id
            self._search(
                depth + 1, node_map, inv, edge_map, cost + node_cost + edge_cost
            )
            for edge1_id, _ in pairs:
                del edge_map[edge1_id]
            del node_map[u]
            del inv[v]


# -- decomposed exact matching ---------------------------------------------
#
# The monolithic branch-and-bound treats the two trial graphs as one big
# matching problem; its per-search preprocessing (candidate cost lists and
# edge bounds) is O(V1·V2 + E1·E2), which is what grows superlinearly on
# the scalability sweep.  The decomposed matcher instead partitions the
# problem: WL-singleton nodes are *anchors* whose image is forced, and the
# residual graph splits into connected components that are solved
# independently — each component's nodes take the first feasible candidate
# from their WL color class, exactly as the monolithic DFS would — and the
# per-piece results are stitched into one matching (parallel-edge groups
# are still assigned with the shared Hungarian machinery, property costs
# are still memoized per pair).
#
# Byte-identical results are guaranteed by construction, not by hope:
#
# * the stitched pass places nodes in the engine's canonical
#   ``_connected_expansion_order`` and takes, for each node, the first
#   not-yet-used candidate of its WL class (g2 insertion order) passing
#   the same parallel-edge-group feasibility check the DFS applies — i.e.
#   it follows the DFS's leftmost branch; if that branch completes, it is
#   precisely the first complete solution the DFS would report;
# * for *first-solution* searches (similarity classing) that is already
#   the full answer;
# * for *cost-minimizing* searches (generalization) the pass only runs
#   when a uniformity certificate proves every complete matching has the
#   same total cost — each g1 element's property values must agree with
#   either all or none of its WL-class candidates (volatile identifiers
#   such as inode numbers, pids, and timestamps never coincide across
#   trial boots, so the certificate holds on exactly the workloads whose
#   interchangeable components blow the monolithic search up) — making
#   the leftmost complete solution minimal, which is the one the
#   monolithic branch-and-bound keeps (strict-improvement pruning);
# * in every other situation (class mismatch, non-uniform costs, a stuck
#   leftmost branch) the matcher falls back to the monolithic search.
#
# ``SolverStats.decomposed_components`` counts the independent pieces so
# the win shows up in every report; ``component_steps_max`` records the
# largest single piece (for camflow's scaleN this stays at the spoke size
# while ``solver_steps`` grows linearly with N).

#: sentinel: the decomposed matcher cannot prove equivalence — run the
#: monolithic search instead.
_FALLBACK = object()


def _node_color_classes(graph: PropertyGraph) -> Dict[int, List[str]]:
    """g2-side WL color classes in node insertion order (cached)."""
    colors = _cached_structure(graph, "wl", lambda: _wl_colors(graph))

    def build() -> Dict[int, List[str]]:
        by_color: Dict[int, List[str]] = {}
        for node in graph.nodes():
            by_color.setdefault(colors[node.id], []).append(node.id)
        return by_color

    return _cached_structure(graph, "wl_classes", build)


def _class_prop_profiles(
    graph: PropertyGraph,
) -> Dict[int, Dict[Tuple[str, str], int]]:
    """Per WL class: how many members carry each (key, value) property."""
    colors = _cached_structure(graph, "wl", lambda: _wl_colors(graph))

    def build() -> Dict[int, Dict[Tuple[str, str], int]]:
        profiles: Dict[int, Dict[Tuple[str, str], int]] = {}
        for node in graph.nodes():
            profile = profiles.setdefault(colors[node.id], {})
            for item in node.props.items():
                profile[item] = profile.get(item, 0) + 1
        return profiles

    return _cached_structure(graph, "wl_profiles", build)


def _edge_class_profiles(
    graph: PropertyGraph,
) -> Dict[Tuple[int, int, str], Tuple[int, Dict[Tuple[str, str], int]]]:
    """Per (src color, tgt color, label) edge class: size + property counts."""
    colors = _cached_structure(graph, "wl", lambda: _wl_colors(graph))

    def build():
        classes: Dict[Tuple[int, int, str], List] = {}
        for edge in graph.edges():
            key = (colors[edge.src], colors[edge.tgt], edge.label)
            entry = classes.setdefault(key, [0, {}])
            entry[0] += 1
            profile = entry[1]
            for item in edge.props.items():
                profile[item] = profile.get(item, 0) + 1
        return {key: (entry[0], entry[1]) for key, entry in classes.items()}

    return _cached_structure(graph, "wl_edge_profiles", build)


def _class_edge_groups(
    graph: PropertyGraph,
) -> Dict[Tuple[int, int, str], Dict[Tuple[str, str], List[Edge]]]:
    """Per edge class: its parallel-edge groups by endpoint pair (cached)."""
    colors = _cached_structure(graph, "wl", lambda: _wl_colors(graph))

    def build():
        by_class: Dict[
            Tuple[int, int, str], Dict[Tuple[str, str], List[Edge]]
        ] = {}
        for edge in graph.edges():
            key = (colors[edge.src], colors[edge.tgt], edge.label)
            by_class.setdefault(key, {}).setdefault(
                (edge.src, edge.tgt), []
            ).append(edge)
        return by_class

    return _cached_structure(graph, "wl_class_groups", build)


def _edge_group_uniform_classes(
    graph: PropertyGraph,
) -> Set[Tuple[int, int, str]]:
    """Edge classes whose parallel-edge groups are property-interchangeable.

    A class qualifies when every endpoint-pair group carries an identical
    multiset of property fingerprints (e.g. each endpoint pair holds one
    ``used/open`` plus one ``used/unlink`` edge).  Then the per-group
    optimal assignment cost is the same whichever same-class group a node
    matching selects, even though the *pooled* per-item counts are mixed.
    """

    def build() -> Set[Tuple[int, int, str]]:
        uniform: Set[Tuple[int, int, str]] = set()
        for key, by_pair in _class_edge_groups(graph).items():
            multisets = {
                tuple(
                    sorted(
                        tuple(sorted(edge.props.items())) for edge in edges
                    )
                )
                for edges in by_pair.values()
            }
            if len(multisets) == 1:
                uniform.add(key)
        return uniform

    return _cached_structure(graph, "wl_edge_group_uniform", build)


class _ValuePlan:
    """A value-structured edge class: its cost varies through one key only.

    Tier 3 of the cost model (see :func:`_minimize_cost_plan`).  Every
    edge of the class carries the volatile ``key`` (e.g. CamFlow's
    ``cf:jiffies``); stripping it leaves each group with pairwise-distinct
    fingerprints over one shared keyset — the group's *slots* — and every
    group (both graphs) carries the same slot set.  A group is then a
    vector ``slot -> key value``, and pairing g1 group ``v`` with g2 group
    ``w`` costs exactly the Hamming distance between the slot-aligned
    vectors: misaligning slots trades >= 1 stripped mismatch per edge for
    <= 1 volatile match, so the slot-aligned assignment is always optimal.

    The minimal total mismatch count is then bounded below per slot by
    ``remaining_pairings - sum_v min(a[v], b[v])`` over the slot's
    remaining value counts — a potential no pairing can decrease.
    :meth:`pin` consumes a pairing only when every slot's potential is
    preserved; a greedy run that completes under that rule achieves every
    slot's bound simultaneously, hence the true minimum.
    """

    __slots__ = ("g1_vectors", "g2_vectors", "counts")

    def __init__(
        self,
        g1_vectors: Dict[Tuple[str, str], Tuple[str, ...]],
        g2_vectors: Dict[Tuple[str, str], Tuple[str, ...]],
        slot_count: int,
    ) -> None:
        self.g1_vectors = g1_vectors
        self.g2_vectors = g2_vectors
        self.counts: List[Tuple[Dict[str, int], Dict[str, int]]] = [
            ({}, {}) for _ in range(slot_count)
        ]
        for vector in g1_vectors.values():
            for slot, value in enumerate(vector):
                a = self.counts[slot][0]
                a[value] = a.get(value, 0) + 1
        for vector in g2_vectors.values():
            for slot, value in enumerate(vector):
                b = self.counts[slot][1]
                b[value] = b.get(value, 0) + 1

    def pin(
        self, vec1: Tuple[str, ...], vec2: Tuple[str, ...]
    ) -> Optional[List[Tuple]]:
        """Consume one group pairing; None when it cannot stay minimal.

        Per slot: an equal-value pin always preserves the slot potential;
        an unequal pin preserves it exactly when both sides hold a surplus
        of their value.  Rolls itself back and returns None on the first
        slot that would raise its potential.  Returns undo tokens.
        """
        applied: List[Tuple] = []
        for slot, (val1, val2) in enumerate(zip(vec1, vec2)):
            a, b = self.counts[slot]
            if val1 == val2:
                a[val1] -= 1
                b[val1] -= 1
                applied.append((a, val1, b, val1))
            elif a.get(val1, 0) > b.get(val1, 0) and b.get(val2, 0) > a.get(
                val2, 0
            ):
                a[val1] -= 1
                b[val2] -= 1
                applied.append((a, val1, b, val2))
            else:
                for undo_a, key_a, undo_b, key_b in applied:
                    undo_a[key_a] += 1
                    undo_b[key_b] += 1
                return None
        return applied


def _value_structured_plan(
    g1: PropertyGraph, g2: PropertyGraph, class_key: Tuple[int, int, str]
) -> Optional[_ValuePlan]:
    """Build the tier-3 plan for one edge class, or None when unprovable."""
    groups1 = _class_edge_groups(g1).get(class_key)
    groups2 = _class_edge_groups(g2).get(class_key)
    if not groups1 or not groups2:
        return None
    # Candidate keys: those whose items differ between two g2 groups'
    # fingerprint multisets (typically exactly one, e.g. cf:jiffies).
    fingerprints = [
        tuple(sorted(tuple(sorted(e.props.items())) for e in edges))
        for edges in groups2.values()
    ]
    reference = fingerprints[0]
    candidate_keys: Set[str] = set()
    for other in fingerprints[1:]:
        if other != reference:
            flat_ref = set(itertools.chain.from_iterable(reference))
            flat_other = set(itertools.chain.from_iterable(other))
            candidate_keys.update(
                item[0] for item in flat_ref ^ flat_other
            )
            break
    for key in sorted(candidate_keys):
        slots_and_vectors = _slot_valued_groups(groups2, key, slots=None)
        if slots_and_vectors is None:
            continue
        slots, vectors2 = slots_and_vectors
        # The Hamming cost lemma needs distinct same-keyset slots: two
        # misaligned edges must each pay a stripped mismatch.
        keysets = {tuple(item[0] for item in slot) for slot in slots}
        if len(keysets) != 1:
            continue
        from_g1 = _slot_valued_groups(groups1, key, slots=slots)
        if from_g1 is None:
            continue
        return _ValuePlan(from_g1[1], vectors2, len(slots))
    return None


def _slot_valued_groups(
    groups: Dict[Tuple[str, str], List[Edge]],
    key: str,
    slots: Optional[Tuple[Tuple, ...]],
) -> Optional[Tuple[Tuple[Tuple, ...], Dict[Tuple[str, str], Tuple[str, ...]]]]:
    """Per-group slot-aligned values of ``key``; None when the shape fails.

    Every edge must carry ``key``; within a group the key-stripped
    fingerprints must be pairwise distinct (they define the slot order),
    and every group must present exactly the same slot set — the first
    group's when ``slots`` is None (the g2 side), the given one otherwise
    (the g1 side, forcing both graphs onto one canonical alignment).
    """
    vectors: Dict[Tuple[str, str], Tuple[str, ...]] = {}
    for pair, edges in groups.items():
        slot_values = []
        for edge in edges:
            value = edge.props.get(key)
            if value is None:
                return None
            stripped = tuple(
                sorted(
                    item for item in edge.props.items() if item[0] != key
                )
            )
            slot_values.append((stripped, value))
        slot_values.sort()
        group_slots = tuple(stripped for stripped, _ in slot_values)
        if len(set(group_slots)) != len(group_slots):
            return None
        if slots is None:
            slots = group_slots
        elif group_slots != slots:
            return None
        vectors[pair] = tuple(value for _, value in slot_values)
    return slots, vectors


def _minimize_cost_plan(
    g1: PropertyGraph, g2: PropertyGraph
) -> Optional[Dict[Tuple[int, int, str], _ValuePlan]]:
    """Prove the stitched matching can be cost-minimal; None = no proof.

    Three tiers, coarse to fine:

    1. *Pooled uniformity* — each g1 node's/edge's (key, value) pairs are
       carried by all or none of its WL-class candidates, so ``pcost`` is
       constant over every candidate domain and all complete matchings
       cost the same (the DFS-leftmost one is minimal).
    2. *Interchangeable groups* — an edge class failing tier 1 still has
       constant cost when all its parallel-edge groups carry identical
       fingerprint multisets (:func:`_edge_group_uniform_classes`).
    3. *Value-structured collisions* — cost varies through exactly one key
       (e.g. CamFlow's ``cf:jiffies`` colliding across trials at scale512);
       the returned :class:`_ValuePlan` lets the greedy consume pairings
       only when the class's minimal mismatch count is preserved.

    Any shape outside these tiers returns None and the caller falls back
    to the monolithic search.  Nodes get tier 1 only: a node-level
    collision redirects the DFS's pcost-sorted candidate order itself,
    which first-fit stitching cannot reproduce.
    """
    colors1 = _cached_structure(g1, "wl", lambda: _wl_colors(g1))
    classes2 = _node_color_classes(g2)
    profiles2 = _class_prop_profiles(g2)
    for node in g1.nodes():
        members = classes2.get(colors1[node.id])
        if not members:
            return None
        size = len(members)
        if size == 1:
            continue
        profile = profiles2.get(colors1[node.id], {})
        for item in node.props.items():
            count = profile.get(item, 0)
            if count != 0 and count != size:
                return None
    edge_profiles2 = _edge_class_profiles(g2)
    failing: Set[Tuple[int, int, str]] = set()
    for edge in g1.edges():
        key = (colors1[edge.src], colors1[edge.tgt], edge.label)
        entry = edge_profiles2.get(key)
        if entry is None:
            return None
        size, profile = entry
        if size == 1 or key in failing:
            continue
        for item in edge.props.items():
            count = profile.get(item, 0)
            if count != 0 and count != size:
                failing.add(key)
                break
    plans: Dict[Tuple[int, int, str], _ValuePlan] = {}
    if not failing:
        return plans
    uniform_groups = _edge_group_uniform_classes(g2)
    for key in failing:
        if key in uniform_groups:
            continue
        plan = _value_structured_plan(g1, g2, key)
        if plan is None:
            return None
        plans[key] = plan
    return plans


def _exact_group_feasible(
    groups1: Dict[Tuple[str, str, str], List[Edge]],
    groups2: Dict[Tuple[str, str, str], List[Edge]],
    gkeys1: Dict[str, List[Tuple[str, str, str]]],
    gkeys2: Dict[str, List[Tuple[str, str, str]]],
    node_map: Dict[str, str],
    inv: Dict[str, str],
    u: str,
    v: str,
) -> bool:
    """Exact-mode parallel-edge-group feasibility of mapping ``u -> v``.

    Mirrors ``_MatchSearch._group_feasible`` (optimized, exact) so the
    stitched pass accepts and rejects candidates exactly as the DFS does.
    ``node_map``/``inv`` must already contain the tentative ``u -> v``.
    """
    for key in gkeys1.get(u, ()):
        src, tgt, label = key
        mapped_src = node_map.get(src)
        mapped_tgt = node_map.get(tgt)
        if mapped_src is None or mapped_tgt is None:
            continue
        edges2 = groups2.get((mapped_src, mapped_tgt, label))
        count2 = len(edges2) if edges2 else 0
        if count2 != len(groups1[key]):
            return False
    for key in gkeys2.get(v, ()):
        src2, tgt2, label = key
        inv_src = inv.get(src2)
        inv_tgt = inv.get(tgt2)
        if inv_src is None or inv_tgt is None:
            continue
        edges1 = groups1.get((inv_src, inv_tgt, label))
        count1 = len(edges1) if edges1 else 0
        if count1 != len(groups2[key]):
            return False
    return True


def _pin_value_groups(
    plans: Dict[Tuple[int, int, str], "_ValuePlan"],
    colors1: Dict[str, int],
    gkeys1: Dict[str, List[Tuple[str, str, str]]],
    node_map: Dict[str, str],
    u: str,
) -> bool:
    """Consume the group pairings newly fixed by mapping ``u``.

    Mapping ``u`` pins every incident parallel-edge group whose other
    endpoint is already mapped.  For groups in a value-structured class
    the pairing must keep the class's minimal mismatch count reachable
    (:meth:`_ValuePlan.pin`); one failed pin rejects the whole candidate
    and rolls this call's pins back.  The potential argument makes the
    rejection safe: a pin that raises the minimum admits *no* min-cost
    completion, so the DFS skips the same candidate.  ``node_map`` must
    already contain the tentative ``u -> v``.
    """
    applied: List[Tuple] = []
    for gkey in gkeys1.get(u, ()):
        src, tgt, label = gkey
        mapped_src = node_map.get(src)
        mapped_tgt = node_map.get(tgt)
        if mapped_src is None or mapped_tgt is None:
            continue
        plan = plans.get((colors1[src], colors1[tgt], label))
        if plan is None:
            continue
        vec1 = plan.g1_vectors.get((src, tgt))
        vec2 = plan.g2_vectors.get((mapped_src, mapped_tgt))
        tokens = (
            plan.pin(vec1, vec2)
            if vec1 is not None and vec2 is not None
            else None
        )
        if tokens is None:
            for a, key_a, b, key_b in applied:
                a[key_a] += 1
                b[key_b] += 1
            return False
        applied.extend(tokens)
    return True


def _residual_components(g1: PropertyGraph) -> List[List[str]]:
    """Connected components of g1 minus its anchor (WL-singleton) nodes.

    These are the independent sub-problems the decomposed matcher solves;
    cached per graph version (anchors are a property of g1 alone).
    """
    def build() -> List[List[str]]:
        classes1 = _node_color_classes(g1)
        colors1 = _cached_structure(g1, "wl", lambda: _wl_colors(g1))
        anchors = {
            node.id
            for node in g1.nodes()
            if len(classes1[colors1[node.id]]) == 1
        }
        adjacency: Dict[str, List[str]] = {
            node.id: [] for node in g1.nodes()
        }
        for edge in g1.edges():
            adjacency[edge.src].append(edge.tgt)
            adjacency[edge.tgt].append(edge.src)
        components: List[List[str]] = []
        seen: set = set()
        for node in g1.nodes():
            node_id = node.id
            if node_id in anchors or node_id in seen:
                continue
            seen.add(node_id)
            component = [node_id]
            queue = [node_id]
            while queue:
                current = queue.pop()
                for neighbor in adjacency[current]:
                    if neighbor in anchors or neighbor in seen:
                        continue
                    seen.add(neighbor)
                    component.append(neighbor)
                    queue.append(neighbor)
            components.append(component)
        return components

    return _cached_structure(g1, "residual_components", build)


def _decomposed_isomorphism(
    g1: PropertyGraph,
    g2: PropertyGraph,
    minimize_cost: bool,
    max_steps: int,
):
    """Stitch per-component first-fit matchings into the DFS's answer.

    Returns a :class:`Matching` when the decomposition provably reproduces
    the monolithic search's result, or :data:`_FALLBACK` when it cannot.
    """
    if g1.node_count != g2.node_count or g1.edge_count != g2.edge_count:
        return _FALLBACK
    colors1 = _cached_structure(g1, "wl", lambda: _wl_colors(g1))
    classes1 = _node_color_classes(g1)
    classes2 = _node_color_classes(g2)
    if len(classes1) != len(classes2):
        return _FALLBACK
    for color, members in classes1.items():
        others = classes2.get(color)
        if others is None or len(others) != len(members):
            return _FALLBACK
    plans: Dict[Tuple[int, int, str], _ValuePlan] = {}
    if minimize_cost:
        built = _minimize_cost_plan(g1, g2)
        if built is None:
            return _FALLBACK
        plans = built
    order = _cached_structure(
        g1, "order", lambda: _connected_expansion_order(g1)
    )
    if len(order) > max_steps:
        return _FALLBACK
    groups1 = _cached_structure(g1, "groups", lambda: _group_edges(g1))
    groups2 = _cached_structure(g2, "groups", lambda: _group_edges(g2))
    gkeys1 = _cached_structure(
        g1, "gkeys", lambda: _group_keys_by_node(groups1)
    )
    gkeys2 = _cached_structure(
        g2, "gkeys", lambda: _group_keys_by_node(groups2)
    )
    node_map: Dict[str, str] = {}
    inv: Dict[str, str] = {}
    # Per-class scan position: class members are consumed left to right
    # and never released (no backtracking), so the pointer only advances.
    scan_from: Dict[int, int] = {}
    for u in order:
        color = colors1[u]
        members = classes2[color]
        index = scan_from.get(color, 0)
        while index < len(members) and members[index] in inv:
            index += 1
        scan_from[color] = index
        chosen: Optional[str] = None
        j = index
        while j < len(members):
            v = members[j]
            if v not in inv:
                node_map[u] = v
                inv[v] = u
                if _exact_group_feasible(
                    groups1, groups2, gkeys1, gkeys2, node_map, inv, u, v
                ) and (
                    not plans
                    or _pin_value_groups(plans, colors1, gkeys1, node_map, u)
                ):
                    chosen = v
                    break
                del node_map[u]
                del inv[v]
            j += 1
        if chosen is None:
            # The DFS would backtrack across components here; stitching
            # cannot replicate that, so hand the pair to the full search.
            return _FALLBACK
    # The leftmost branch completed: compose the edge map and total cost
    # group by group with the shared assignment machinery.
    stats = solver_stats()
    pair_cost: Dict[Tuple[str, str], int] = {}

    def pcost(
        id1: str, props1: Mapping[str, str], id2: str, props2: Mapping[str, str]
    ) -> int:
        key = (id1, id2)
        cached = pair_cost.get(key)
        if cached is not None:
            stats.cost_cache_hits += 1
            return cached
        cost = property_mismatch_cost(props1, props2)
        pair_cost[key] = cost
        return cost

    total = 0
    for node in g1.nodes():
        image = g2.node(node_map[node.id])
        total += pcost(node.id, node.props, image.id, image.props)
    edge_map: Dict[str, str] = {}
    for key, edges1 in groups1.items():
        src, tgt, label = key
        edges2 = groups2.get((node_map[src], node_map[tgt], label))
        if edges2 is None or len(edges2) != len(edges1):
            return _FALLBACK  # unreachable: feasibility checked per step
        if len(edges1) == 1:
            e1, e2 = edges1[0], edges2[0]
            total += pcost(e1.id, e1.props, e2.id, e2.props)
            edge_map[e1.id] = e2.id
            continue
        group_cost, pairs = _optimal_group_assignment(
            edges1,
            edges2,
            lambda e1, e2: pcost(e1.id, e1.props, e2.id, e2.props),
        )
        total += group_cost
        edge_map.update(pairs)
    components = _residual_components(g1)
    stats.searches += 1
    stats.steps += len(order)
    stats.decomposed_components += len(components)
    if components:
        largest = max(len(component) for component in components)
        if largest > stats.component_steps_max:
            stats.component_steps_max = largest
    return Matching(node_map, edge_map, total)


DEFAULT_MAX_STEPS = 2_000_000


def find_isomorphism(
    g1: PropertyGraph,
    g2: PropertyGraph,
    minimize_properties: bool = False,
    max_steps: int = DEFAULT_MAX_STEPS,
    upper_bound: Optional[int] = None,
) -> Optional[Matching]:
    """Find a structure-preserving bijection between ``g1`` and ``g2``.

    With ``minimize_properties`` the search continues past the first
    solution and returns the isomorphism with the fewest property
    mismatches (the generalization objective).  ``upper_bound`` seeds the
    branch-and-bound with the cost of a known valid matching (e.g. from a
    previous similarity check) so pruning starts immediately; the result
    is identical to the unseeded search.  Returns ``None`` when the graphs
    are not similar.
    """
    if g1.is_empty() and g2.is_empty():
        return Matching({}, {}, 0)
    if _OPTIMIZATIONS_ENABLED and _DECOMPOSITION_ENABLED:
        stitched = _decomposed_isomorphism(
            g1, g2, minimize_properties, max_steps
        )
        if stitched is not _FALLBACK:
            return stitched
    search = _MatchSearch(
        g1, g2, exact=True, minimize_cost=minimize_properties,
        max_steps=max_steps, upper_bound=upper_bound,
    )
    return search.run()


def _signature_of(graph: PropertyGraph) -> Tuple:
    """Structural signature, cached per graph version when optimizing."""
    if not _OPTIMIZATIONS_ENABLED:
        return graph.structural_signature()
    return _cached_structure(graph, "signature", graph.structural_signature)


def are_similar(
    g1: PropertyGraph, g2: PropertyGraph, max_steps: int = DEFAULT_MAX_STEPS
) -> bool:
    """Paper §3.4: same shape and labels, properties ignored."""
    if _signature_of(g1) != _signature_of(g2):
        return False
    return find_isomorphism(g1, g2, max_steps=max_steps) is not None


def embed_subgraph(
    g1: PropertyGraph,
    g2: PropertyGraph,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Optional[Matching]:
    """Min-cost embedding of ``g1`` into ``g2`` (Listing 4).

    Finds an injective mapping of every node and edge of ``g1`` onto nodes
    and edges of ``g2`` preserving labels and incidence, minimizing the
    number of ``g1`` properties with no matching ``g2`` property.  Extra
    ``g2`` structure is allowed (non-induced embedding).
    """
    if g1.is_empty():
        return Matching({}, {}, 0)
    search = _MatchSearch(
        g1, g2, exact=False, minimize_cost=True, max_steps=max_steps
    )
    return search.run()


def generalize_pair(
    g1: PropertyGraph,
    g2: PropertyGraph,
    gid: Optional[str] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    warm: Optional[Matching] = None,
) -> Optional[PropertyGraph]:
    """Paper §3.4: generalize two similar graphs into one.

    Searches for the isomorphism minimizing property mismatches, then keeps
    exactly the properties on which both graphs agree (discarding volatile
    values such as timestamps and identifiers).  Returns ``None`` when the
    graphs are not similar.  Element ids of ``g1`` are kept.

    ``warm`` supplies a matching already found between the same pair (the
    similarity-classing step computes one); its cost becomes the initial
    branch-and-bound upper bound, which prunes most of the re-search while
    provably returning the same minimal matching.
    """
    bound: Optional[int] = None
    if warm is not None and _OPTIMIZATIONS_ENABLED:
        solver_stats().matching_cache_hits += 1
        bound = warm.cost
    matching = find_isomorphism(
        g1, g2, minimize_properties=True, max_steps=max_steps,
        upper_bound=bound,
    )
    if matching is None:
        return None
    out = PropertyGraph(gid or g1.gid)
    for node in g1.nodes():
        other = g2.node(matching.node_map[node.id])
        props = {
            key: value
            for key, value in node.props.items()
            if other.props.get(key) == value
        }
        out.add_node(node.id, node.label, props)
    for edge in g1.edges():
        other_edge = g2.edge(matching.edge_map[edge.id])
        props = {
            key: value
            for key, value in edge.props.items()
            if other_edge.props.get(key) == value
        }
        out.add_edge(edge.id, edge.src, edge.tgt, edge.label, props)
    return out


DUMMY_LABEL = "Dummy"


def subtract_background(
    foreground: PropertyGraph,
    background: PropertyGraph,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Optional[PropertyGraph]:
    """Paper §3.5: remove the background embedding from the foreground.

    Returns the difference graph — the benchmark *target graph* — or
    ``None`` when the background cannot be embedded into the foreground
    (a failed comparison, reported upstream as a mismatched run).

    Matched nodes that anchor unmatched edges are retained as ``Dummy``
    placeholder nodes (the paper's green/gray nodes), so the result is a
    well-formed graph.
    """
    matching = embed_subgraph(background, foreground, max_steps=max_steps)
    if matching is None:
        return None
    matched_nodes = set(matching.node_map.values())
    matched_edges = set(matching.edge_map.values())
    result = PropertyGraph(foreground.gid + "_target")
    kept_edges = [
        edge for edge in foreground.edges() if edge.id not in matched_edges
    ]
    kept_nodes = {
        node.id for node in foreground.nodes() if node.id not in matched_nodes
    }
    anchors = set()
    for edge in kept_edges:
        for endpoint in (edge.src, edge.tgt):
            if endpoint not in kept_nodes:
                anchors.add(endpoint)
    for node in foreground.nodes():
        if node.id in kept_nodes:
            result.add_node(node.id, node.label, node.props)
        elif node.id in anchors:
            result.add_node(node.id, DUMMY_LABEL, {"was": node.label})
    for edge in kept_edges:
        result.add_edge(edge.id, edge.src, edge.tgt, edge.label, edge.props)
    return result


def partition_similarity_classes(
    graphs: Sequence[PropertyGraph],
    max_steps: int = DEFAULT_MAX_STEPS,
    collect_matchings: bool = False,
):
    """Partition trial graphs into similarity classes (paper §3.4).

    Returns lists of indices into ``graphs``.  A cheap structural signature
    pre-partitions; exact isomorphism confirms membership within buckets.

    With ``collect_matchings`` the return value is ``(classes, matchings)``
    where ``matchings[(i, j)]`` is the isomorphism found from ``graphs[i]``
    (a class representative) into ``graphs[j]`` — the generalization stage
    reuses it as a warm start instead of re-searching the same pair.
    """
    buckets: Dict[Tuple, List[List[int]]] = {}
    matchings: Dict[Tuple[int, int], Matching] = {}
    for index, graph in enumerate(graphs):
        signature = _signature_of(graph)
        classes = buckets.setdefault(signature, [])
        for cls in classes:
            found = find_isomorphism(graphs[cls[0]], graph, max_steps=max_steps)
            if found:
                matchings[(cls[0], index)] = found
                cls.append(index)
                break
        else:
            classes.append([index])
    result: List[List[int]] = []
    for classes in buckets.values():
        result.extend(classes)
    result.sort(key=lambda cls: cls[0])
    if collect_matchings:
        return result, matchings
    return result
