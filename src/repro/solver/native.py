"""Native branch-and-bound matchers for property graphs.

ProvMark reduces three problems to (sub)graph matching (paper §3.4–3.5):

* **similarity** — structure-only isomorphism: same shape, labels, and
  incidence, ignoring properties;
* **generalization** — among all isomorphisms between two similar graphs,
  find one minimizing the number of mismatched properties, then keep only
  the properties that agree;
* **comparison** — an *approximate subgraph isomorphism*: embed the
  background graph into the foreground graph, minimizing the number of
  background properties with no matching foreground property (Listing 4's
  cost model).

The paper solves these with clingo; this module is the fast native engine.
:mod:`repro.solver.asp` executes the paper's actual ASP programs and is
cross-checked against this implementation in the test suite.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.graph.model import Edge, Node, PropertyGraph


class SolverLimit(Exception):
    """Raised when the backtracking search exceeds its step budget."""


@dataclass
class Matching:
    """A solution: node/edge mapping from graph 1 into graph 2 plus cost."""

    node_map: Dict[str, str]
    edge_map: Dict[str, str]
    cost: int

    def mapped_elements(self) -> Dict[str, str]:
        combined = dict(self.node_map)
        combined.update(self.edge_map)
        return combined


def property_mismatch_cost(
    props1: Mapping[str, str], props2: Mapping[str, str]
) -> int:
    """Listing 4 cost: properties of element 1 absent or different in 2."""
    return sum(1 for key, value in props1.items() if props2.get(key) != value)


def _edge_group_key(graph: PropertyGraph, edge: Edge) -> Tuple[str, str, str]:
    return (edge.src, edge.tgt, edge.label)


def _group_edges(graph: PropertyGraph) -> Dict[Tuple[str, str, str], List[Edge]]:
    groups: Dict[Tuple[str, str, str], List[Edge]] = {}
    for edge in graph.edges():
        groups.setdefault(_edge_group_key(graph, edge), []).append(edge)
    return groups


def _optimal_group_assignment(
    edges1: Sequence[Edge], edges2: Sequence[Edge]
) -> Tuple[int, List[Tuple[str, str]]]:
    """Min-cost injective assignment of parallel-edge group 1 into group 2.

    Groups are small (parallel edges with identical endpoints and label), so
    exhaustive permutation search is fine up to a threshold, after which we
    fall back to a greedy assignment (still injective, possibly suboptimal
    by a property or two — never affecting structural feasibility).
    """
    if len(edges1) > len(edges2):
        raise ValueError("group 1 larger than group 2")
    cost_matrix = [
        [property_mismatch_cost(e1.props, e2.props) for e2 in edges2]
        for e1 in edges1
    ]
    n1, n2 = len(edges1), len(edges2)
    if n1 == 1:
        best_j = min(range(n2), key=lambda j: cost_matrix[0][j])
        return cost_matrix[0][best_j], [(edges1[0].id, edges2[best_j].id)]
    if n2 <= 6:
        best_cost: Optional[int] = None
        best_perm: Optional[Tuple[int, ...]] = None
        for perm in itertools.permutations(range(n2), n1):
            cost = sum(cost_matrix[i][perm[i]] for i in range(n1))
            if best_cost is None or cost < best_cost:
                best_cost, best_perm = cost, perm
        assert best_perm is not None and best_cost is not None
        pairs = [(edges1[i].id, edges2[best_perm[i]].id) for i in range(n1)]
        return best_cost, pairs
    # Greedy fallback for unusually wide groups.
    used: set = set()
    total = 0
    pairs = []
    for i in range(n1):
        candidates = [j for j in range(n2) if j not in used]
        best_j = min(candidates, key=lambda j: cost_matrix[i][j])
        used.add(best_j)
        total += cost_matrix[i][best_j]
        pairs.append((edges1[i].id, edges2[best_j].id))
    return total, pairs


class _MatchSearch:
    """Backtracking search shared by isomorphism and subgraph embedding."""

    def __init__(
        self,
        g1: PropertyGraph,
        g2: PropertyGraph,
        exact: bool,
        minimize_cost: bool,
        max_steps: int,
    ) -> None:
        self.g1 = g1
        self.g2 = g2
        self.exact = exact
        self.minimize_cost = minimize_cost
        self.max_steps = max_steps
        self.steps = 0
        self.groups1 = _group_edges(g1)
        self.groups2 = _group_edges(g2)
        self.best: Optional[Matching] = None
        self.nodes1 = self._order_nodes()
        self.candidates = {
            node.id: self._node_candidates(node) for node in g1.nodes()
        }
        # Admissible lower bound: from depth d onward at least the minimum
        # candidate property cost of every remaining node must be paid.
        # Without it, symmetric nodes whose every pairing costs the same
        # (e.g. volatile timestamps on interchangeable Call nodes) force an
        # exhaustive permutation sweep.
        min_cost = []
        for node_id in self.nodes1:
            props = g1.node(node_id).props
            costs = [
                property_mismatch_cost(props, g2.node(v).props)
                for v in self.candidates[node_id]
            ]
            min_cost.append(min(costs) if costs else 0)
        # Edge bound: an edge's cost is realized at the depth its second
        # endpoint is assigned; until then at least the cheapest
        # label-compatible g2 edge must be paid.
        position = {node_id: i for i, node_id in enumerate(self.nodes1)}
        edges2_by_label: Dict[str, List[Edge]] = {}
        for edge in g2.edges():
            edges2_by_label.setdefault(edge.label, []).append(edge)
        edge_min_at = [0] * (len(self.nodes1) + 1)
        for edge in g1.edges():
            compatible = edges2_by_label.get(edge.label, [])
            if not compatible:
                continue
            cheapest = min(
                property_mismatch_cost(edge.props, other.props)
                for other in compatible
            )
            completion = max(position[edge.src], position[edge.tgt])
            edge_min_at[completion] += cheapest
        self._suffix_min = [0] * (len(min_cost) + 1)
        for index in range(len(min_cost) - 1, -1, -1):
            self._suffix_min[index] = (
                self._suffix_min[index + 1] + min_cost[index] + edge_min_at[index]
            )

    # -- candidate computation --------------------------------------------

    def _node_candidates(self, node: Node) -> List[str]:
        result = []
        deg1_out = len(self.g1.out_edges(node.id))
        deg1_in = len(self.g1.in_edges(node.id))
        for other in self.g2.nodes():
            if other.label != node.label:
                continue
            deg2_out = len(self.g2.out_edges(other.id))
            deg2_in = len(self.g2.in_edges(other.id))
            if self.exact:
                if deg1_out != deg2_out or deg1_in != deg2_in:
                    continue
            else:
                if deg1_out > deg2_out or deg1_in > deg2_in:
                    continue
            result.append(other.id)
        return result

    def _order_nodes(self) -> List[str]:
        """Most-constrained-first ordering, preferring connected expansion."""
        remaining = {node.id for node in self.g1.nodes()}
        order: List[str] = []
        placed: set = set()
        while remaining:
            adjacent = [
                node_id
                for node_id in remaining
                if any(
                    e.src in placed or e.tgt in placed
                    for e in self.g1.out_edges(node_id) + self.g1.in_edges(node_id)
                )
            ]
            pool = adjacent or list(remaining)
            pick = max(pool, key=lambda n: self.g1.degree(n))
            order.append(pick)
            placed.add(pick)
            remaining.remove(pick)
        return order

    # -- feasibility and cost ---------------------------------------------

    def _group_feasible(self, node_map: Dict[str, str], u: str, v: str) -> bool:
        """Check parallel-edge-group counts for edges between mapped nodes."""
        for key, edges1 in self.groups1.items():
            src, tgt, label = key
            if u not in (src, tgt):
                continue
            if src in node_map and tgt in node_map:
                mapped_key = (node_map[src], node_map[tgt], label)
                edges2 = self.groups2.get(mapped_key, [])
                if self.exact:
                    if len(edges2) != len(edges1):
                        return False
                elif len(edges2) < len(edges1):
                    return False
        if self.exact:
            # Reverse direction: mapped g2 nodes must not have extra edges
            # between them that g1 lacks.
            for key, edges2 in self.groups2.items():
                src2, tgt2, label = key
                if v not in (src2, tgt2):
                    continue
                inv = {b: a for a, b in node_map.items()}
                if src2 in inv and tgt2 in inv:
                    edges1 = self.groups1.get((inv[src2], inv[tgt2], label), [])
                    if len(edges1) != len(edges2):
                        return False
        return True

    def _edge_cost_for(
        self, node_map: Dict[str, str], u: str
    ) -> Tuple[int, List[Tuple[str, str]]]:
        """Cost and pairing of edge groups completed by mapping node ``u``."""
        total = 0
        pairs: List[Tuple[str, str]] = []
        for key, edges1 in self.groups1.items():
            src, tgt, label = key
            if u not in (src, tgt):
                continue
            # A self-loop group completes on its single endpoint; a normal
            # group completes when its second endpoint is mapped.
            other = tgt if u == src else src
            if other != u and other not in node_map:
                continue
            if src == tgt and u != src:
                continue
            mapped_key = (node_map[src], node_map[tgt], label)
            edges2 = self.groups2.get(mapped_key, [])
            cost, group_pairs = _optimal_group_assignment(edges1, edges2)
            total += cost
            pairs.extend(group_pairs)
        return total, pairs

    # -- search -------------------------------------------------------------

    def run(self) -> Optional[Matching]:
        if self.exact:
            if self.g1.node_count != self.g2.node_count:
                return None
            if self.g1.edge_count != self.g2.edge_count:
                return None
        else:
            if self.g1.node_count > self.g2.node_count:
                return None
            if self.g1.edge_count > self.g2.edge_count:
                return None
        if any(not cands for cands in self.candidates.values()):
            return None
        self._search(0, {}, {}, 0)
        return self.best

    def _search(
        self,
        depth: int,
        node_map: Dict[str, str],
        edge_map: Dict[str, str],
        cost: int,
    ) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise SolverLimit(
                f"matching exceeded {self.max_steps} search steps"
            )
        if self.best is not None:
            if not self.minimize_cost:
                return
            if cost + self._suffix_min[depth] >= self.best.cost:
                return
        if depth == len(self.nodes1):
            if self.best is None or cost < self.best.cost:
                self.best = Matching(dict(node_map), dict(edge_map), cost)
            return
        u = self.nodes1[depth]
        used = set(node_map.values())
        props_u = self.g1.node(u).props
        candidates = [v for v in self.candidates[u] if v not in used]
        if self.minimize_cost:
            # Cheapest-first ordering finds a low-cost solution early, after
            # which branch-and-bound prunes the symmetric alternatives
            # (e.g. OPUS's many interchangeable Env nodes).
            candidates.sort(
                key=lambda v: property_mismatch_cost(
                    props_u, self.g2.node(v).props
                )
            )
        for v in candidates:
            if not self._group_feasible({**node_map, u: v}, u, v):
                continue
            node_map[u] = v
            node_cost = property_mismatch_cost(
                props_u, self.g2.node(v).props
            )
            edge_cost, pairs = self._edge_cost_for(node_map, u)
            for edge1_id, edge2_id in pairs:
                edge_map[edge1_id] = edge2_id
            self._search(depth + 1, node_map, edge_map, cost + node_cost + edge_cost)
            for edge1_id, _ in pairs:
                del edge_map[edge1_id]
            del node_map[u]


DEFAULT_MAX_STEPS = 2_000_000


def find_isomorphism(
    g1: PropertyGraph,
    g2: PropertyGraph,
    minimize_properties: bool = False,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Optional[Matching]:
    """Find a structure-preserving bijection between ``g1`` and ``g2``.

    With ``minimize_properties`` the search continues past the first
    solution and returns the isomorphism with the fewest property
    mismatches (the generalization objective).  Returns ``None`` when the
    graphs are not similar.
    """
    if g1.is_empty() and g2.is_empty():
        return Matching({}, {}, 0)
    search = _MatchSearch(
        g1, g2, exact=True, minimize_cost=minimize_properties, max_steps=max_steps
    )
    return search.run()


def are_similar(
    g1: PropertyGraph, g2: PropertyGraph, max_steps: int = DEFAULT_MAX_STEPS
) -> bool:
    """Paper §3.4: same shape and labels, properties ignored."""
    if g1.structural_signature() != g2.structural_signature():
        return False
    return find_isomorphism(g1, g2, max_steps=max_steps) is not None


def embed_subgraph(
    g1: PropertyGraph,
    g2: PropertyGraph,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Optional[Matching]:
    """Min-cost embedding of ``g1`` into ``g2`` (Listing 4).

    Finds an injective mapping of every node and edge of ``g1`` onto nodes
    and edges of ``g2`` preserving labels and incidence, minimizing the
    number of ``g1`` properties with no matching ``g2`` property.  Extra
    ``g2`` structure is allowed (non-induced embedding).
    """
    if g1.is_empty():
        return Matching({}, {}, 0)
    search = _MatchSearch(
        g1, g2, exact=False, minimize_cost=True, max_steps=max_steps
    )
    return search.run()


def generalize_pair(
    g1: PropertyGraph,
    g2: PropertyGraph,
    gid: Optional[str] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Optional[PropertyGraph]:
    """Paper §3.4: generalize two similar graphs into one.

    Searches for the isomorphism minimizing property mismatches, then keeps
    exactly the properties on which both graphs agree (discarding volatile
    values such as timestamps and identifiers).  Returns ``None`` when the
    graphs are not similar.  Element ids of ``g1`` are kept.
    """
    matching = find_isomorphism(g1, g2, minimize_properties=True, max_steps=max_steps)
    if matching is None:
        return None
    out = PropertyGraph(gid or g1.gid)
    for node in g1.nodes():
        other = g2.node(matching.node_map[node.id])
        props = {
            key: value
            for key, value in node.props.items()
            if other.props.get(key) == value
        }
        out.add_node(node.id, node.label, props)
    for edge in g1.edges():
        other_edge = g2.edge(matching.edge_map[edge.id])
        props = {
            key: value
            for key, value in edge.props.items()
            if other_edge.props.get(key) == value
        }
        out.add_edge(edge.id, edge.src, edge.tgt, edge.label, props)
    return out


DUMMY_LABEL = "Dummy"


def subtract_background(
    foreground: PropertyGraph,
    background: PropertyGraph,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Optional[PropertyGraph]:
    """Paper §3.5: remove the background embedding from the foreground.

    Returns the difference graph — the benchmark *target graph* — or
    ``None`` when the background cannot be embedded into the foreground
    (a failed comparison, reported upstream as a mismatched run).

    Matched nodes that anchor unmatched edges are retained as ``Dummy``
    placeholder nodes (the paper's green/gray nodes), so the result is a
    well-formed graph.
    """
    matching = embed_subgraph(background, foreground, max_steps=max_steps)
    if matching is None:
        return None
    matched_nodes = set(matching.node_map.values())
    matched_edges = set(matching.edge_map.values())
    result = PropertyGraph(foreground.gid + "_target")
    kept_edges = [
        edge for edge in foreground.edges() if edge.id not in matched_edges
    ]
    kept_nodes = {
        node.id for node in foreground.nodes() if node.id not in matched_nodes
    }
    anchors = set()
    for edge in kept_edges:
        for endpoint in (edge.src, edge.tgt):
            if endpoint not in kept_nodes:
                anchors.add(endpoint)
    for node in foreground.nodes():
        if node.id in kept_nodes:
            result.add_node(node.id, node.label, node.props)
        elif node.id in anchors:
            result.add_node(node.id, DUMMY_LABEL, {"was": node.label})
    for edge in kept_edges:
        result.add_edge(edge.id, edge.src, edge.tgt, edge.label, edge.props)
    return result


def partition_similarity_classes(
    graphs: Sequence[PropertyGraph], max_steps: int = DEFAULT_MAX_STEPS
) -> List[List[int]]:
    """Partition trial graphs into similarity classes (paper §3.4).

    Returns lists of indices into ``graphs``.  A cheap structural signature
    pre-partitions; exact isomorphism confirms membership within buckets.
    """
    buckets: Dict[Tuple, List[List[int]]] = {}
    for index, graph in enumerate(graphs):
        signature = graph.structural_signature()
        classes = buckets.setdefault(signature, [])
        for cls in classes:
            if find_isomorphism(graphs[cls[0]], graph, max_steps=max_steps):
                cls.append(index)
                break
        else:
            classes.append([index])
    result: List[List[int]] = []
    for classes in buckets.values():
        result.extend(classes)
    result.sort(key=lambda cls: cls[0])
    return result
