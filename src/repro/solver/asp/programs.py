"""The paper's ASP programs, verbatim.

``LISTING3`` is the graph-similarity specification (paper Listing 3) and
``LISTING4`` the approximate subgraph isomorphism with property-mismatch
minimization (paper Listing 4).  ``LISTING3_MINIMIZED`` extends Listing 3
with Listing 4's cost model; it is what the generalization stage needs — an
*isomorphism* that minimizes mismatched properties.
"""

LISTING3 = """
{h(X,Y) : n2(Y,_)} = 1 :- n1(X,_).
{h(X,Y) : n1(X,_)} = 1 :- n2(Y,_).
{h(X,Y) : e2(Y,_,_,_)} = 1 :- e1(X,_,_,_).
{h(X,Y) : e1(X,_,_,_)} = 1 :- e2(Y,_,_,_).
:- X <> Y, h(X,Z), h(Y,Z).
:- X <> Y, h(Z,Y), h(Z,X).
:- n1(X,L), h(X,Y), not n2(Y,L).
:- n2(Y,L), h(X,Y), not n1(X,L).
:- e1(E1,_,_,L), h(E1,E2), not e2(E2,_,_,L).
:- e2(E2,_,_,L), h(E1,E2), not e1(E1,_,_,L).
:- e1(E1,X,_,_), h(E1,E2), e2(E2,Y,_,_), not h(X,Y).
:- e1(E1,_,X,_), h(E1,E2), e2(E2,_,Y,_), not h(X,Y).
"""

_COST_MODEL = """
cost(X,K,0) :- p1(X,K,V), h(X,Y), p2(Y,K,V).
cost(X,K,1) :- p1(X,K,V), h(X,Y), p2(Y,K,W), V <> W.
cost(X,K,1) :- p1(X,K,V), h(X,Y), not p2(Y,K,_).
#minimize { PC,X,K : cost(X,K,PC) }.
"""

LISTING4 = """
{h(X,Y) : n2(Y,_)} = 1 :- n1(X,_).
{h(X,Y) : e2(Y,_,_,_)} = 1 :- e1(X,_,_,_).
:- X <> Y, h(X,Z), h(Y,Z).
:- X <> Y, h(Z,Y), h(Z,X).
:- n1(X,L), h(X,Y), not n2(Y,L).
:- e1(E1,_,_,L), h(E1,E2), not e2(E2,_,_,L).
:- e1(E1,X,_,_), h(E1,E2), e2(E2,Y,_,_), not h(X,Y).
:- e1(E1,_,X,_), h(E1,E2), e2(E2,_,Y,_), not h(X,Y).
""" + _COST_MODEL

LISTING3_MINIMIZED = LISTING3 + _COST_MODEL
