"""Tokenizer and recursive-descent parser for the mini-ASP language."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.solver.asp.ast import (
    Anon,
    Atom,
    BodyElement,
    ChoiceRule,
    Comparison,
    Const,
    Constraint,
    Fact,
    Literal,
    Minimize,
    NormalRule,
    Program,
    Statement,
    Term,
    Var,
)


class AspSyntaxError(Exception):
    """Raised on malformed ASP source."""


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    pos: int


_TOKEN_SPEC = [
    ("COMMENT", r"%[^\n]*"),
    ("WS", r"\s+"),
    ("MINIMIZE", r"#minimize\b"),
    ("IMPLIES", r":-"),
    ("NEQ", r"<>|!="),
    ("LE", r"<="),
    ("GE", r">="),
    ("EQ", r"="),
    ("LT", r"<"),
    ("GT", r">"),
    ("LBRACE", r"\{"),
    ("RBRACE", r"\}"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("COLON", r":"),
    ("DOT", r"\."),
    ("NOT", r"not\b"),
    ("NUMBER", r"-?\d+"),
    ("STRING", r'"(?:[^"\\]|\\.)*"'),
    ("NAME", r"[a-z_]\w*"),
    ("VAR", r"[A-Z]\w*"),
]

_MASTER_RE = re.compile("|".join(f"(?P<{k}>{p})" for k, p in _TOKEN_SPEC))


def tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(source):
        match = _MASTER_RE.match(source, pos)
        if not match:
            raise AspSyntaxError(f"unexpected character at {pos}: {source[pos]!r}")
        kind = match.lastgroup or ""
        if kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, match.group(), pos))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token]) -> None:
        self.tokens = tokens
        self.index = 0

    def _peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise AspSyntaxError("unexpected end of input")
        self.index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise AspSyntaxError(
                f"expected {kind} at {token.pos}, found {token.kind} {token.text!r}"
            )
        return token

    def _at(self, kind: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == kind

    # -- grammar ------------------------------------------------------------

    def parse_program(self) -> Program:
        statements: List[Statement] = []
        while self._peek() is not None:
            statements.append(self._statement())
        return Program(tuple(statements))

    def _statement(self) -> Statement:
        if self._at("MINIMIZE"):
            return self._minimize()
        if self._at("LBRACE"):
            return self._choice_rule()
        if self._at("IMPLIES"):
            self._next()
            body = self._body()
            self._expect("DOT")
            return Constraint(tuple(body))
        head = self._atom()
        if self._at("DOT"):
            self._next()
            if any(isinstance(t, (Var, Anon)) for t in head.args):
                raise AspSyntaxError(f"fact {head} contains variables")
            return Fact(head)
        self._expect("IMPLIES")
        body = self._body()
        self._expect("DOT")
        return NormalRule(head, tuple(body))

    def _choice_rule(self) -> ChoiceRule:
        self._expect("LBRACE")
        head = self._atom()
        self._expect("COLON")
        condition = self._atom()
        self._expect("RBRACE")
        self._expect("EQ")
        bound = int(self._expect("NUMBER").text)
        body: Tuple[BodyElement, ...] = ()
        if self._at("IMPLIES"):
            self._next()
            body = tuple(self._body())
        self._expect("DOT")
        return ChoiceRule(head, condition, bound, body)

    def _minimize(self) -> Minimize:
        self._expect("MINIMIZE")
        self._expect("LBRACE")
        weight = self._term()
        terms: List[Term] = []
        while self._at("COMMA"):
            self._next()
            terms.append(self._term())
        self._expect("COLON")
        condition = self._atom()
        self._expect("RBRACE")
        self._expect("DOT")
        return Minimize(weight, tuple(terms), condition)

    def _body(self) -> List[BodyElement]:
        elements = [self._body_element()]
        while self._at("COMMA"):
            self._next()
            elements.append(self._body_element())
        return elements

    def _body_element(self) -> BodyElement:
        if self._at("NOT"):
            self._next()
            return Literal(self._atom(), negated=True)
        # Could be a comparison (term op term) or an atom.  An atom starts
        # with NAME followed by LPAREN; a comparison's left side may be a
        # variable, number, or string.
        if self._at("NAME"):
            save = self.index
            self._next()
            if self._at("LPAREN"):
                self.index = save
                return Literal(self._atom())
            self.index = save
        left = self._term()
        op_token = self._next()
        op_map = {
            "NEQ": "<>", "EQ": "=", "LT": "<", "GT": ">", "LE": "<=", "GE": ">=",
        }
        if op_token.kind not in op_map:
            raise AspSyntaxError(
                f"expected comparison operator at {op_token.pos}, "
                f"found {op_token.text!r}"
            )
        right = self._term()
        return Comparison(op_map[op_token.kind], left, right)

    def _atom(self) -> Atom:
        name = self._expect("NAME").text
        self._expect("LPAREN")
        args: List[Term] = [self._term()]
        while self._at("COMMA"):
            self._next()
            args.append(self._term())
        self._expect("RPAREN")
        return Atom(name, tuple(args))

    def _term(self) -> Term:
        token = self._next()
        if token.kind == "VAR":
            return Var(token.text)
        if token.kind == "NAME":
            if token.text == "_":
                return Anon()
            return Const(token.text)
        if token.kind == "NUMBER":
            return Const(int(token.text))
        if token.kind == "STRING":
            body = token.text[1:-1].replace('\\"', '"').replace("\\\\", "\\")
            return Const(body)
        raise AspSyntaxError(f"expected term at {token.pos}, found {token.text!r}")


def parse_program(source: str) -> Program:
    """Parse ASP source text into a :class:`Program`."""
    return _Parser(tokenize(source)).parse_program()
