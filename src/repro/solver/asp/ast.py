"""AST for the ASP language subset used by the paper's Listings 3 and 4.

Supported statements:

* facts: ``n1(a,"File").``
* normal rules: ``cost(X,K,1) :- p1(X,K,V), h(X,Y), not p2(Y,K,_).``
* integrity constraints: ``:- X <> Y, h(X,Z), h(Y,Z).``
* cardinality choice rules: ``{h(X,Y) : n2(Y,_)} = 1 :- n1(X,_).``
* minimize statements: ``#minimize { PC,X,K : cost(X,K,PC) }.``

Terms are constants (strings or integers), variables (capitalized), or the
anonymous variable ``_``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union


@dataclass(frozen=True)
class Const:
    value: Union[str, int]

    def __str__(self) -> str:
        if isinstance(self.value, int):
            return str(self.value)
        return self.value


@dataclass(frozen=True)
class Var:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Anon:
    def __str__(self) -> str:
        return "_"


Term = Union[Const, Var, Anon]


@dataclass(frozen=True)
class Atom:
    """A predicate applied to terms, e.g. ``h(X,Y)``."""

    name: str
    args: Tuple[Term, ...]

    def __str__(self) -> str:
        return f"{self.name}({','.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class Literal:
    """An atom or its negation-as-failure (``not atom``)."""

    atom: Atom
    negated: bool = False

    def __str__(self) -> str:
        return f"not {self.atom}" if self.negated else str(self.atom)


@dataclass(frozen=True)
class Comparison:
    """``X <> Y``, ``X = Y``, ``X < Y`` etc. between two terms."""

    op: str
    left: Term
    right: Term

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


BodyElement = Union[Literal, Comparison]


@dataclass(frozen=True)
class Fact:
    atom: Atom


@dataclass(frozen=True)
class NormalRule:
    head: Atom
    body: Tuple[BodyElement, ...]


@dataclass(frozen=True)
class Constraint:
    body: Tuple[BodyElement, ...]


@dataclass(frozen=True)
class ChoiceRule:
    """``{head : condition} = bound :- body.``"""

    head: Atom
    condition: Atom
    bound: int
    body: Tuple[BodyElement, ...]


@dataclass(frozen=True)
class Minimize:
    """``#minimize { weight, tiebreak... : literal }.``"""

    weight: Term
    terms: Tuple[Term, ...]
    condition: Atom


Statement = Union[Fact, NormalRule, Constraint, ChoiceRule, Minimize]


@dataclass(frozen=True)
class Program:
    statements: Tuple[Statement, ...]

    def facts(self) -> Tuple[Fact, ...]:
        return tuple(s for s in self.statements if isinstance(s, Fact))

    def choice_rules(self) -> Tuple[ChoiceRule, ...]:
        return tuple(s for s in self.statements if isinstance(s, ChoiceRule))

    def constraints(self) -> Tuple[Constraint, ...]:
        return tuple(s for s in self.statements if isinstance(s, Constraint))

    def normal_rules(self) -> Tuple[NormalRule, ...]:
        return tuple(s for s in self.statements if isinstance(s, NormalRule))

    def minimize_statements(self) -> Tuple[Minimize, ...]:
        return tuple(s for s in self.statements if isinstance(s, Minimize))
