"""Grounder: instantiate an ASP program over its facts.

The output is a :class:`GroundProblem`:

* *choice groups* — sets of ground decision atoms with an exact cardinality
  (from choice rules such as ``{h(X,Y) : n2(Y,_)} = 1 :- n1(X,_).``);
* *nogoods* — sets of signed ground decision literals that must not all
  hold (from integrity constraints);
* *weights* — a per-decision-atom cost derived from normal rules feeding a
  ``#minimize`` statement.

The engine supports the (stratified) structure of the paper's programs:
normal-rule heads are *derived* predicates that appear only in minimize
conditions, negation is applied to EDB or decision atoms only, and every
ground cost rule depends on exactly one positive decision atom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.solver.asp.ast import (
    Anon,
    Atom,
    BodyElement,
    Comparison,
    Const,
    Literal,
    Program,
    Term,
    Var,
)

Value = Union[str, int]
GroundAtom = Tuple[str, Tuple[Value, ...]]
SignedLiteral = Tuple[GroundAtom, bool]
Bindings = Dict[str, Value]


class GroundingError(Exception):
    """Raised when the program falls outside the supported subset."""


@dataclass
class GroundProblem:
    """A ground decision problem over choice atoms."""

    atoms: Set[GroundAtom] = field(default_factory=set)
    groups: List[Tuple[List[GroundAtom], int]] = field(default_factory=list)
    nogoods: List[FrozenSet[SignedLiteral]] = field(default_factory=list)
    weights: Dict[GroundAtom, int] = field(default_factory=dict)
    unsatisfiable: bool = False


class _Relation:
    """Tuple store with lazily built hash indexes on bound-position masks.

    Indexes are invalidated lazily: adds mark the store dirty instead of
    discarding indexes immediately, so interleaved batches of adds cost
    one invalidation, and :meth:`extend` loads whole relations at once.
    """

    def __init__(self) -> None:
        self.tuples: List[Tuple[Value, ...]] = []
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple[Value, ...], List[Tuple[Value, ...]]]] = {}
        self._dirty = False

    def add(self, row: Tuple[Value, ...]) -> None:
        self.tuples.append(row)
        self._dirty = True

    def extend(self, rows: Iterable[Tuple[Value, ...]]) -> None:
        self.tuples.extend(rows)
        self._dirty = True

    def lookup(
        self, pattern: Sequence[Optional[Value]]
    ) -> List[Tuple[Value, ...]]:
        """Rows matching a pattern with ``None`` as wildcard."""
        mask = tuple(i for i, v in enumerate(pattern) if v is not None)
        if not mask:
            return self.tuples
        if self._dirty:
            self._indexes.clear()
            self._dirty = False
        index = self._indexes.get(mask)
        if index is None:
            index = {}
            for row in self.tuples:
                if len(row) != len(pattern):
                    continue
                key = tuple(row[i] for i in mask)
                index.setdefault(key, []).append(row)
            self._indexes[mask] = index
        key = tuple(pattern[i] for i in mask)
        return index.get(key, [])


def _pattern(atom: Atom, bindings: Bindings) -> List[Optional[Value]]:
    pattern: List[Optional[Value]] = []
    for term in atom.args:
        if isinstance(term, Const):
            pattern.append(term.value)
        elif isinstance(term, Var) and term.name in bindings:
            pattern.append(bindings[term.name])
        else:
            pattern.append(None)
    return pattern


def _bind(atom: Atom, row: Tuple[Value, ...], bindings: Bindings) -> Optional[Bindings]:
    """Extend ``bindings`` by unifying ``atom`` args with ``row``."""
    if len(atom.args) != len(row):
        return None
    new = dict(bindings)
    for term, value in zip(atom.args, row):
        if isinstance(term, Const):
            if term.value != value:
                return None
        elif isinstance(term, Var):
            if term.name in new:
                if new[term.name] != value:
                    return None
            else:
                new[term.name] = value
    return new


def _eval_term(term: Term, bindings: Bindings) -> Value:
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Var):
        if term.name not in bindings:
            raise GroundingError(f"unbound variable {term.name}")
        return bindings[term.name]
    raise GroundingError("anonymous variable where value required")


def _term_bound(term: Term, bindings: Bindings) -> bool:
    if isinstance(term, Var):
        return term.name in bindings
    return not isinstance(term, Anon)


_COMPARE_OPS = {
    "<>": lambda a, b: a != b,
    "=": lambda a, b: a == b,
    "<": lambda a, b: _cmp_key(a) < _cmp_key(b),
    ">": lambda a, b: _cmp_key(a) > _cmp_key(b),
    "<=": lambda a, b: _cmp_key(a) <= _cmp_key(b),
    ">=": lambda a, b: _cmp_key(a) >= _cmp_key(b),
}


def _cmp_key(value: Value) -> Tuple[int, str]:
    if isinstance(value, int):
        return (0, f"{value:020d}")
    return (1, value)


class Grounder:
    """Grounds one parsed :class:`Program`."""

    def __init__(self, program: Program, max_instances: int = 5_000_000) -> None:
        self.program = program
        self.max_instances = max_instances
        self.instances = 0
        # Batch rows per predicate and load each relation once, so the
        # lazy indexes are built over the complete fact set instead of
        # being invalidated on every add.
        rows_by_predicate: Dict[str, List[Tuple[Value, ...]]] = {}
        for fact in program.facts():
            row = tuple(
                term.value for term in fact.atom.args if isinstance(term, Const)
            )
            if len(row) != len(fact.atom.args):
                raise GroundingError(f"non-ground fact {fact.atom}")
            rows_by_predicate.setdefault(fact.atom.name, []).append(row)
        self.edb: Dict[str, _Relation] = {}
        for name, rows in rows_by_predicate.items():
            relation = _Relation()
            relation.extend(rows)
            self.edb[name] = relation
        self.decision_predicates = {
            rule.head.name for rule in program.choice_rules()
        }
        self.derived_predicates = {
            rule.head.name for rule in program.normal_rules()
        }
        overlap = self.decision_predicates & set(self.edb)
        if overlap:
            raise GroundingError(f"choice predicates also facts: {overlap}")
        self.domain: Set[GroundAtom] = set()
        self._domain_index: Dict[str, _Relation] = {}

    # -- body evaluation ----------------------------------------------------

    def _element_ready(self, element: BodyElement, bindings: Bindings) -> bool:
        if isinstance(element, Comparison):
            return _term_bound(element.left, bindings) and _term_bound(
                element.right, bindings
            )
        if element.negated:
            # Negation requires all non-anonymous args bound.
            return all(
                isinstance(t, Anon) or _term_bound(t, bindings)
                for t in element.atom.args
            )
        return True

    def _element_priority(self, element: BodyElement, bindings: Bindings) -> int:
        """Lower runs earlier: bound EDB atoms, then decision atoms, then
        comparisons/negations (which only filter)."""
        if isinstance(element, Comparison):
            return 0 if self._element_ready(element, bindings) else 99
        if element.negated:
            return 1 if self._element_ready(element, bindings) else 99
        if element.atom.name in self.edb or element.atom.name not in self.decision_predicates:
            return 2
        return 3

    def _solutions(
        self,
        body: Sequence[BodyElement],
        bindings: Bindings,
        decision_pos: List[GroundAtom],
        decision_neg: List[GroundAtom],
        collect: List[Tuple[Bindings, List[GroundAtom], List[GroundAtom]]],
    ) -> None:
        self.instances += 1
        if self.instances > self.max_instances:
            raise GroundingError("grounding exceeded instance budget")
        if not body:
            collect.append((dict(bindings), list(decision_pos), list(decision_neg)))
            return
        ready = [e for e in body if self._element_ready(e, bindings)]
        pool = ready or list(body)
        element = min(pool, key=lambda e: self._element_priority(e, bindings))
        rest = list(body)
        rest.remove(element)

        if isinstance(element, Comparison):
            if not self._element_ready(element, bindings):
                raise GroundingError(f"comparison {element} never bound")
            left = _eval_term(element.left, bindings)
            right = _eval_term(element.right, bindings)
            if _COMPARE_OPS[element.op](left, right):
                self._solutions(rest, bindings, decision_pos, decision_neg, collect)
            return

        atom = element.atom
        if element.negated:
            if atom.name in self.decision_predicates:
                ground = self._ground_decision_atom(atom, bindings)
                if ground not in self.domain:
                    # Not a candidate: negation trivially holds.
                    self._solutions(rest, bindings, decision_pos, decision_neg, collect)
                else:
                    decision_neg.append(ground)
                    self._solutions(rest, bindings, decision_pos, decision_neg, collect)
                    decision_neg.pop()
            else:
                relation = self.edb.get(atom.name, _Relation())
                if not relation.lookup(_pattern(atom, bindings)):
                    self._solutions(rest, bindings, decision_pos, decision_neg, collect)
            return

        if atom.name in self.decision_predicates:
            relation = self._domain_relation(atom.name)
            for row in relation.lookup(_pattern(atom, bindings)):
                new = _bind(atom, row, bindings)
                if new is None:
                    continue
                decision_pos.append((atom.name, row))
                self._solutions(rest, new, decision_pos, decision_neg, collect)
                decision_pos.pop()
            return

        relation = self.edb.get(atom.name)
        if relation is None:
            if atom.name in self.derived_predicates:
                raise GroundingError(
                    f"derived predicate {atom.name} used in a rule body"
                )
            return  # empty relation: no solutions
        for row in relation.lookup(_pattern(atom, bindings)):
            new = _bind(atom, row, bindings)
            if new is not None:
                self._solutions(rest, new, decision_pos, decision_neg, collect)

    def _ground_decision_atom(self, atom: Atom, bindings: Bindings) -> GroundAtom:
        return (
            atom.name,
            tuple(_eval_term(term, bindings) for term in atom.args),
        )

    def _domain_relation(self, name: str) -> _Relation:
        relation = self._domain_index.get(name)
        if relation is None:
            relation = _Relation()
            relation.extend(
                row for atom_name, row in sorted(self.domain)
                if atom_name == name
            )
            self._domain_index[name] = relation
        return relation

    # -- grounding stages ---------------------------------------------------

    def ground(self) -> GroundProblem:
        problem = GroundProblem()
        self._ground_choices(problem)
        self.domain = set(problem.atoms)
        self._domain_index.clear()
        self._ground_constraints(problem)
        self._ground_minimize(problem)
        return problem

    def _ground_choices(self, problem: GroundProblem) -> None:
        for rule in self.program.choice_rules():
            body_solutions: List[Tuple[Bindings, List[GroundAtom], List[GroundAtom]]] = []
            self._solutions(list(rule.body), {}, [], [], body_solutions)
            for bindings, pos, neg in body_solutions:
                if pos or neg:
                    raise GroundingError("choice-rule bodies must be EDB-only")
                members: List[GroundAtom] = []
                cond_solutions: List[Tuple[Bindings, List[GroundAtom], List[GroundAtom]]] = []
                self._solutions([Literal(rule.condition)], dict(bindings), [], [], cond_solutions)
                seen: Set[GroundAtom] = set()
                for cond_bindings, _, _ in cond_solutions:
                    ground = self._ground_decision_atom(rule.head, cond_bindings)
                    if ground not in seen:
                        seen.add(ground)
                        members.append(ground)
                if len(members) < rule.bound:
                    problem.unsatisfiable = True
                problem.atoms.update(members)
                problem.groups.append((members, rule.bound))

    def _ground_constraints(self, problem: GroundProblem) -> None:
        for constraint in self.program.constraints():
            solutions: List[Tuple[Bindings, List[GroundAtom], List[GroundAtom]]] = []
            self._solutions(list(constraint.body), {}, [], [], solutions)
            for _, pos, neg in solutions:
                literals: Set[SignedLiteral] = set()
                for atom in pos:
                    literals.add((atom, True))
                for atom in neg:
                    literals.add((atom, False))
                if not literals:
                    problem.unsatisfiable = True
                    continue
                # A constraint with both polarities of one atom is vacuous.
                atoms_pos = {a for a, sign in literals if sign}
                atoms_neg = {a for a, sign in literals if not sign}
                if atoms_pos & atoms_neg:
                    continue
                problem.nogoods.append(frozenset(literals))

    def _ground_minimize(self, problem: GroundProblem) -> None:
        minimizes = self.program.minimize_statements()
        if not minimizes:
            return
        # Derived-tuple weights: tuple -> (weight, deriving decision atoms).
        derivations: Dict[Tuple[Value, ...], Tuple[int, Set[GroundAtom]]] = {}
        for minimize in minimizes:
            for rule in self.program.normal_rules():
                if rule.head.name != minimize.condition.name:
                    continue
                solutions: List[Tuple[Bindings, List[GroundAtom], List[GroundAtom]]] = []
                self._solutions(list(rule.body), {}, [], [], solutions)
                for bindings, pos, neg in solutions:
                    if neg:
                        raise GroundingError(
                            "negated decision atoms unsupported in cost rules"
                        )
                    head_values = tuple(
                        _eval_term(term, bindings) for term in rule.head.args
                    )
                    cond_bindings = _bind(minimize.condition, head_values, {})
                    if cond_bindings is None:
                        continue
                    weight_value = _eval_term(minimize.weight, cond_bindings)
                    if not isinstance(weight_value, int):
                        raise GroundingError("minimize weight must be integer")
                    key_terms = tuple(
                        _eval_term(term, cond_bindings) for term in minimize.terms
                    )
                    tuple_key = (weight_value,) + key_terms
                    if len(pos) == 0:
                        # Unconditionally derived: constant cost, ignore.
                        continue
                    if len(pos) != 1:
                        raise GroundingError(
                            "cost rules must depend on exactly one decision atom"
                        )
                    weight, derivers = derivations.get(tuple_key, (weight_value, set()))
                    derivers.add(pos[0])
                    derivations[tuple_key] = (weight_value, derivers)
        group_of: Dict[GroundAtom, int] = {}
        for index, (members, _) in enumerate(problem.groups):
            for atom in members:
                group_of.setdefault(atom, index)
        for tuple_key, (weight, derivers) in derivations.items():
            if weight == 0:
                continue
            owner_groups = {group_of.get(a) for a in derivers}
            if len(owner_groups) > 1:
                raise GroundingError(
                    "cost tuple derivable from multiple choice groups"
                )
            for atom in derivers:
                problem.weights[atom] = problem.weights.get(atom, 0) + weight


def ground_program(program: Program) -> GroundProblem:
    return Grounder(program).ground()
