"""Mini-ASP engine executing the paper's Listing 3/4 programs."""

from repro.solver.asp.bridge import (
    asp_are_similar,
    asp_embed_subgraph,
    asp_find_isomorphism,
    graph_facts,
)
from repro.solver.asp.ground import Grounder, GroundingError, ground_program
from repro.solver.asp.parser import AspSyntaxError, parse_program
from repro.solver.asp.programs import LISTING3, LISTING3_MINIMIZED, LISTING4
from repro.solver.asp.solve import Model, SolveLimit, solve

__all__ = [
    "AspSyntaxError",
    "Grounder",
    "GroundingError",
    "LISTING3",
    "LISTING3_MINIMIZED",
    "LISTING4",
    "Model",
    "SolveLimit",
    "asp_are_similar",
    "asp_embed_subgraph",
    "asp_find_isomorphism",
    "graph_facts",
    "ground_program",
    "parse_program",
    "solve",
]
