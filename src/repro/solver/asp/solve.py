"""Model search for ground ASP problems.

A ground problem is a set of boolean decision atoms constrained by
exact-cardinality groups and nogoods, with optional per-atom weights to
minimize.  The solver runs backtracking with unit propagation over both
constraint kinds and branch-and-bound on the objective — a small-scale
analogue of what clingo does for the paper's Listings 3 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.solver.asp.ground import GroundAtom, GroundProblem, SignedLiteral


class SolveLimit(Exception):
    """Raised when the search exceeds its step budget."""


@dataclass
class Model:
    """A (possibly optimal) answer set restricted to decision atoms."""

    true_atoms: Set[GroundAtom]
    cost: int


class _Conflict(Exception):
    pass


class _Solver:
    def __init__(self, problem: GroundProblem, max_steps: int) -> None:
        self.problem = problem
        self.max_steps = max_steps
        self.steps = 0
        self.atoms: List[GroundAtom] = sorted(problem.atoms)
        self.assignment: Dict[GroundAtom, bool] = {}
        self.trail: List[GroundAtom] = []
        self.groups = [
            (list(members), bound) for members, bound in problem.groups
        ]
        self.groups_of_atom: Dict[GroundAtom, List[int]] = {}
        for index, (members, _) in enumerate(self.groups):
            for atom in members:
                self.groups_of_atom.setdefault(atom, []).append(index)
        self.nogoods_of_atom: Dict[GroundAtom, List[FrozenSet[SignedLiteral]]] = {}
        for nogood in problem.nogoods:
            for atom, _ in nogood:
                self.nogoods_of_atom.setdefault(atom, []).append(nogood)
        self.weights = problem.weights
        self.best: Optional[Model] = None
        # Disjoint-group lower bound: usable when every weighted atom
        # belongs to exactly one group.
        self.disjoint = all(
            len(self.groups_of_atom.get(atom, [])) <= 1 for atom in self.atoms
        )

    # -- assignment and propagation ------------------------------------------

    def _assign(self, atom: GroundAtom, value: bool, pending: List[Tuple[GroundAtom, bool]]) -> None:
        current = self.assignment.get(atom)
        if current is not None:
            if current != value:
                raise _Conflict()
            return
        self.assignment[atom] = value
        self.trail.append(atom)
        # Group propagation.
        for group_index in self.groups_of_atom.get(atom, []):
            members, bound = self.groups[group_index]
            true_count = sum(
                1 for member in members if self.assignment.get(member) is True
            )
            undecided = [
                member for member in members if member not in self.assignment
            ]
            if true_count > bound:
                raise _Conflict()
            if true_count == bound:
                for member in undecided:
                    pending.append((member, False))
            elif true_count + len(undecided) < bound:
                raise _Conflict()
            elif true_count + len(undecided) == bound:
                for member in undecided:
                    pending.append((member, True))
        # Nogood propagation.
        for nogood in self.nogoods_of_atom.get(atom, []):
            unassigned: Optional[SignedLiteral] = None
            satisfied = False
            count_unassigned = 0
            for lit_atom, lit_sign in nogood:
                assigned = self.assignment.get(lit_atom)
                if assigned is None:
                    unassigned = (lit_atom, lit_sign)
                    count_unassigned += 1
                elif assigned != lit_sign:
                    satisfied = True
                    break
            if satisfied:
                continue
            if count_unassigned == 0:
                raise _Conflict()
            if count_unassigned == 1 and unassigned is not None:
                pending.append((unassigned[0], not unassigned[1]))

    def _propagate(self, decisions: List[Tuple[GroundAtom, bool]]) -> int:
        """Apply decisions plus consequences; return trail mark for undo."""
        mark = len(self.trail)
        pending = list(decisions)
        try:
            while pending:
                atom, value = pending.pop()
                self._assign(atom, value, pending)
        except _Conflict:
            self._undo(mark)
            raise
        return mark

    def _undo(self, mark: int) -> None:
        while len(self.trail) > mark:
            atom = self.trail.pop()
            del self.assignment[atom]

    # -- objective -------------------------------------------------------------

    def _current_cost(self) -> int:
        return sum(
            self.weights.get(atom, 0)
            for atom, value in self.assignment.items()
            if value
        )

    def _lower_bound(self) -> int:
        cost = self._current_cost()
        if not self.disjoint:
            return cost
        for members, bound in self.groups:
            undecided_weights = sorted(
                self.weights.get(member, 0)
                for member in members
                if member not in self.assignment
            )
            remaining = bound - sum(
                1 for member in members if self.assignment.get(member) is True
            )
            if remaining > 0 and undecided_weights:
                cost += sum(undecided_weights[:remaining])
        return cost

    # -- search ------------------------------------------------------------------

    def _pick_group(self) -> Optional[int]:
        best_index: Optional[int] = None
        best_size = None
        for index, (members, bound) in enumerate(self.groups):
            true_count = sum(
                1 for member in members if self.assignment.get(member) is True
            )
            undecided = [m for m in members if m not in self.assignment]
            if true_count == bound and not undecided:
                continue
            if true_count < bound or undecided:
                if true_count == bound:
                    continue  # propagation will close it
                size = len(undecided)
                if best_size is None or size < best_size:
                    best_size = size
                    best_index = index
        return best_index

    def _search(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise SolveLimit(f"exceeded {self.max_steps} search steps")
        if self.best is not None:
            if not self.weights:
                return
            if self._lower_bound() >= self.best.cost:
                return
        group_index = self._pick_group()
        if group_index is None:
            # Everything decided (or no open groups): also decide leftover
            # atoms false.
            leftovers = [
                atom for atom in self.atoms if atom not in self.assignment
            ]
            if leftovers:
                try:
                    mark = self._propagate([(atom, False) for atom in leftovers])
                except _Conflict:
                    return
                self._search()
                self._undo(mark)
                return
            cost = self._current_cost()
            if self.best is None or cost < self.best.cost:
                self.best = Model(
                    {a for a, v in self.assignment.items() if v}, cost
                )
            return
        members, bound = self.groups[group_index]
        undecided = [m for m in members if m not in self.assignment]
        # Try candidates cheapest-first for faster bounding.
        undecided.sort(key=lambda atom: self.weights.get(atom, 0))
        for candidate in undecided:
            try:
                mark = self._propagate([(candidate, True)])
            except _Conflict:
                continue
            self._search()
            self._undo(mark)
            if self.best is not None and not self.weights:
                return
        # Also consider satisfying the group without any currently
        # undecided candidate only if already satisfied (bound reached by
        # propagation) — handled above; otherwise one of them must be true
        # when remaining capacity equals needed count, which propagation
        # enforces.  If bound can still be met by assigning candidate(s)
        # later combinations, they are covered by the loop because the
        # group needs at least one more true member among ``undecided``.

    def solve(self) -> Optional[Model]:
        if self.problem.unsatisfiable:
            return None
        try:
            self._propagate([])
        except _Conflict:
            return None
        # Unary nogoods are applied up-front for cheap pruning.
        try:
            unary = [
                (next(iter(ng))[0], not next(iter(ng))[1])
                for ng in self.problem.nogoods
                if len(ng) == 1
            ]
            self._propagate(unary)
        except _Conflict:
            return None
        self._search()
        return self.best


DEFAULT_MAX_STEPS = 2_000_000


def solve(problem: GroundProblem, max_steps: int = DEFAULT_MAX_STEPS) -> Optional[Model]:
    """Find an (optimal, if weighted) answer set of the ground problem."""
    return _Solver(problem, max_steps).solve()
