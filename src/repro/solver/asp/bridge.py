"""Bridge between property graphs and the mini-ASP engine.

Encodes two graphs as ``n1/e1/p1`` and ``n2/e2/p2`` facts (paper
Listing 1/2), runs the Listing 3 or Listing 4 programs, and decodes the
``h/2`` atoms of the optimal model back into a
:class:`~repro.solver.native.Matching`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.graph.model import PropertyGraph
from repro.solver.asp.ast import Program
from repro.solver.asp.ground import Grounder
from repro.solver.asp.parser import parse_program
from repro.solver.asp.programs import LISTING3, LISTING3_MINIMIZED, LISTING4
from repro.solver.asp.solve import Model, solve
from repro.solver.native import Matching


def _quote(value: str) -> str:
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def graph_facts(graph: PropertyGraph, suffix: str) -> str:
    """Encode a graph as Datalog facts with every argument quoted.

    Quoting keeps arbitrary node-id strings (uuids, dotted ids) inside the
    ASP term language.
    """
    lines: List[str] = []
    for node in sorted(graph.nodes(), key=lambda n: n.id):
        lines.append(f"n{suffix}({_quote(node.id)},{_quote(node.label)}).")
        for key in sorted(node.props):
            lines.append(
                f"p{suffix}({_quote(node.id)},{_quote(key)},"
                f"{_quote(node.props[key])})."
            )
    for edge in sorted(graph.edges(), key=lambda e: e.id):
        lines.append(
            f"e{suffix}({_quote(edge.id)},{_quote(edge.src)},"
            f"{_quote(edge.tgt)},{_quote(edge.label)})."
        )
        for key in sorted(edge.props):
            lines.append(
                f"p{suffix}({_quote(edge.id)},{_quote(key)},"
                f"{_quote(edge.props[key])})."
            )
    return "\n".join(lines) + ("\n" if lines else "")


def _run(program_text: str, g1: PropertyGraph, g2: PropertyGraph) -> Optional[Model]:
    source = graph_facts(g1, "1") + graph_facts(g2, "2") + program_text
    program: Program = parse_program(source)
    problem = Grounder(program).ground()
    return solve(problem)


def _model_to_matching(
    model: Model, g1: PropertyGraph
) -> Matching:
    node_map = {}
    edge_map = {}
    for name, args in model.true_atoms:
        if name != "h":
            continue
        src, tgt = str(args[0]), str(args[1])
        if g1.has_node(src):
            node_map[src] = tgt
        else:
            edge_map[src] = tgt
    return Matching(node_map, edge_map, model.cost)


def asp_find_isomorphism(
    g1: PropertyGraph, g2: PropertyGraph, minimize_properties: bool = False
) -> Optional[Matching]:
    """Run Listing 3 (optionally with the cost model) via the ASP engine."""
    program = LISTING3_MINIMIZED if minimize_properties else LISTING3
    model = _run(program, g1, g2)
    if model is None:
        return None
    return _model_to_matching(model, g1)


def asp_are_similar(g1: PropertyGraph, g2: PropertyGraph) -> bool:
    return asp_find_isomorphism(g1, g2) is not None


def asp_embed_subgraph(
    g1: PropertyGraph, g2: PropertyGraph
) -> Optional[Matching]:
    """Run Listing 4 (approximate subgraph isomorphism) via the ASP engine."""
    model = _run(LISTING4, g1, g2)
    if model is None:
        return None
    return _model_to_matching(model, g1)
