"""Graph-matching solvers: the fast native engine and the mini-ASP engine.

Both engines solve the paper's three matching problems (similarity,
generalization, approximate subgraph isomorphism).  ``engine="native"`` is
the default; ``engine="asp"`` runs the paper's actual Listing 3/4 ASP
programs through :mod:`repro.solver.asp`.
"""

from typing import Optional

from repro.graph.model import PropertyGraph
from repro.solver.asp.bridge import (
    asp_are_similar,
    asp_embed_subgraph,
    asp_find_isomorphism,
)
from repro.solver.native import (
    DUMMY_LABEL,
    Matching,
    SolverLimit,
    SolverStats,
    are_similar,
    embed_subgraph,
    find_isomorphism,
    generalize_pair,
    partition_similarity_classes,
    property_mismatch_cost,
    reset_solver_stats,
    solver_decomposition,
    solver_optimizations,
    solver_stats,
    subtract_background,
)

ENGINES = ("native", "asp")


def similarity(g1: PropertyGraph, g2: PropertyGraph, engine: str = "native") -> bool:
    """Structure-only isomorphism check with a selectable engine."""
    if engine == "native":
        return are_similar(g1, g2)
    if engine == "asp":
        return asp_are_similar(g1, g2)
    raise ValueError(f"unknown engine {engine!r}")


def isomorphism(
    g1: PropertyGraph,
    g2: PropertyGraph,
    minimize_properties: bool = False,
    engine: str = "native",
) -> Optional[Matching]:
    if engine == "native":
        return find_isomorphism(g1, g2, minimize_properties=minimize_properties)
    if engine == "asp":
        return asp_find_isomorphism(g1, g2, minimize_properties=minimize_properties)
    raise ValueError(f"unknown engine {engine!r}")


def subgraph_embedding(
    g1: PropertyGraph, g2: PropertyGraph, engine: str = "native"
) -> Optional[Matching]:
    if engine == "native":
        return embed_subgraph(g1, g2)
    if engine == "asp":
        return asp_embed_subgraph(g1, g2)
    raise ValueError(f"unknown engine {engine!r}")


__all__ = [
    "DUMMY_LABEL",
    "ENGINES",
    "Matching",
    "SolverLimit",
    "SolverStats",
    "are_similar",
    "embed_subgraph",
    "find_isomorphism",
    "generalize_pair",
    "isomorphism",
    "partition_similarity_classes",
    "property_mismatch_cost",
    "reset_solver_stats",
    "similarity",
    "solver_decomposition",
    "solver_optimizations",
    "solver_stats",
    "subgraph_embedding",
    "subtract_background",
]
