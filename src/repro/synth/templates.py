"""Syscall templates and the abstract state the generator threads through.

A benchmark program must do more than pass the spec validator: every op
marked ``expect_success`` must actually succeed when the executor runs
it on the simulated kernel (an open of a path nothing staged, a write
to a read-only descriptor, or a chmod of a file another user owns all
raise :class:`~repro.suite.executor.ExecutionError`).  The generator
therefore tracks an abstract :class:`GenState` — which staged files and
directories exist, which descriptors are open and with what access,
which pipes carry data, which children are alive, whose credentials the
program runs under — and each :class:`OpTemplate` declares when it
applies and how it transforms that state.

Templates are cross-checked against the kernel's introspected syscall
signatures (:func:`repro.kernel.syscall_signatures`) by a guard test,
so a kernel signature change surfaces as a test failure here instead of
as run-time garbage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.api.specs import OpSpec, SetupSpec

#: the two credential personas a synthesized program may run under;
#: root bypasses permission checks (safe everywhere), the user persona
#: enables deliberate-failure workloads against root-owned files
ROOT_UID, ROOT_GID = 0, 0
USER_UID, USER_GID = 1000, 1000

#: literal pools the samplers draw from (small and fixed so arg-shape
#: coverage saturates instead of exploding)
MODES = (0o600, 0o640, 0o644, 0o700, 0o755)
LENGTHS = (0, 1, 16, 64, 256)
OFFSETS = (0, 1, 8, 64)
PAYLOADS = (b"hello", b"payload", b"synthetic data\n", b"xyzzy" * 3)
MASKS = (0o022, 0o027, 0o077)
OTHER_IDS = (1000, 2000)
OPEN_FLAGS = ("O_RDWR", "O_RDONLY")
WHENCES = ("SEEK_SET", "SEEK_CUR", "SEEK_END")


@dataclass
class FdInfo:
    """One open file descriptor the program holds (a ``$var``)."""

    var: str
    readable: bool
    writable: bool
    #: regular file vs something lseek/mmap refuse (pipe/socket ends
    #: are tracked separately and never appear here)
    regular: bool = True


@dataclass
class PipeInfo:
    """One pipe's bound ``<prefix>_r``/``<prefix>_w`` variable pair."""

    prefix: str
    has_data: bool = False


@dataclass
class SockInfo:
    """One socketpair's bound ``<prefix>_a``/``<prefix>_b`` pair."""

    prefix: str
    has_data: bool = False


@dataclass
class GenState:
    """Abstract machine state threaded through one program generation."""

    uid: int = ROOT_UID
    gid: int = ROOT_GID
    setup: List[SetupSpec] = field(default_factory=list)
    files: List[str] = field(default_factory=list)
    dirs: List[str] = field(default_factory=list)
    fds: List[FdInfo] = field(default_factory=list)
    pipes: List[PipeInfo] = field(default_factory=list)
    socks: List[SockInfo] = field(default_factory=list)
    children: List[str] = field(default_factory=list)
    used_newfds: Set[int] = field(default_factory=set)
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def is_root(self) -> bool:
        return self.uid == ROOT_UID

    def fresh(self, stem: str) -> str:
        """A deterministic fresh identifier (``stem`` + counter)."""
        index = self.counters.get(stem, 0)
        self.counters[stem] = index + 1
        return f"{stem}{index}"

    def fresh_file_name(self) -> str:
        return self.fresh("new") + ".txt"

    def ensure_file(self, rng: random.Random) -> str:
        """An existing regular file — reuse one or stage a fresh one.

        Setup actions run before any op, so staging a new file mid-
        generation is always consistent with the ops emitted so far.
        """
        if self.files and rng.random() < 0.65:
            return rng.choice(self.files)
        name = self.fresh("s") + ".txt"
        self.setup.append(SetupSpec(kind="file", path=name))
        self.files.append(name)
        return name

    def ensure_dir(self, rng: random.Random) -> str:
        if self.dirs and rng.random() < 0.5:
            return rng.choice(self.dirs)
        name = self.fresh("d")
        self.setup.append(SetupSpec(kind="dir", path=name, mode=0o755))
        self.dirs.append(name)
        return name

    def readable_fds(self) -> List[FdInfo]:
        return [fd for fd in self.fds if fd.readable]

    def writable_fds(self) -> List[FdInfo]:
        return [fd for fd in self.fds if fd.writable]

    def fresh_newfd(self) -> int:
        """An unused high descriptor slot for dup2/dup3."""
        slot = 10
        while slot in self.used_newfds:
            slot += 1
        self.used_newfds.add(slot)
        return slot


@dataclass(frozen=True)
class OpTemplate:
    """One synthesizable syscall: applicability, emission, constraints."""

    call: str
    emit: Callable[[GenState, random.Random], OpSpec]
    applicable: Callable[[GenState], bool] = lambda state: True
    weight: int = 2
    #: only valid as the program's final (target) op — credential
    #: changes and execve would poison the state for later ops
    terminal: bool = False
    #: safe for the mutation engine to splice in at program start
    #: (no state preconditions beyond the staged setup)
    insertable: bool = False


def _root_only(state: GenState) -> bool:
    return state.is_root


def _user_only(state: GenState) -> bool:
    return not state.is_root


def _op(call: str, *args, result: Optional[str] = None,
        expect_success: bool = True) -> OpSpec:
    return OpSpec(call=call, args=tuple(args), result=result,
                  expect_success=expect_success)


# -- emitters ----------------------------------------------------------------


def _emit_open(state: GenState, rng: random.Random) -> OpSpec:
    path = state.ensure_file(rng)
    flags = rng.choice(OPEN_FLAGS)
    var = state.fresh("fd")
    state.fds.append(FdInfo(var, readable=True, writable=flags == "O_RDWR"))
    call = rng.choice(("open", "openat"))
    return _op(call, path, flags, result=var)


def _emit_creat(state: GenState, rng: random.Random) -> OpSpec:
    path = state.fresh_file_name()
    var = state.fresh("fd")
    state.files.append(path)
    # creat opens O_WRONLY: the descriptor cannot be read from
    state.fds.append(FdInfo(var, readable=False, writable=True))
    return _op("creat", path, rng.choice(MODES), result=var)


def _emit_close(state: GenState, rng: random.Random) -> OpSpec:
    fd = rng.choice(state.fds)
    state.fds.remove(fd)
    return _op("close", f"${fd.var}")


def _emit_dup(state: GenState, rng: random.Random) -> OpSpec:
    fd = rng.choice(state.fds)
    var = state.fresh("fd")
    state.fds.append(FdInfo(var, fd.readable, fd.writable, fd.regular))
    return _op("dup", f"${fd.var}", result=var)


def _emit_dup2(state: GenState, rng: random.Random) -> OpSpec:
    fd = rng.choice(state.fds)
    var = state.fresh("fd")
    state.fds.append(FdInfo(var, fd.readable, fd.writable, fd.regular))
    call = rng.choice(("dup2", "dup3"))
    return _op(call, f"${fd.var}", state.fresh_newfd(), result=var)


def _emit_read(state: GenState, rng: random.Random) -> OpSpec:
    fd = rng.choice(state.readable_fds())
    if rng.random() < 0.5:
        return _op("read", f"${fd.var}", rng.choice(LENGTHS))
    return _op("pread", f"${fd.var}", rng.choice(LENGTHS),
               rng.choice(OFFSETS))


def _emit_write(state: GenState, rng: random.Random) -> OpSpec:
    fd = rng.choice(state.writable_fds())
    if rng.random() < 0.5:
        return _op("write", f"${fd.var}", rng.choice(PAYLOADS))
    return _op("pwrite", f"${fd.var}", rng.choice(PAYLOADS),
               rng.choice(OFFSETS))


def _emit_lseek(state: GenState, rng: random.Random) -> OpSpec:
    fd = rng.choice([f for f in state.fds if f.regular])
    return _op("lseek", f"${fd.var}", rng.choice(OFFSETS),
               rng.choice(WHENCES))


def _emit_fstat(state: GenState, rng: random.Random) -> OpSpec:
    fd = rng.choice(state.fds)
    return _op("fstat", f"${fd.var}")


def _emit_ftruncate(state: GenState, rng: random.Random) -> OpSpec:
    fd = rng.choice([f for f in state.writable_fds() if f.regular])
    return _op("ftruncate", f"${fd.var}", rng.choice(LENGTHS))


def _emit_mmap(state: GenState, rng: random.Random) -> OpSpec:
    fd = rng.choice([f for f in state.readable_fds() if f.regular])
    return _op("mmap", f"${fd.var}", "PROT_READ")


def _emit_link(state: GenState, rng: random.Random) -> OpSpec:
    old = state.ensure_file(rng)
    new = state.fresh("hard") + ".txt"
    state.files.append(new)
    call = rng.choice(("link", "linkat"))
    return _op(call, old, new)


def _emit_symlink(state: GenState, rng: random.Random) -> OpSpec:
    target = state.ensure_file(rng)
    link = state.fresh("soft") + ".txt"
    # the link path is deliberately NOT added to files: the target may
    # be renamed or unlinked later, which would dangle the symlink
    call = rng.choice(("symlink", "symlinkat"))
    return _op(call, target, link)


def _emit_mknod(state: GenState, rng: random.Random) -> OpSpec:
    path = state.fresh("fifo")
    call = rng.choice(("mknod", "mknodat"))
    return _op(call, path, "S_IFIFO")


def _emit_rename(state: GenState, rng: random.Random) -> OpSpec:
    old = state.ensure_file(rng)
    new = state.fresh("moved") + ".txt"
    state.files.remove(old)
    state.files.append(new)
    call = rng.choice(("rename", "renameat"))
    return _op(call, old, new)


def _emit_truncate(state: GenState, rng: random.Random) -> OpSpec:
    return _op("truncate", state.ensure_file(rng), rng.choice(LENGTHS))


def _emit_unlink(state: GenState, rng: random.Random) -> OpSpec:
    path = rng.choice(state.files)
    state.files.remove(path)
    call = rng.choice(("unlink", "unlinkat"))
    return _op(call, path)


def _emit_mkdir(state: GenState, rng: random.Random) -> OpSpec:
    path = state.fresh("d")
    state.dirs.append(path)
    return _op("mkdir", path, 0o755)


def _emit_rmdir(state: GenState, rng: random.Random) -> OpSpec:
    path = rng.choice(state.dirs)
    state.dirs.remove(path)
    return _op("rmdir", path)


def _emit_stat(state: GenState, rng: random.Random) -> OpSpec:
    return _op("stat", state.ensure_file(rng))


def _emit_access(state: GenState, rng: random.Random) -> OpSpec:
    return _op("access", state.ensure_file(rng), 4)


def _emit_getcwd(state: GenState, rng: random.Random) -> OpSpec:
    return _op("getcwd")


def _emit_getpid(state: GenState, rng: random.Random) -> OpSpec:
    return _op("getpid")


def _emit_umask(state: GenState, rng: random.Random) -> OpSpec:
    return _op("umask", rng.choice(MASKS))


def _emit_chmod(state: GenState, rng: random.Random) -> OpSpec:
    # sampled modes all keep owner rw, so later opens still succeed
    path = state.ensure_file(rng)
    call = rng.choice(("chmod", "fchmodat"))
    return _op(call, path, rng.choice(MODES))


def _emit_fchmod(state: GenState, rng: random.Random) -> OpSpec:
    fd = rng.choice([f for f in state.fds if f.regular])
    return _op("fchmod", f"${fd.var}", rng.choice(MODES))


def _emit_chown(state: GenState, rng: random.Random) -> OpSpec:
    # root only; ownership moves away, so the file leaves the pool
    # (a non-root persona could no longer rely on owner bits — and even
    # under root, keeping it would let chmod sample a mode the new
    # owner scenario never re-checks)
    path = rng.choice(state.files)
    state.files.remove(path)
    other = rng.choice(OTHER_IDS)
    call = rng.choice(("chown", "fchownat"))
    return _op(call, path, other, other)


def _emit_fchown(state: GenState, rng: random.Random) -> OpSpec:
    fd = rng.choice([f for f in state.fds if f.regular])
    other = rng.choice(OTHER_IDS)
    return _op("fchown", f"${fd.var}", other, other)


def _emit_pipe(state: GenState, rng: random.Random) -> OpSpec:
    prefix = state.fresh("p")
    state.pipes.append(PipeInfo(prefix))
    if rng.random() < 0.5:
        return _op("pipe2", "O_CLOEXEC", result=prefix)
    return _op("pipe", result=prefix)


def _emit_pipe_write(state: GenState, rng: random.Random) -> OpSpec:
    pipe = rng.choice(state.pipes)
    pipe.has_data = True
    return _op("write", f"${pipe.prefix}_w", rng.choice(PAYLOADS))


def _emit_pipe_read(state: GenState, rng: random.Random) -> OpSpec:
    pipe = rng.choice([p for p in state.pipes if p.has_data])
    return _op("read", f"${pipe.prefix}_r", rng.choice(LENGTHS))


def _emit_tee(state: GenState, rng: random.Random) -> OpSpec:
    source = rng.choice([p for p in state.pipes if p.has_data])
    sinks = [p for p in state.pipes if p.prefix != source.prefix]
    if sinks:
        sink = rng.choice(sinks)
    else:
        sink = PipeInfo(state.fresh("p"))
        state.pipes.append(sink)
        # tee needs a second pipe; recursion depth one, then emit
        return _op("pipe", result=sink.prefix)
    sink.has_data = True
    return _op("tee", f"${source.prefix}_r", f"${sink.prefix}_w",
               rng.choice(LENGTHS[1:]))


def _emit_socketpair(state: GenState, rng: random.Random) -> OpSpec:
    prefix = state.fresh("sk")
    state.socks.append(SockInfo(prefix))
    return _op("socketpair", result=prefix)


def _emit_send(state: GenState, rng: random.Random) -> OpSpec:
    sock = rng.choice(state.socks)
    sock.has_data = True
    return _op("send", f"${sock.prefix}_a", rng.choice(PAYLOADS))


def _emit_recv(state: GenState, rng: random.Random) -> OpSpec:
    sock = rng.choice([s for s in state.socks if s.has_data])
    return _op("recv", f"${sock.prefix}_b", rng.choice(LENGTHS))


def _emit_fork(state: GenState, rng: random.Random) -> OpSpec:
    var = state.fresh("child")
    state.children.append(var)
    return _op("fork", result=var)


def _emit_vfork(state: GenState, rng: random.Random) -> OpSpec:
    # the executor exits a vforked child immediately (DV semantics), so
    # it is never killable — don't add it to children
    return _op("vfork", result=state.fresh("child"))


def _emit_clone(state: GenState, rng: random.Random) -> OpSpec:
    return _op("clone", "CLONE_VM|SIGCHLD", result=state.fresh("child"))


def _emit_kill(state: GenState, rng: random.Random) -> OpSpec:
    child = rng.choice(state.children)
    state.children.remove(child)
    return _op("kill", f"${child}", "SIGKILL")


def _emit_execve(state: GenState, rng: random.Random) -> OpSpec:
    # terminal: exec may drop O_CLOEXEC descriptors, so nothing runs after
    return _op("execve", "/bin/true")


def _emit_setid(state: GenState, rng: random.Random) -> OpSpec:
    # terminal: after dropping privileges the persona's staged files may
    # no longer be writable, so no op may follow
    other = rng.choice(OTHER_IDS)
    call = rng.choice((
        "setuid", "setgid", "setreuid", "setregid",
        "setresuid", "setresgid",
    ))
    if call in ("setuid", "setgid"):
        return _op(call, other)
    if call in ("setreuid", "setregid"):
        return _op(call, other, other)
    return _op(call, other, other, other)


def _emit_open_denied(state: GenState, rng: random.Random) -> OpSpec:
    # §3.1 failure workload: a normal user probing root-only files
    return _op("open", "/etc/shadow", "O_RDONLY", expect_success=False)


def _emit_chmod_denied(state: GenState, rng: random.Random) -> OpSpec:
    return _op("chmod", "/etc/passwd", 0o666, expect_success=False)


def _emit_rename_denied(state: GenState, rng: random.Random) -> OpSpec:
    source = state.ensure_file(rng)
    return _op("rename", source, "/etc/passwd", expect_success=False)


# -- the template table ------------------------------------------------------

def _has(attr: str) -> Callable[[GenState], bool]:
    return lambda state: bool(getattr(state, attr))


_HAS_FDS = _has("fds")
_HAS_FILES = _has("files")
_HAS_DIRS = _has("dirs")
_HAS_PIPES = _has("pipes")
_HAS_SOCKS = _has("socks")
_HAS_CHILDREN = _has("children")


def _has_regular_fd(state: GenState) -> bool:
    return any(fd.regular for fd in state.fds)


def _has_readable_fd(state: GenState) -> bool:
    return any(fd.readable for fd in state.fds)


def _has_readable_regular_fd(state: GenState) -> bool:
    return any(fd.readable and fd.regular for fd in state.fds)


def _has_writable_fd(state: GenState) -> bool:
    return any(fd.writable for fd in state.fds)


def _has_writable_regular_fd(state: GenState) -> bool:
    return any(fd.writable and fd.regular for fd in state.fds)


def _has_loaded_pipe(state: GenState) -> bool:
    return any(pipe.has_data for pipe in state.pipes)


def _has_loaded_sock(state: GenState) -> bool:
    return any(sock.has_data for sock in state.socks)


TEMPLATES: Tuple[OpTemplate, ...] = (
    OpTemplate("open", _emit_open, weight=5, insertable=True),
    OpTemplate("creat", _emit_creat, weight=4),
    OpTemplate("close", _emit_close, _HAS_FDS, weight=3),
    OpTemplate("dup", _emit_dup, _HAS_FDS),
    OpTemplate("dup2", _emit_dup2, _HAS_FDS),
    OpTemplate("read", _emit_read, _has_readable_fd, weight=4),
    OpTemplate("write", _emit_write, _has_writable_fd, weight=4),
    OpTemplate("lseek", _emit_lseek, _has_regular_fd),
    OpTemplate("fstat", _emit_fstat, _HAS_FDS),
    OpTemplate("ftruncate", _emit_ftruncate, _has_writable_regular_fd),
    OpTemplate("mmap", _emit_mmap, _has_readable_regular_fd),
    OpTemplate("link", _emit_link, weight=2),
    OpTemplate("symlink", _emit_symlink, weight=2),
    OpTemplate("mknod", _emit_mknod),
    OpTemplate("rename", _emit_rename, weight=2),
    OpTemplate("truncate", _emit_truncate),
    OpTemplate("unlink", _emit_unlink, _HAS_FILES, weight=2),
    OpTemplate("mkdir", _emit_mkdir),
    OpTemplate("rmdir", _emit_rmdir, _HAS_DIRS),
    OpTemplate("stat", _emit_stat, insertable=True),
    OpTemplate("access", _emit_access, insertable=True),
    OpTemplate("getcwd", _emit_getcwd, weight=1, insertable=True),
    OpTemplate("getpid", _emit_getpid, weight=1, insertable=True),
    OpTemplate("umask", _emit_umask, weight=1, insertable=True),
    OpTemplate("chmod", _emit_chmod),
    OpTemplate("fchmod", _emit_fchmod, _has_regular_fd),
    OpTemplate("chown", _emit_chown,
               lambda state: state.is_root and bool(state.files)),
    OpTemplate("fchown", _emit_fchown,
               lambda state: state.is_root and _has_regular_fd(state)),
    OpTemplate("pipe", _emit_pipe, weight=3, insertable=True),
    OpTemplate("pipe_write", _emit_pipe_write, _HAS_PIPES, weight=3),
    OpTemplate("pipe_read", _emit_pipe_read, _has_loaded_pipe),
    OpTemplate("tee", _emit_tee, _has_loaded_pipe),
    OpTemplate("socketpair", _emit_socketpair, insertable=True),
    OpTemplate("send", _emit_send, _HAS_SOCKS),
    OpTemplate("recv", _emit_recv, _has_loaded_sock),
    OpTemplate("fork", _emit_fork, weight=3),
    OpTemplate("vfork", _emit_vfork),
    OpTemplate("clone", _emit_clone),
    OpTemplate("kill", _emit_kill, _HAS_CHILDREN),
    OpTemplate("execve", _emit_execve, terminal=True),
    OpTemplate("setid", _emit_setid, _root_only, terminal=True),
    OpTemplate("open_denied", _emit_open_denied, _user_only, weight=1),
    OpTemplate("chmod_denied", _emit_chmod_denied, _user_only, weight=1),
    OpTemplate("rename_denied", _emit_rename_denied, _user_only, weight=1),
)

#: template name -> the kernel syscalls it may emit (the guard test
#: checks every one against the introspected signatures)
TEMPLATE_CALLS: Dict[str, Tuple[str, ...]] = {
    "open": ("open", "openat"),
    "creat": ("creat",),
    "close": ("close",),
    "dup": ("dup",),
    "dup2": ("dup2", "dup3"),
    "read": ("read", "pread"),
    "write": ("write", "pwrite"),
    "lseek": ("lseek",),
    "fstat": ("fstat",),
    "ftruncate": ("ftruncate",),
    "mmap": ("mmap",),
    "link": ("link", "linkat"),
    "symlink": ("symlink", "symlinkat"),
    "mknod": ("mknod", "mknodat"),
    "rename": ("rename", "renameat"),
    "truncate": ("truncate",),
    "unlink": ("unlink", "unlinkat"),
    "mkdir": ("mkdir",),
    "rmdir": ("rmdir",),
    "stat": ("stat",),
    "access": ("access",),
    "getcwd": ("getcwd",),
    "getpid": ("getpid",),
    "umask": ("umask",),
    "chmod": ("chmod", "fchmodat"),
    "fchmod": ("fchmod",),
    "chown": ("chown", "fchownat"),
    "fchown": ("fchown",),
    "pipe": ("pipe", "pipe2"),
    "pipe_write": ("write",),
    "pipe_read": ("read",),
    "tee": ("tee", "pipe"),
    "socketpair": ("socketpair",),
    "send": ("send",),
    "recv": ("recv",),
    "fork": ("fork",),
    "vfork": ("vfork",),
    "clone": ("clone",),
    "kill": ("kill",),
    "execve": ("execve",),
    "setid": ("setuid", "setgid", "setreuid", "setregid",
              "setresuid", "setresgid"),
    "open_denied": ("open",),
    "chmod_denied": ("chmod",),
    "rename_denied": ("rename",),
}
