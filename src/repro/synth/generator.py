"""Seeded, deterministic benchmark-spec generation.

:class:`SpecGenerator` samples the template table under a single
``random.Random`` — every random decision (program length, persona,
template choice, argument literals) flows through that one generator,
so a seed fully determines the emitted specs (the unseeded-randomness
guard test enforces that nothing in ``src/`` touches module-level
``random`` state).

Emitted programs are a prefix of non-target ops followed by a suffix of
target ops.  That shape is what makes both dataflow variants valid by
construction: the background program drops exactly the suffix, so no
surviving op can reference a dropped op's result.  Every candidate is
then pushed through the PR 4 semantic validator *and* a dry run of both
program variants on a fresh simulated kernel (:func:`dry_run`) — the
oracle that catches anything the abstract state model missed.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Sequence, Tuple

from repro.api.specs import BenchmarkSpec, OpSpec, ProgramSpec, compile_spec
from repro.suite.executor import ExecutionError, ProgramExecutor
from repro.synth.templates import (
    ROOT_UID,
    TEMPLATES,
    USER_GID,
    USER_UID,
    GenState,
    OpTemplate,
)

#: retries before the generator gives up on one candidate (the state
#: model makes dry-run failures rare; this bounds pathological seeds)
MAX_ATTEMPTS = 25

#: dry-run execution seed; any fixed value works — success or failure
#: of a synthesized program must not depend on recording randomness
DRY_RUN_SEED = 0


class GenerationError(Exception):
    """The generator could not produce a valid candidate (bad config)."""


def dry_run(spec: BenchmarkSpec) -> bool:
    """Execute both program variants once on a fresh kernel.

    Returns ``True`` iff every op behaved as its ``expect_success``
    declaration promises, in the foreground *and* background variant —
    the run-time half of the validation oracle (the semantic validator
    is the static half; :func:`compile_spec` runs it).
    """
    try:
        program = compile_spec(spec)
        executor = ProgramExecutor(program, seed=DRY_RUN_SEED)
        executor.run(foreground=True)
        executor.run(foreground=False)
    except ExecutionError:
        return False
    return True


class SpecGenerator:
    """Generates valid :class:`BenchmarkSpec` values from one seed."""

    def __init__(
        self,
        seed: int,
        max_ops: int = 6,
        name_prefix: str = "synth",
        tags: Tuple[str, ...] = ("synth",),
    ) -> None:
        if max_ops < 2:
            raise GenerationError("max_ops must be at least 2")
        self.rng = random.Random(seed)
        self.seed = seed
        self.max_ops = max_ops
        self.name_prefix = name_prefix
        self.tags = tuple(tags)
        self._index = 0

    # -- public API ---------------------------------------------------------

    def generate(self) -> BenchmarkSpec:
        """The next valid candidate (validator- and dry-run-checked)."""
        for _ in range(MAX_ATTEMPTS):
            spec = self._attempt()
            if spec is None:
                continue
            try:
                spec.validate()
            except Exception:
                continue
            if dry_run(spec):
                self._index += 1
                return spec
        raise GenerationError(
            f"no valid candidate after {MAX_ATTEMPTS} attempts "
            f"(seed {self.seed}, index {self._index})"
        )

    def generate_many(self, count: int) -> List[BenchmarkSpec]:
        return [self.generate() for _ in range(count)]

    def next_name(self) -> str:
        """The deterministic name the next emitted spec will carry."""
        return f"{self.name_prefix}_s{self.seed}_{self._index:03d}"

    def claim_name(self) -> str:
        """Allocate the next candidate name (for mutation-born specs)."""
        name = self.next_name()
        self._index += 1
        return name

    # -- internals ----------------------------------------------------------

    def _attempt(self) -> Optional[BenchmarkSpec]:
        rng = self.rng
        state = GenState()
        if rng.random() < 0.15:
            state.uid, state.gid = USER_UID, USER_GID
        total = rng.randint(2, self.max_ops)
        n_targets = rng.randint(1, min(2, total))
        ops: List[OpSpec] = []
        for position in range(total):
            is_target = position >= total - n_targets
            is_last = position == total - 1
            template = self._pick(state, terminal_ok=is_last and is_target)
            if template is None:
                return None
            op = template.emit(state, rng)
            if is_target:
                op = dataclasses.replace(op, target=True)
            ops.append(op)
        return self._assemble(ops, state)

    def _pick(
        self, state: GenState, terminal_ok: bool
    ) -> Optional[OpTemplate]:
        candidates = [
            template for template in TEMPLATES
            if (terminal_ok or not template.terminal)
            and template.applicable(state)
        ]
        if not candidates:
            return None
        weights = [template.weight for template in candidates]
        return self.rng.choices(candidates, weights=weights, k=1)[0]

    def _assemble(
        self, ops: Sequence[OpSpec], state: GenState
    ) -> BenchmarkSpec:
        calls = "+".join(
            dict.fromkeys(op.call for op in ops if op.target)
        )
        persona = "root" if state.uid == ROOT_UID else "user"
        return BenchmarkSpec(
            name=self.next_name(),
            program=ProgramSpec(
                ops=tuple(ops),
                setup=tuple(state.setup),
                run_as_uid=state.uid,
                run_as_gid=state.gid,
            ),
            group=0,
            group_name="Synthesized",
            description=f"synthesized ({persona}): targets {calls}",
            tags=self.tags,
        )
