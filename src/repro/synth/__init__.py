"""``repro.synth`` — coverage-guided benchmark synthesis.

The paper's suite is a fixed set of hand-written benchmarks; this
package *grows* it.  A seeded, deterministic generator
(:mod:`repro.synth.generator`) emits valid
:class:`~repro.api.specs.BenchmarkSpec` documents by sampling the
simulated kernel's introspected syscall signatures
(:func:`repro.kernel.syscall_signatures`) under an abstract state
machine that guarantees every emitted program actually executes;
mutation operators (:mod:`repro.synth.mutate`) derive variants from
builtin or synthesized seeds; a coverage model
(:mod:`repro.synth.coverage`) tracks which syscalls, argument shapes,
and result-graph motifs the suite has exercised; and the curation loop
(:mod:`repro.synth.engine`) runs candidates through the staged
pipeline, deduplicates them by generalized-graph fingerprint, and keeps
only specs that add coverage.

Everything is driven by one seeded ``random.Random`` — the same seed
always yields the same specs, the same digests, and the same coverage
report.

The supported entry points are
:meth:`repro.api.BenchmarkService.synthesize`, ``POST /v1/synth``, and
``provmark synth``; this package is the machinery behind them.
"""

from repro.synth.coverage import CoverageModel
from repro.synth.engine import CandidateOutcome, SynthRun, run_synthesis
from repro.synth.generator import GenerationError, SpecGenerator, dry_run
from repro.synth.mutate import MUTATION_OPERATORS, mutate_spec

__all__ = [
    "CandidateOutcome",
    "CoverageModel",
    "GenerationError",
    "MUTATION_OPERATORS",
    "SpecGenerator",
    "SynthRun",
    "dry_run",
    "mutate_spec",
    "run_synthesis",
]
