"""The synthesis engine: generate, mutate, evaluate, curate.

One :func:`run_synthesis` call is a deterministic function of its
arguments (notably ``seed``):

1. **Candidate production.** ``count`` candidates are produced; each is
   either freshly generated (:class:`~repro.synth.generator.SpecGenerator`)
   or derived by a mutation operator from a seed pool holding the
   builtin suite's specs plus every candidate produced so far.  All
   randomness flows through the generator's single seeded
   ``random.Random``; mutants that fail the oracle (semantic validator
   + dry run) fall back to fresh generation, so exactly ``count``
   candidates always emerge.
2. **Evaluation.** Every candidate runs through the staged pipeline
   under every requested tool — ``run_many``'s process pool when
   ``max_workers`` allows (results in input order, identical to
   serial), and artifact-store-backed when a store is configured, so
   re-running a sweep is warm.
3. **Curation.** In candidate order: a candidate whose run FAILED under
   any tool is dropped; one whose per-tool target-graph fingerprints
   (:func:`repro.graph.stats.graph_fingerprint`) match an earlier
   candidate is a *duplicate*; one contributing no coverage key the
   model (seeded from the existing suite) has not seen is *no gain*;
   the rest survive, and their keys extend the model.

The service layer (:meth:`repro.api.BenchmarkService.synthesize`)
registers survivors and persists their specs; this module performs no
registration itself.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.api.specs import BenchmarkSpec, compile_spec
from repro.core.pipeline import PipelineConfig, ProvMark
from repro.core.result import BenchmarkResult, Classification
from repro.core.stages import ProgressCallback
from repro.graph.stats import graph_fingerprint
from repro.suite.registry import SUITE_REGISTRY, SuiteRegistry
from repro.synth.coverage import CoverageModel, motif_keys, spec_keys
from repro.synth.generator import SpecGenerator, dry_run
from repro.synth.mutate import mutate_spec

#: attempts at deriving a valid mutant before falling back to fresh
#: generation for that candidate slot
MUTATION_ATTEMPTS = 4


@dataclass(frozen=True)
class CoverageCounts:
    """Coverage-model sizes per family at one point in time."""

    syscalls: int
    arg_shapes: int
    motifs: int


@dataclass(frozen=True)
class CandidateOutcome:
    """One candidate's journey through the curation loop."""

    spec: BenchmarkSpec
    #: "generated" or "mutated:<operator><-<seed benchmark>"
    origin: str
    #: "kept" | "duplicate" | "no_gain" | "failed"
    verdict: str
    #: combined per-tool target-graph fingerprint ("" when failed)
    fingerprint: str
    #: number of new coverage keys this candidate contributed
    gain: int


@dataclass
class SynthRun:
    """Everything one synthesis run produced (pre-registration)."""

    survivors: List[BenchmarkSpec]
    outcomes: List[CandidateOutcome]
    generated: int
    mutated: int
    duplicates: int
    no_gain: int
    failed: int
    baseline: CoverageCounts
    final: CoverageCounts
    new_syscalls: List[str]
    results: Dict[str, List[BenchmarkResult]] = field(default_factory=dict)


DriverFactory = Callable[[str], ProvMark]


def _default_driver_factory(
    seed: int,
    trials: Optional[int],
    engine: str,
    store_path: Optional[str],
) -> DriverFactory:
    def factory(tool: str) -> ProvMark:
        return ProvMark._internal(config=PipelineConfig(
            tool=tool,
            trials=trials,
            engine=engine,
            seed=seed,
            store_path=store_path,
            # synthesized programs are content-addressed like any other:
            # a re-run of the same synthesis against the same store
            # resumes completed candidate runs instead of recomputing
            resume=store_path is not None,
        ))
    return factory


def _baseline_specs(registry: SuiteRegistry) -> List[BenchmarkSpec]:
    """The registry's spec view, name order (deterministic seeding)."""
    snapshot = registry.snapshot()
    return [registry.spec(name) for name in sorted(snapshot)]


def _produce_candidates(
    generator: SpecGenerator,
    count: int,
    mutation_rate: float,
    seed_pool: List[BenchmarkSpec],
    tags: Tuple[str, ...],
) -> List[Tuple[BenchmarkSpec, str]]:
    rng = generator.rng
    candidates: List[Tuple[BenchmarkSpec, str]] = []
    for _ in range(count):
        produced: Optional[Tuple[BenchmarkSpec, str]] = None
        if seed_pool and rng.random() < mutation_rate:
            produced = _try_mutation(generator, rng, seed_pool, tags)
        if produced is None:
            produced = (generator.generate(), "generated")
        candidates.append(produced)
        seed_pool.append(produced[0])
    return candidates


def _try_mutation(
    generator: SpecGenerator,
    rng: random.Random,
    seed_pool: List[BenchmarkSpec],
    tags: Tuple[str, ...],
) -> Optional[Tuple[BenchmarkSpec, str]]:
    for _ in range(MUTATION_ATTEMPTS):
        seed_spec = rng.choice(seed_pool)
        derived = mutate_spec(seed_spec, rng, generator.next_name())
        if derived is None:
            continue
        operator, mutant = derived
        mutant = dataclasses.replace(mutant, tags=tags)
        try:
            mutant.validate()
        except Exception:
            continue
        if not dry_run(mutant):
            continue
        generator.claim_name()
        return mutant, f"mutated:{operator}<-{seed_spec.name}"
    return None


def _evaluate(
    programs: Sequence,
    tools: Sequence[str],
    driver_factory: DriverFactory,
    max_workers: Optional[int],
    progress: Optional[ProgressCallback],
) -> Dict[str, List[BenchmarkResult]]:
    results: Dict[str, List[BenchmarkResult]] = {}
    for tool in tools:
        driver = driver_factory(tool)
        if progress is not None:
            # stage-boundary observation (and job cancellation) needs
            # the serial in-process path, like BenchmarkService.run_batch
            driver.progress = progress
            results[tool] = [
                driver.run_benchmark(program) for program in programs
            ]
            driver.progress = None
        elif max_workers is not None and max_workers > 1:
            results[tool] = driver.run_many(
                list(programs), max_workers=max_workers
            )
        else:
            results[tool] = [
                driver.run_benchmark(program) for program in programs
            ]
    return results


def run_synthesis(
    *,
    seed: int,
    count: int,
    tools: Sequence[str] = ("spade", "opus", "camflow"),
    max_ops: int = 6,
    mutation_rate: float = 0.4,
    name_prefix: str = "synth",
    tags: Tuple[str, ...] = ("synth",),
    trials: Optional[int] = None,
    engine: str = "native",
    store_path: Optional[str] = None,
    max_workers: Optional[int] = None,
    registry: Optional[SuiteRegistry] = None,
    driver_factory: Optional[DriverFactory] = None,
    progress: Optional[ProgressCallback] = None,
) -> SynthRun:
    """One full generate → mutate → evaluate → curate pass."""
    registry = registry if registry is not None else SUITE_REGISTRY
    if driver_factory is None:
        driver_factory = _default_driver_factory(
            seed, trials, engine, store_path
        )
    generator = SpecGenerator(
        seed, max_ops=max_ops, name_prefix=name_prefix, tags=tags
    )
    baseline_pool = _baseline_specs(registry)
    candidates = _produce_candidates(
        generator, count, mutation_rate, list(baseline_pool), tags
    )
    programs = [compile_spec(spec) for spec, _ in candidates]
    results = _evaluate(programs, tools, driver_factory, max_workers, progress)

    model = CoverageModel.from_specs(baseline_pool)
    baseline = CoverageCounts(model.syscalls, model.arg_shapes, model.motifs)
    base_syscalls = set(model.covered_syscalls())

    run = SynthRun(
        survivors=[], outcomes=[],
        generated=sum(1 for _, o in candidates if o == "generated"),
        mutated=sum(1 for _, o in candidates if o != "generated"),
        duplicates=0, no_gain=0, failed=0,
        baseline=baseline, final=baseline, new_syscalls=[],
        results=results,
    )
    seen_fingerprints: Set[str] = set()
    for index, (spec, origin) in enumerate(candidates):
        candidate_results = [results[tool][index] for tool in tools]
        verdict, fingerprint, gain = _curate(
            spec, tools, candidate_results, model, seen_fingerprints
        )
        if verdict == "kept":
            run.survivors.append(spec)
        elif verdict == "duplicate":
            run.duplicates += 1
        elif verdict == "no_gain":
            run.no_gain += 1
        else:
            run.failed += 1
        run.outcomes.append(CandidateOutcome(
            spec=spec, origin=origin, verdict=verdict,
            fingerprint=fingerprint, gain=gain,
        ))
    run.final = CoverageCounts(model.syscalls, model.arg_shapes, model.motifs)
    run.new_syscalls = sorted(set(model.covered_syscalls()) - base_syscalls)
    return run


def _curate(
    spec: BenchmarkSpec,
    tools: Sequence[str],
    candidate_results: Sequence[BenchmarkResult],
    model: CoverageModel,
    seen_fingerprints: Set[str],
) -> Tuple[str, str, int]:
    """Keep/drop one candidate; updates model and fingerprint set."""
    if any(
        result.classification is Classification.FAILED
        for result in candidate_results
    ):
        return "failed", "", 0
    fingerprint = "+".join(
        f"{tool}:{graph_fingerprint(result.target_graph)[:16]}"
        for tool, result in zip(tools, candidate_results)
    )
    if fingerprint in seen_fingerprints:
        return "duplicate", fingerprint, 0
    seen_fingerprints.add(fingerprint)
    keys = spec_keys(spec)
    for tool, result in zip(tools, candidate_results):
        keys |= motif_keys(tool, result.target_graph)
    gain = model.gain(keys)
    if not gain:
        return "no_gain", fingerprint, 0
    model.observe(keys)
    return "kept", fingerprint, len(gain)
