"""The coverage model behind curation: what has the suite exercised?

Coverage is a set of hashable keys in three families:

* ``("syscall", call)`` — the benchmark invokes this syscall at all;
* ``("shape", call, token, ...)`` — the benchmark invokes it with this
  argument shape (one token per argument: ``int``/``str``/``bytes``/
  ``var``, plus a ``!`` marker for expected-failure invocations);
* ``("node", tool, label)`` / ``("edge", tool, src, label, tgt)`` —
  the benchmark's *target graph* under ``tool`` contains this node
  label / edge-label triple (the motif vocabulary of
  :func:`repro.graph.stats.motif_signature`).

Spec-level keys can be seeded from the registry without running
anything; motif keys accrue as candidates are evaluated through the
pipeline.  A candidate *adds coverage* iff it contributes at least one
key the model has not seen — the curation loop's keep/drop criterion.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.api.specs import BenchmarkSpec
from repro.graph.model import PropertyGraph
from repro.graph.stats import motif_signature

Key = Tuple[str, ...]


def _arg_token(arg: object) -> str:
    if isinstance(arg, bool):
        return "bool"
    if isinstance(arg, int):
        return "int"
    if isinstance(arg, bytes):
        return "bytes"
    if isinstance(arg, str) and arg.startswith("$"):
        return "var"
    return "str"


def spec_keys(spec: BenchmarkSpec) -> Set[Key]:
    """The static coverage keys one spec contributes."""
    keys: Set[Key] = set()
    for op in spec.program.ops:
        keys.add(("syscall", op.call))
        shape: Tuple[str, ...] = tuple(_arg_token(a) for a in op.args)
        if not op.expect_success:
            shape = shape + ("!",)
        keys.add(("shape", op.call) + shape)
    return keys


def motif_keys(tool: str, graph: PropertyGraph) -> Set[Key]:
    """The graph-motif coverage keys one target graph contributes."""
    labels, triples = motif_signature(graph)
    keys: Set[Key] = {("node", tool, label) for label in labels}
    keys.update(("edge", tool) + triple for triple in triples)
    return keys


class CoverageModel:
    """An accumulating set of coverage keys with per-family counts."""

    def __init__(self) -> None:
        self._keys: Set[Key] = set()

    @classmethod
    def from_specs(cls, specs: Iterable[BenchmarkSpec]) -> "CoverageModel":
        """Seed a model with the static keys of an existing suite."""
        model = cls()
        for spec in specs:
            model.observe(spec_keys(spec))
        return model

    def observe(self, keys: Iterable[Key]) -> None:
        self._keys.update(keys)

    def gain(self, keys: Iterable[Key]) -> Set[Key]:
        """The subset of ``keys`` the model has not yet seen."""
        return set(keys) - self._keys

    def __contains__(self, key: Key) -> bool:
        return key in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    # -- reporting ----------------------------------------------------------

    def count(self, family: str) -> int:
        return sum(1 for key in self._keys if key[0] == family)

    @property
    def syscalls(self) -> int:
        return self.count("syscall")

    @property
    def arg_shapes(self) -> int:
        return self.count("shape")

    @property
    def motifs(self) -> int:
        return sum(
            1 for key in self._keys if key[0] in ("node", "edge")
        )

    def covered_syscalls(self) -> List[str]:
        return sorted(key[1] for key in self._keys if key[0] == "syscall")
