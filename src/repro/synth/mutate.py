"""Mutation operators: deriving benchmark variants from existing seeds.

Each operator takes a seed :class:`BenchmarkSpec` (a builtin registry
row or an earlier synthesized candidate) and a seeded ``random.Random``
and returns a *candidate* mutant — or ``None`` when the seed offers no
applicable edit.  Operators are purely syntactic; the engine puts every
mutant through the same oracle as generated specs (semantic validation
plus a dry run of both variants) and discards the ones that fail, so an
operator never needs to prove feasibility, only to propose plausibly.

Specs are frozen dataclasses: every operator builds a *new* spec and
can never mutate the seed in place — the registry-immutability
regression test pins that down for builtin rows.

Operators (the classic program-fuzzing quintet, specialized to this
op vocabulary):

* :func:`perturb_arg` — resample one literal argument (mode, length,
  offset, mask, payload bytes) within its kind's pool;
* :func:`insert_op` — splice a fresh, precondition-free op at program
  start (non-target, so both variants gain it);
* :func:`delete_op` — drop a non-target op whose results nothing
  references;
* :func:`swap_ops` — exchange two adjacent non-target ops that do not
  feed each other;
* :func:`substitute_target` — replace a target op with a different
  syscall over the same principal argument.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, List, Optional, Set, Tuple

from repro.api.specs import BenchmarkSpec, OpSpec
from repro.kernel.introspect import ArgKind, syscall_signatures
from repro.synth.templates import LENGTHS, MASKS, MODES, OFFSETS, PAYLOADS

MutationOperator = Callable[[BenchmarkSpec, random.Random], Optional[BenchmarkSpec]]

#: argument kinds whose literals may be resampled without affecting
#: whether the op succeeds
_PERTURBABLE_INT: dict = {
    ArgKind.MODE: MODES,
    ArgKind.LENGTH: LENGTHS,
    ArgKind.OFFSET: OFFSETS,
    ArgKind.MASK: MASKS,
}


def _with_ops(spec: BenchmarkSpec, ops: Tuple[OpSpec, ...]) -> BenchmarkSpec:
    return dataclasses.replace(
        spec, program=dataclasses.replace(spec.program, ops=ops)
    )


def _bound_vars(op: OpSpec) -> Set[str]:
    """Variables an op binds (mirrors the executor's binding rules)."""
    bound: Set[str] = set()
    if op.result:
        bound.add(op.result)
    if op.call in ("pipe", "pipe2"):
        prefix = op.result or "pipe"
        bound.update((f"{prefix}_r", f"{prefix}_w"))
    if op.call == "socketpair":
        prefix = op.result or "sock"
        bound.update((f"{prefix}_a", f"{prefix}_b"))
    if op.call in ("fork", "vfork", "clone"):
        bound.add(op.result or "child")
    return bound


def _used_vars(op: OpSpec) -> Set[str]:
    return {
        arg[1:] for arg in op.args
        if isinstance(arg, str) and arg.startswith("$")
    }


def perturb_arg(
    spec: BenchmarkSpec, rng: random.Random
) -> Optional[BenchmarkSpec]:
    """Resample one safe literal argument of one op."""
    signatures = syscall_signatures()
    sites: List[Tuple[int, int, Tuple]] = []
    for i, op in enumerate(spec.program.ops):
        params = signatures[op.call].params if op.call in signatures else ()
        for j, arg in enumerate(op.args):
            if isinstance(arg, str):
                continue
            if isinstance(arg, bytes):
                sites.append((i, j, PAYLOADS))
                continue
            if j < len(params):
                pool = _PERTURBABLE_INT.get(params[j].kind)
                if pool is not None:
                    sites.append((i, j, pool))
    if not sites:
        return None
    i, j, pool = rng.choice(sites)
    old = spec.program.ops[i].args[j]
    alternatives = [value for value in pool if value != old]
    if not alternatives:
        return None
    args = list(spec.program.ops[i].args)
    args[j] = rng.choice(alternatives)
    ops = list(spec.program.ops)
    ops[i] = dataclasses.replace(ops[i], args=tuple(args))
    return _with_ops(spec, tuple(ops))


def insert_op(
    spec: BenchmarkSpec, rng: random.Random
) -> Optional[BenchmarkSpec]:
    """Splice a precondition-free op at program start (non-target)."""
    choices: List[OpSpec] = [
        OpSpec(call="getpid"),
        OpSpec(call="getcwd"),
        OpSpec(call="umask", args=(rng.choice(MASKS),)),
    ]
    staged = [
        action.path for action in spec.program.setup
        if action.kind == "file"
    ]
    if staged:
        path = rng.choice(staged)
        choices.extend((
            OpSpec(call="stat", args=(path,)),
            OpSpec(call="access", args=(path, 4)),
            OpSpec(call="open", args=(path, "O_RDONLY"),
                   result="probe_fd"),
        ))
    taken = set().union(*(
        _bound_vars(op) | _used_vars(op) for op in spec.program.ops
    ))
    candidates = [
        op for op in choices
        if not (_bound_vars(op) & taken)
    ]
    if not candidates:
        return None
    new_op = rng.choice(candidates)
    return _with_ops(spec, (new_op,) + spec.program.ops)


def delete_op(
    spec: BenchmarkSpec, rng: random.Random
) -> Optional[BenchmarkSpec]:
    """Drop one non-target op whose results are never consumed."""
    ops = spec.program.ops
    deletable = []
    for i, op in enumerate(ops):
        if op.target:
            continue
        bound = _bound_vars(op)
        if any(bound & _used_vars(later) for later in ops[i + 1:]):
            continue
        deletable.append(i)
    if not deletable or len(ops) <= 2:
        return None
    i = rng.choice(deletable)
    remaining = ops[:i] + ops[i + 1:]
    if not any(op.target for op in remaining):
        return None
    return _with_ops(spec, remaining)


def swap_ops(
    spec: BenchmarkSpec, rng: random.Random
) -> Optional[BenchmarkSpec]:
    """Exchange two adjacent non-target ops with no dataflow between."""
    ops = spec.program.ops
    sites = [
        i for i in range(len(ops) - 1)
        if not ops[i].target and not ops[i + 1].target
        and not (_bound_vars(ops[i]) & _used_vars(ops[i + 1]))
        and (ops[i].call, ops[i].args) != (ops[i + 1].call, ops[i + 1].args)
    ]
    if not sites:
        return None
    i = rng.choice(sites)
    swapped = list(ops)
    swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
    return _with_ops(spec, tuple(swapped))


def substitute_target(
    spec: BenchmarkSpec, rng: random.Random
) -> Optional[BenchmarkSpec]:
    """Replace one target op with a different syscall over the same
    principal argument (path -> path family, fd -> fd family, nullary ->
    nullary family)."""
    ops = spec.program.ops
    targets = [i for i, op in enumerate(ops) if op.target]
    if not targets:
        return None
    i = rng.choice(targets)
    op = ops[i]
    first = op.args[0] if op.args else None
    if isinstance(first, str) and first.startswith("$"):
        menu = [
            OpSpec(call="fstat", args=(first,), target=True),
            OpSpec(call="close", args=(first,), target=True),
            OpSpec(call="dup", args=(first,), result="sub_fd", target=True),
        ]
    elif isinstance(first, str) and not first.startswith("/"):
        menu = [
            OpSpec(call="stat", args=(first,), target=True),
            OpSpec(call="access", args=(first, 4), target=True),
            OpSpec(call="chmod", args=(first, rng.choice(MODES)),
                   target=True),
            OpSpec(call="truncate", args=(first, rng.choice(LENGTHS)),
                   target=True),
            OpSpec(call="unlink", args=(first,), target=True),
            OpSpec(call="open", args=(first, "O_RDONLY"),
                   result="sub_fd", target=True),
        ]
    elif first is None:
        menu = [
            OpSpec(call="fork", result="sub_child", target=True),
            OpSpec(call="pipe", result="sub_p", target=True),
            OpSpec(call="socketpair", result="sub_sk", target=True),
            OpSpec(call="getpid", target=True),
        ]
    else:
        return None
    taken = set().union(*(
        _bound_vars(other) | _used_vars(other) for other in ops
    ))
    menu = [
        candidate for candidate in menu
        if candidate.call != op.call
        and not (_bound_vars(candidate) & taken)
    ]
    if not menu:
        return None
    replaced = list(ops)
    replaced[i] = rng.choice(menu)
    return _with_ops(spec, tuple(replaced))


#: name -> operator, in the order the engine samples them
MUTATION_OPERATORS: Tuple[Tuple[str, MutationOperator], ...] = (
    ("perturb_arg", perturb_arg),
    ("insert_op", insert_op),
    ("delete_op", delete_op),
    ("swap_ops", swap_ops),
    ("substitute_target", substitute_target),
)


def mutate_spec(
    spec: BenchmarkSpec, rng: random.Random, name: str
) -> Optional[Tuple[str, BenchmarkSpec]]:
    """Apply one randomly chosen applicable operator to ``spec``.

    Returns ``(operator_name, mutant)`` with the mutant renamed to
    ``name`` and retagged for synthesis, or ``None`` when no operator
    produced an edit.  The caller owns oracle-checking the mutant.
    """
    order = list(MUTATION_OPERATORS)
    rng.shuffle(order)
    for operator_name, operator in order:
        mutant = operator(spec, rng)
        if mutant is None:
            continue
        mutant = dataclasses.replace(
            mutant,
            name=name,
            group=0,
            group_name="Synthesized",
            description=(
                f"mutated from {spec.name!r} via {operator_name}"
            ),
            expectations=(),
        )
        return operator_name, mutant
    return None
