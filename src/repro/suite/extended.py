"""Extended benchmarks beyond the paper's Table 2.

The paper's introduction motivates expressiveness benchmarking with the
local-socket blind spot: "if a provenance capture system does not record
edges linking reads and writes to local sockets, then attackers can evade
notice by using these communication channels".  These benchmarks measure
exactly that: local socket creation and traffic are invisible to SPADE's
default audit rules and to OPUS's interposition set, while CamFlow's LSM
vantage records them.

Also includes multi-syscall *sequence* benchmarks (the paper's §3.2 and
§5.2 note that ProvMark generalizes to deterministic sequences).
"""

from __future__ import annotations

from typing import Dict

from repro.suite.program import Op, Program, create_file
from repro.suite.registry import _bench, _expected


def _build_socket_benchmarks() -> Dict[str, Program]:
    benchmarks = [
        _bench("socketpair", 4, [
            Op("socketpair", (), result="s", target=True),
        ], expected=_expected("empty:NR", "empty:NR", "ok"),
            description="create a connected local socket pair"),
        _bench("send", 4, [
            Op("socketpair", (), result="s"),
            Op("send", ("$s_a", b"covert payload"), target=True),
        ], expected=_expected("empty:NR", "empty:NR", "ok"),
            description="send over a local socket (intro's covert channel)"),
        _bench("recv", 4, [
            Op("socketpair", (), result="s"),
            Op("send", ("$s_a", b"covert payload")),
            Op("recv", ("$s_b", 64), target=True),
        ], expected=_expected("empty:NR", "empty:NR", "ok"),
            description="receive over a local socket"),
    ]
    return {program.name: program for program in benchmarks}


def _build_sequence_benchmarks() -> Dict[str, Program]:
    """Deterministic multi-syscall target sequences (paper §5.2)."""
    benchmarks = [
        _bench("seq_copy", 1, [
            Op("open", ("source.txt", "O_RDONLY"), result="src"),
            # target: the whole copy operation
            Op("creat", ("copy.txt", 0o644), result="dst", target=True),
            Op("read", ("$src", 64), target=True),
            Op("write", ("$dst", b"benchmark data"), target=True),
            Op("close", ("$dst",), target=True),
        ], setup=(create_file("source.txt"),),
            expected=_expected("ok", "ok", "ok"),
            description="a file copy as one multi-syscall target"),
        _bench("seq_lockdown", 3, [
            Op("creat", ("secret.txt", 0o644), result="fd"),
            # target: restrict then disown the file
            Op("chmod", ("secret.txt", 0o600), target=True),
            Op("chown", ("secret.txt", 1000, 1000), target=True),
        ], expected=_expected("ok", "ok", "ok"),
            description="permission lockdown sequence"),
    ]
    return {program.name: program for program in benchmarks}


SOCKET_BENCHMARKS: Dict[str, Program] = _build_socket_benchmarks()
SEQUENCE_BENCHMARKS: Dict[str, Program] = _build_sequence_benchmarks()
EXTENDED_BENCHMARKS: Dict[str, Program] = {
    **SOCKET_BENCHMARKS,
    **SEQUENCE_BENCHMARKS,
}

# Make the extended suite reachable through the normal lookup path.
from repro.suite.registry import SUITE_REGISTRY as _registry  # noqa: E402

for _program in SOCKET_BENCHMARKS.values():
    _registry.register(
        _program, tags=("builtin", "extended", "sockets"), builtin=True
    )
for _program in SEQUENCE_BENCHMARKS.values():
    _registry.register(
        _program, tags=("builtin", "extended", "sequences"), builtin=True
    )
del _program
