"""Benchmark programs and their executor."""

from repro.suite.executor import (
    STAGING_DIR,
    ExecutionError,
    ExecutionResult,
    ProgramExecutor,
    run_trial,
)
from repro.suite.program import (
    Op,
    Program,
    SetupAction,
    create_dir,
    create_fifo,
    create_file,
    create_symlink,
)
from repro.suite.extended import (
    EXTENDED_BENCHMARKS,
    SEQUENCE_BENCHMARKS,
    SOCKET_BENCHMARKS,
)
from repro.suite.registry import (
    ALL_BENCHMARKS,
    FAILURE_BENCHMARKS,
    SCALABILITY_BENCHMARKS,
    SUITE_REGISTRY,
    RegisteredBenchmark,
    SuiteRegistry,
    SuiteRegistryError,
    TABLE1_GROUPS,
    TABLE2_BENCHMARKS,
    TABLE2_ORDER,
    benchmarks_in_group,
    get_benchmark,
)

__all__ = [
    "ALL_BENCHMARKS",
    "EXTENDED_BENCHMARKS",
    "SEQUENCE_BENCHMARKS",
    "SOCKET_BENCHMARKS",
    "ExecutionError",
    "ExecutionResult",
    "FAILURE_BENCHMARKS",
    "Op",
    "Program",
    "ProgramExecutor",
    "SCALABILITY_BENCHMARKS",
    "STAGING_DIR",
    "SUITE_REGISTRY",
    "RegisteredBenchmark",
    "SetupAction",
    "SuiteRegistry",
    "SuiteRegistryError",
    "TABLE1_GROUPS",
    "TABLE2_BENCHMARKS",
    "TABLE2_ORDER",
    "benchmarks_in_group",
    "create_dir",
    "create_fifo",
    "create_file",
    "create_symlink",
    "get_benchmark",
    "run_trial",
]
