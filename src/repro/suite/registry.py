"""The benchmark suite: an open registry seeded with the paper's rows.

The 44 rows of Table 2 (grouped as in Table 1), the failure benchmarks,
the scalability sweep, and the extended suite are *builtin* entries of
:class:`SuiteRegistry` — an open registry that user code (and the typed
v1 API: ``POST /v1/benchmarks``, ``provmark bench add``) extends with
benchmarks compiled from declarative :class:`~repro.api.specs.BenchmarkSpec`
documents.  Entries carry tags for selection (``registry.select`` powers
``BatchRequest.tags``); builtin rows are re-expressible as specs via
:meth:`SuiteRegistry.spec`, so every benchmark — shipped or user-defined
— travels through one vocabulary.

Every builtin benchmark declares the Table 2 expectation — ``ok`` or
``empty`` per tool with the paper's note (NR = behaviour not recorded by
the default configuration, SC = only state changes monitored, LP =
limitation in ProvMark, DV = disconnected vforked process) — which the
analysis stage checks the pipeline's output against.

The legacy module-level lookups (``ALL_BENCHMARKS``, ``get_benchmark``,
the per-family dicts) are preserved: ``ALL_BENCHMARKS`` is a live
mutable view of the default registry.
"""

from __future__ import annotations

import threading
from collections.abc import MutableMapping
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.suite.program import Op, Program, create_file

#: Table 1 — benchmarked syscall families.
TABLE1_GROUPS: Dict[int, Tuple[str, Tuple[str, ...]]] = {
    1: ("Files", (
        "close", "creat", "dup[2,3]", "[sym]link[at]", "mknod[at]",
        "open[at]", "[p]read", "rename[at]", "[f]truncate", "unlink[at]",
        "[p]write",
    )),
    2: ("Processes", ("clone", "execve", "exit", "[v]fork", "kill")),
    3: ("Permissions", (
        "[f]chmod[at]", "[f]chown[at]", "set[re[s]]gid", "set[re[s]]uid",
    )),
    4: ("Pipes", ("pipe[2]", "tee")),
}

_GROUP_NAMES = {num: name for num, (name, _) in TABLE1_GROUPS.items()}


def _expected(spade: str, opus: str, camflow: str) -> Tuple[Tuple[str, str, str], ...]:
    """Parse compact expectations like ``"ok"`` / ``"empty:NR"`` / ``"ok:DV"``."""
    out = []
    for tool, spec in (("spade", spade), ("opus", opus), ("camflow", camflow)):
        classification, _, note = spec.partition(":")
        out.append((tool, classification, note))
    return tuple(out)


def _bench(
    name: str,
    group: int,
    ops: Iterable[Op],
    setup: Iterable = (),
    expected: Tuple[Tuple[str, str, str], ...] = (),
    run_as_uid: int = 0,
    run_as_gid: int = 0,
    description: str = "",
) -> Program:
    return Program(
        name=name,
        ops=tuple(ops),
        setup=tuple(setup),
        group=group,
        group_name=_GROUP_NAMES[group],
        run_as_uid=run_as_uid,
        run_as_gid=run_as_gid,
        description=description,
        expected=expected,
    )


def _build_table2_benchmarks() -> Dict[str, Program]:
    test_file = (create_file("test.txt"),)
    benchmarks = [
        # -- Group 1: files ------------------------------------------------
        _bench("close", 1, [
            Op("open", ("test.txt", "O_RDWR"), result="id"),
            Op("close", ("$id",), target=True),
        ], setup=test_file, expected=_expected("ok", "ok", "empty:LP"),
            description="close an open file descriptor"),
        _bench("creat", 1, [
            Op("creat", ("newfile.txt", 0o644), result="id", target=True),
        ], expected=_expected("ok", "ok", "ok"),
            description="create a new file"),
        _bench("dup", 1, [
            Op("open", ("test.txt", "O_RDWR"), result="id"),
            Op("dup", ("$id",), result="id2", target=True),
        ], setup=test_file, expected=_expected("empty:SC", "ok", "empty:NR"),
            description="duplicate a file descriptor"),
        _bench("dup2", 1, [
            Op("open", ("test.txt", "O_RDWR"), result="id"),
            Op("dup2", ("$id", 10), result="id2", target=True),
        ], setup=test_file, expected=_expected("empty:SC", "ok", "empty:NR")),
        _bench("dup3", 1, [
            Op("open", ("test.txt", "O_RDWR"), result="id"),
            Op("dup3", ("$id", 10), result="id2", target=True),
        ], setup=test_file, expected=_expected("empty:SC", "ok", "empty:NR")),
        _bench("link", 1, [
            Op("link", ("test.txt", "hardlink.txt"), target=True),
        ], setup=test_file, expected=_expected("ok", "ok", "ok"),
            description="create a hard link"),
        _bench("linkat", 1, [
            Op("linkat", ("test.txt", "hardlink.txt"), target=True),
        ], setup=test_file, expected=_expected("ok", "ok", "ok")),
        _bench("symlink", 1, [
            Op("symlink", ("test.txt", "softlink.txt"), target=True),
        ], setup=test_file, expected=_expected("ok", "ok", "empty:NR"),
            description="create a symbolic link"),
        _bench("symlinkat", 1, [
            Op("symlinkat", ("test.txt", "softlink.txt"), target=True),
        ], setup=test_file, expected=_expected("ok", "ok", "empty:NR")),
        _bench("mknod", 1, [
            Op("mknod", ("fifo_node", "S_IFIFO"), target=True),
        ], expected=_expected("empty:NR", "ok", "empty:NR"),
            description="create a FIFO special file"),
        _bench("mknodat", 1, [
            Op("mknodat", ("fifo_node", "S_IFIFO"), target=True),
        ], expected=_expected("empty:NR", "empty:NR", "empty:NR")),
        _bench("open", 1, [
            Op("open", ("test.txt", "O_RDWR"), result="id", target=True),
        ], setup=test_file, expected=_expected("ok", "ok", "ok"),
            description="open an existing file"),
        _bench("openat", 1, [
            Op("openat", ("test.txt", "O_RDWR"), result="id", target=True),
        ], setup=test_file, expected=_expected("ok", "ok", "ok")),
        _bench("read", 1, [
            Op("open", ("test.txt", "O_RDWR"), result="id"),
            Op("read", ("$id", 64), target=True),
        ], setup=test_file, expected=_expected("ok", "empty:NR", "ok"),
            description="read from an open file"),
        _bench("pread", 1, [
            Op("open", ("test.txt", "O_RDWR"), result="id"),
            Op("pread", ("$id", 64, 0), target=True),
        ], setup=test_file, expected=_expected("ok", "empty:NR", "ok")),
        _bench("rename", 1, [
            Op("rename", ("test.txt", "renamed.txt"), target=True),
        ], setup=test_file, expected=_expected("ok", "ok", "ok"),
            description="rename a file (paper Figure 1)"),
        _bench("renameat", 1, [
            Op("renameat", ("test.txt", "renamed.txt"), target=True),
        ], setup=test_file, expected=_expected("ok", "ok", "ok")),
        _bench("truncate", 1, [
            Op("truncate", ("test.txt", 4), target=True),
        ], setup=test_file, expected=_expected("ok", "ok", "ok")),
        _bench("ftruncate", 1, [
            Op("open", ("test.txt", "O_RDWR"), result="id"),
            Op("ftruncate", ("$id", 4), target=True),
        ], setup=test_file, expected=_expected("ok", "ok", "ok")),
        _bench("unlink", 1, [
            Op("unlink", ("test.txt",), target=True),
        ], setup=test_file, expected=_expected("ok", "ok", "ok"),
            description="delete a file"),
        _bench("unlinkat", 1, [
            Op("unlinkat", ("test.txt",), target=True),
        ], setup=test_file, expected=_expected("ok", "ok", "ok")),
        _bench("write", 1, [
            Op("open", ("test.txt", "O_RDWR"), result="id"),
            Op("write", ("$id", b"hello"), target=True),
        ], setup=test_file, expected=_expected("ok", "empty:NR", "ok"),
            description="write to an open file"),
        _bench("pwrite", 1, [
            Op("open", ("test.txt", "O_RDWR"), result="id"),
            Op("pwrite", ("$id", b"hello", 0), target=True),
        ], setup=test_file, expected=_expected("ok", "empty:NR", "ok")),
        # -- Group 2: processes ---------------------------------------------
        _bench("clone", 2, [
            Op("clone", (), result="child", target=True),
        ], expected=_expected("ok", "empty:NR", "ok"),
            description="create a thread/process via clone"),
        _bench("execve", 2, [
            Op("execve", ("/bin/true",), target=True),
        ], expected=_expected("ok", "ok", "ok"),
            description="replace the process image"),
        _bench("exit", 2, [
            Op("exit", (0,), target=True),
        ], expected=_expected("empty:LP", "empty:LP", "empty:LP"),
            description="terminate normally (implicit exit exists anyway)"),
        _bench("fork", 2, [
            Op("fork", (), result="child", target=True),
        ], expected=_expected("ok", "ok", "ok"),
            description="fork a child process"),
        _bench("kill", 2, [
            Op("fork", (), result="child"),
            Op("kill", ("$child", "SIGKILL"), target=True),
        ], expected=_expected("empty:LP", "empty:LP", "empty:LP"),
            description="kill a child process"),
        _bench("vfork", 2, [
            Op("vfork", (), result="child", target=True),
        ], expected=_expected("ok:DV", "ok", "ok"),
            description="vfork: audit sees the child before the vfork"),
        # -- Group 3: permissions --------------------------------------------
        _bench("chmod", 3, [
            Op("chmod", ("test.txt", 0o600), target=True),
        ], setup=test_file, expected=_expected("ok", "ok", "ok")),
        _bench("fchmod", 3, [
            Op("open", ("test.txt", "O_RDWR"), result="id"),
            Op("fchmod", ("$id", 0o600), target=True),
        ], setup=test_file, expected=_expected("ok", "empty:NR", "ok")),
        _bench("fchmodat", 3, [
            Op("fchmodat", ("test.txt", 0o600), target=True),
        ], setup=test_file, expected=_expected("ok", "ok", "ok")),
        _bench("chown", 3, [
            Op("chown", ("test.txt", 1000, 1000), target=True),
        ], setup=test_file, expected=_expected("empty:NR", "ok", "ok")),
        _bench("fchown", 3, [
            Op("open", ("test.txt", "O_RDWR"), result="id"),
            Op("fchown", ("$id", 1000, 1000), target=True),
        ], setup=test_file, expected=_expected("empty:NR", "empty:NR", "ok")),
        _bench("fchownat", 3, [
            Op("fchownat", ("test.txt", 1000, 1000), target=True),
        ], setup=test_file, expected=_expected("empty:NR", "ok", "ok")),
        _bench("setgid", 3, [
            Op("setgid", (1000,), target=True),
        ], expected=_expected("ok", "ok", "ok")),
        _bench("setregid", 3, [
            Op("setregid", (1000, 1000), target=True),
        ], expected=_expected("ok", "ok", "ok")),
        _bench("setresgid", 3, [
            # Sets the group id to its *current* value: no state change, so
            # SPADE's change monitor sees nothing (paper §4.3).
            Op("setresgid", (0, 0, 0), target=True),
        ], expected=_expected("empty:SC", "empty:NR", "ok")),
        _bench("setuid", 3, [
            Op("setuid", (1000,), target=True),
        ], expected=_expected("ok", "ok", "ok")),
        _bench("setreuid", 3, [
            Op("setreuid", (1000, 1000), target=True),
        ], expected=_expected("ok", "ok", "ok")),
        _bench("setresuid", 3, [
            # An actual uid change: SPADE notices it on later records.
            Op("setresuid", (1000, 1000, 1000), target=True),
        ], expected=_expected("ok:SC", "empty:NR", "ok")),
        # -- Group 4: pipes -----------------------------------------------------
        _bench("pipe", 4, [
            Op("pipe", (), result="p", target=True),
        ], expected=_expected("empty:NR", "ok", "empty:NR")),
        _bench("pipe2", 4, [
            Op("pipe2", ("O_CLOEXEC",), result="p", target=True),
        ], expected=_expected("empty:NR", "ok", "empty:NR")),
        _bench("tee", 4, [
            Op("pipe", (), result="p"),
            Op("pipe", (), result="q"),
            Op("write", ("$p_w", b"pipe payload")),
            Op("tee", ("$p_r", "$q_w", 64), target=True),
        ], expected=_expected("empty:NR", "empty:NR", "ok"),
            description="duplicate pipe contents without consuming"),
    ]
    return {program.name: program for program in benchmarks}


def _build_failure_benchmarks() -> Dict[str, Program]:
    """§3.1 (Alice): failed calls caused by access-control denials."""
    benchmarks = [
        _bench("rename_fail", 1, [
            Op("rename", ("mine.txt", "/etc/passwd"), target=True,
               expect_success=False),
        ], setup=(create_file("mine.txt"),),
            run_as_uid=1000, run_as_gid=1000,
            expected=_expected("empty:NR", "ok", "empty:NR"),
            description="non-privileged rename over /etc/passwd (EACCES)"),
        _bench("open_fail", 1, [
            Op("open", ("/etc/shadow", "O_RDONLY"), result="id", target=True,
               expect_success=False),
        ], run_as_uid=1000, run_as_gid=1000,
            expected=_expected("empty:NR", "ok", "empty:NR"),
            description="open a root-only file as a normal user (EACCES)"),
        _bench("chmod_fail", 3, [
            Op("chmod", ("/etc/passwd", 0o666), target=True,
               expect_success=False),
        ], run_as_uid=1000, run_as_gid=1000,
            expected=_expected("empty:NR", "ok", "empty:NR"),
            description="chmod a file owned by root as a normal user (EPERM)"),
    ]
    return {program.name: program for program in benchmarks}


def _build_scalability_benchmarks() -> Dict[str, Program]:
    """§5.2: scaleN repeats a creat+unlink pair N times.

    The paper stops at scale8; scale16/scale32 extend the sweep toward
    realistic suspicious-behaviour target sizes (§5.4) and exercise the
    matching engine's candidate pruning under the solver step budget.
    scale128/scale512 are the next-tier rows: they prove the decomposed
    generalization solver stays ~linear, and are tagged ``slow`` so that
    default suite sweeps skip them (benchmark runs opt in explicitly).
    """
    benchmarks = {}
    for factor in (1, 2, 4, 8, 16, 32, 128, 512):
        ops: List[Op] = []
        for index in range(factor):
            ops.append(Op("creat", ("scale.txt", 0o644), result=f"fd{index}",
                          target=True))
            ops.append(Op("unlink", ("scale.txt",), target=True))
        benchmarks[f"scale{factor}"] = _bench(
            f"scale{factor}", 1, ops,
            expected=_expected("ok", "ok", "ok"),
            description=f"{factor}x (creat + unlink) target sequence",
        )
    return benchmarks


TABLE2_BENCHMARKS: Dict[str, Program] = _build_table2_benchmarks()
FAILURE_BENCHMARKS: Dict[str, Program] = _build_failure_benchmarks()
SCALABILITY_BENCHMARKS: Dict[str, Program] = _build_scalability_benchmarks()

#: Table 2 row order.
TABLE2_ORDER: Tuple[str, ...] = tuple(TABLE2_BENCHMARKS)


# -- the open registry --------------------------------------------------------


class SuiteRegistryError(ValueError):
    """An invalid registry mutation (builtin collision, overflow)."""


@dataclass(frozen=True)
class RegisteredBenchmark:
    """One registry entry: the program plus its registration metadata."""

    program: Program
    tags: Tuple[str, ...] = ()
    builtin: bool = False
    #: the BenchmarkSpec the entry was registered from (None for
    #: builtins and plain-Program registrations; synthesized on demand
    #: by :meth:`SuiteRegistry.spec`)
    spec: Optional[object] = None


class SuiteRegistry:
    """An open, thread-safe registry of benchmark programs.

    Builtin entries (the paper's suite) are immutable: they can be
    neither replaced nor unregistered.  Custom entries — registered by
    user code, ``POST /v1/benchmarks``, or specs persisted in an
    artifact store — may be freely replaced and removed, and their count
    is capped so an open HTTP surface cannot grow the registry without
    bound.
    """

    #: custom entries allowed beyond the builtins
    MAX_CUSTOM = 1024

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, RegisteredBenchmark] = {}

    # -- mutation -----------------------------------------------------------

    def register(
        self,
        program: Program,
        tags: Iterable[str] = (),
        builtin: bool = False,
        spec: Optional[object] = None,
    ) -> None:
        """Add (or, for custom names, replace) a benchmark entry."""
        if not isinstance(program, Program):
            raise SuiteRegistryError(
                f"register() takes a Program, got {type(program).__name__}"
            )
        entry = RegisteredBenchmark(
            program=program, tags=tuple(tags), builtin=builtin, spec=spec
        )
        with self._lock:
            existing = self._entries.get(program.name)
            if existing is not None and existing.builtin:
                raise SuiteRegistryError(
                    f"benchmark {program.name!r} is builtin and cannot be "
                    "replaced"
                )
            if existing is None and not builtin:
                custom = sum(
                    1 for e in self._entries.values() if not e.builtin
                )
                if custom >= self.MAX_CUSTOM:
                    raise SuiteRegistryError(
                        f"registry holds the maximum of {self.MAX_CUSTOM} "
                        "custom benchmarks; unregister one first"
                    )
            self._entries[program.name] = entry

    def unregister(self, name: str) -> Program:
        """Remove a custom entry; builtins refuse, unknown names raise."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise KeyError(self._unknown_message(name))
            if entry.builtin:
                raise SuiteRegistryError(
                    f"benchmark {name!r} is builtin and cannot be "
                    "unregistered"
                )
            del self._entries[name]
            return entry.program

    # -- lookup -------------------------------------------------------------
    #
    # Single-key reads rely on the GIL-atomicity of dict lookups;
    # every *iterating* read works over an atomically-copied snapshot,
    # so concurrent HTTP handler threads can list/select while another
    # registers (never "dict changed size during iteration").

    def get(self, name: str) -> Program:
        try:
            return self._entries[name].program
        except KeyError:
            raise KeyError(self._unknown_message(name)) from None

    def entry(self, name: str) -> RegisteredBenchmark:
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(self._unknown_message(name)) from None

    def snapshot(self) -> Dict[str, RegisteredBenchmark]:
        """A consistent point-in-time copy of every entry.

        ``dict(d)`` (like ``list(d)`` in :meth:`names`) copies at the C
        level without releasing the GIL, so it needs no lock and is
        safe to call from methods already holding it.
        """
        return dict(self._entries)

    def builtin_copy(self) -> "SuiteRegistry":
        """A new registry carrying (only) this one's builtin entries.

        The isolation helper for services/tests/benches that must not
        see — or leak — custom registrations through the shared default
        registry; entry metadata (tags, spec) is preserved.
        """
        registry = SuiteRegistry()
        for entry in self.snapshot().values():
            if entry.builtin:
                registry.register(entry.program, tags=entry.tags,
                                  builtin=True, spec=entry.spec)
        return registry

    def spec(self, name: str) -> object:
        """The entry's :class:`~repro.api.specs.BenchmarkSpec`.

        Custom entries return the spec they were registered from;
        builtin rows (and plain-Program registrations) are re-expressed
        through :func:`~repro.api.specs.spec_from_program`, carrying the
        entry's registry tags.
        """
        entry = self.entry(name)
        if entry.spec is not None:
            return entry.spec
        # Late import: repro.api depends on this module at import time.
        from repro.api.specs import spec_from_program

        return spec_from_program(entry.program, tags=entry.tags)

    def is_builtin(self, name: str) -> bool:
        return self.entry(name).builtin

    def tags(self, name: str) -> Tuple[str, ...]:
        return self.entry(name).tags

    def names(self) -> List[str]:
        return list(self._entries)

    def select(self, tags: Iterable[str]) -> List[str]:
        """Names of entries carrying *all* the given tags, registry order."""
        wanted = set(tags)
        return [
            name for name, entry in self.snapshot().items()
            if wanted <= set(entry.tags)
        ]

    def items(self) -> List[Tuple[str, Program]]:
        return [(n, e.program) for n, e in self.snapshot().items()]

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def _unknown_message(self, name: str) -> str:
        return (
            f"unknown benchmark {name!r}; available: "
            f"{sorted(self.names())}"
        )


def _seed_builtins(registry: SuiteRegistry) -> None:
    for program in TABLE2_BENCHMARKS.values():
        registry.register(
            program,
            tags=("builtin", "table2", program.group_name.lower()),
            builtin=True,
        )
    for program in FAILURE_BENCHMARKS.values():
        registry.register(
            program,
            tags=("builtin", "failure", program.group_name.lower()),
            builtin=True,
        )
    for program in SCALABILITY_BENCHMARKS.values():
        tags = ("builtin", "scalability")
        if program.name in ("scale128", "scale512"):
            tags += ("slow",)
        registry.register(program, tags=tags, builtin=True)


#: the default registry every surface (service, CLI, legacy lookups) shares
SUITE_REGISTRY = SuiteRegistry()
_seed_builtins(SUITE_REGISTRY)


class _BenchmarkView(MutableMapping):
    """Legacy ``ALL_BENCHMARKS`` mapping, live over the default registry.

    Reads see every registered benchmark (builtin and custom); writes
    register/unregister custom entries, so pre-registry code that did
    ``ALL_BENCHMARKS[name] = program`` keeps working.
    """

    def __getitem__(self, name: str) -> Program:
        try:
            return SUITE_REGISTRY.get(name)
        except KeyError:
            raise KeyError(name) from None

    def __setitem__(self, name: str, program: Program) -> None:
        if name != program.name:
            raise SuiteRegistryError(
                f"key {name!r} does not match program name {program.name!r}"
            )
        SUITE_REGISTRY.register(program, tags=("custom",))

    def __delitem__(self, name: str) -> None:
        SUITE_REGISTRY.unregister(name)

    def __iter__(self) -> Iterator[str]:
        return iter(SUITE_REGISTRY)

    def __len__(self) -> int:
        return len(SUITE_REGISTRY)


#: legacy live view; prefer SUITE_REGISTRY (or BenchmarkService)
ALL_BENCHMARKS: MutableMapping = _BenchmarkView()


def get_benchmark(name: str) -> Program:
    return SUITE_REGISTRY.get(name)


def benchmarks_in_group(group: int) -> List[Program]:
    return [p for p in TABLE2_BENCHMARKS.values() if p.group == group]
