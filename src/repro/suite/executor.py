"""Executes benchmark programs on a fresh simulated machine.

One execution = one recording trial: boot a seeded kernel, prepare the
staging directory (the per-syscall setup script, paper §3), open the
recording window, run the process-startup boilerplate plus the program
ops, close the window, and hand the trace to the capture system.

The startup boilerplate — shell fork, execve of the benchmark binary,
loader/libc activity — is deliberately included in the window: it is the
"considerable boilerplate provenance" the background program exists to
cancel out (paper §3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.kernel import BENCH_GID, BENCH_UID, Credentials, Kernel, Process
from repro.kernel.fs import InodeType
from repro.kernel.trace import Trace
from repro.suite.program import Arg, Op, Program

STAGING_DIR = "/home/bench/staging"


class ExecutionError(Exception):
    """Raised when a benchmark op behaves contrary to its declaration."""


@dataclass
class ExecutionResult:
    """Trace window plus metadata for one trial."""

    trace: Trace
    variables: Dict[str, int]
    foreground: bool
    exit_code: int


class ProgramExecutor:
    """Runs one program variant (fg or bg) on a fresh kernel."""

    def __init__(self, program: Program, seed: Optional[int] = None) -> None:
        self.program = program
        self.seed = seed

    def run(self, foreground: bool) -> ExecutionResult:
        kernel = Kernel(seed=self.seed)
        self._prepare_staging(kernel)
        ops = (
            self.program.foreground_ops()
            if foreground
            else self.program.background_ops()
        )
        start_seq = kernel.seq + 1
        process = self._start_benchmark_process(kernel, foreground)
        variables = self._run_ops(kernel, process, ops)
        if process.alive:
            kernel.sys_exit(process, 0)
        # Reap any children the program spawned (implicit exit at end of
        # their trivial main, still inside the recording window).
        for child in list(kernel.processes.values()):
            if child.ppid == process.pid and child.alive:
                kernel.sys_exit(child, 0)
        end_seq = kernel.seq
        trace = kernel.trace.window(start_seq, end_seq)
        return ExecutionResult(
            trace=trace,
            variables=variables,
            foreground=foreground,
            exit_code=process.exit_code or 0,
        )

    # -- stages ------------------------------------------------------------

    def _prepare_staging(self, kernel: Kernel) -> None:
        fs = kernel.fs
        if not fs.exists(STAGING_DIR):
            staging = fs.mkdir(STAGING_DIR, mode=0o755)
            staging.uid, staging.gid = BENCH_UID, BENCH_GID
        for action in self.program.setup:
            path = self._staged_path(action.path)
            if action.kind == "file":
                inode = fs.write_file(path, action.content, mode=action.mode)
            elif action.kind == "dir":
                inode = fs.mkdir(path, mode=action.mode)
            elif action.kind == "fifo":
                parent, name = fs.lookup_parent(path)
                inode = fs.create_entry(parent, name, InodeType.FIFO, 0o644, 0, 0)
            elif action.kind == "symlink":
                parent, name = fs.lookup_parent(path)
                inode = fs.create_entry(parent, name, InodeType.SYMLINK, 0o777, 0, 0)
                inode.symlink_target = self._staged_path(action.link_target)
            else:
                raise ExecutionError(f"unknown setup action {action.kind!r}")
            inode.uid = self.program.run_as_uid
            inode.gid = self.program.run_as_gid

    def _start_benchmark_process(self, kernel: Kernel, foreground: bool) -> Process:
        """Shell forks, child execs the benchmark binary, loader maps libc."""
        binary = f"{STAGING_DIR}/bench_{'fg' if foreground else 'bg'}"
        kernel.fs.write_file(binary, b"\x7fELF bench", mode=0o755)
        shell = kernel.shell
        shell.creds = Credentials.for_user(
            self.program.run_as_uid, self.program.run_as_gid
        )
        shell.cwd = STAGING_DIR
        child_pid = kernel.sys_fork(shell)
        process = kernel.process(child_pid)
        kernel.sys_execve(process, binary, [binary])
        # Dynamic loader boilerplate: map libc.
        libc_fd = kernel.sys_open(process, "/lib/libc.so.6", "O_RDONLY")
        kernel.sys_mmap(process, libc_fd, "PROT_READ|PROT_EXEC")
        kernel.sys_close(process, libc_fd)
        return process

    def _run_ops(
        self, kernel: Kernel, process: Process, ops: Sequence[Op]
    ) -> Dict[str, int]:
        variables: Dict[str, int] = {"self": process.pid}
        current = process
        for op in ops:
            if not current.alive:
                break
            args = [self._resolve_arg(a, variables) for a in op.args]
            method = getattr(kernel, f"sys_{op.call}", None)
            if method is None:
                raise ExecutionError(f"unknown syscall {op.call!r}")
            retval = method(current, *args)
            succeeded = retval >= 0
            if succeeded != op.expect_success:
                raise ExecutionError(
                    f"{self.program.name}: {op.call} expected "
                    f"{'success' if op.expect_success else 'failure'}, "
                    f"got retval {retval}"
                )
            if op.result:
                variables[op.result] = retval
            if op.call in ("pipe", "pipe2"):
                self._bind_pipe_fds(kernel, op, variables)
            if op.call == "socketpair":
                self._bind_socket_fds(kernel, op, variables)
            if op.call in ("fork", "vfork", "clone") and retval > 0:
                variables[(op.result or "child")] = retval
                child = kernel.process(retval)
                if op.call == "vfork":
                    # vfork: the child runs (and exits) before the parent
                    # resumes; its exit flushes the deferred audit record.
                    kernel.sys_exit(child, 0)
        return variables

    def _bind_pipe_fds(
        self, kernel: Kernel, op: Op, variables: Dict[str, int]
    ) -> None:
        prefix = op.result or "pipe"
        for obj in kernel.last_objects:
            if obj.kind == "pipe" and obj.fd is not None:
                if obj.role == "read_end":
                    variables[f"{prefix}_r"] = obj.fd
                elif obj.role == "write_end":
                    variables[f"{prefix}_w"] = obj.fd

    def _bind_socket_fds(
        self, kernel: Kernel, op: Op, variables: Dict[str, int]
    ) -> None:
        prefix = op.result or "sock"
        for obj in kernel.last_objects:
            if obj.kind == "socket" and obj.fd is not None:
                if obj.role == "end_a":
                    variables[f"{prefix}_a"] = obj.fd
                elif obj.role == "end_b":
                    variables[f"{prefix}_b"] = obj.fd

    def _resolve_arg(self, arg: Arg, variables: Dict[str, int]) -> Arg:
        if isinstance(arg, str) and arg.startswith("$"):
            name = arg[1:]
            if name not in variables:
                raise ExecutionError(f"unbound variable ${name}")
            return variables[name]
        if isinstance(arg, str) and arg.startswith("./"):
            return self._staged_path(arg[2:])
        return arg

    @staticmethod
    def _staged_path(path: str) -> str:
        if path.startswith("/"):
            return path
        return f"{STAGING_DIR}/{path}"


def run_trial(
    program: Program, foreground: bool, seed: Optional[int] = None
) -> ExecutionResult:
    """Convenience wrapper: one trial of one program variant."""
    return ProgramExecutor(program, seed=seed).run(foreground)
