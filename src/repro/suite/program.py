"""Benchmark program DSL.

Each paper benchmark is a tiny C program whose target syscall is wrapped in
``#ifdef TARGET`` (paper §3); ProvMark compiles it twice to get a
*foreground* (everything) and a *background* (everything but the target)
binary.  We mirror that exactly: a :class:`Program` is a list of
:class:`Op` values, each flagged ``target`` or not, plus the staging setup
the per-syscall script would have prepared.

Arguments starting with ``$`` reference variables bound by earlier ops'
results, e.g.::

    Op("open", ("test.txt", "O_RDWR"), result="id")
    Op("close", ("$id",), target=True)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

Arg = Union[str, int, bytes]


@dataclass(frozen=True)
class Op:
    """One operation the benchmark program performs."""

    call: str
    args: Tuple[Arg, ...] = ()
    result: Optional[str] = None
    target: bool = False
    #: expected success; used by the suite's self-tests ("tests for each
    #: one to ensure the target behavior was performed", paper §4)
    expect_success: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))


@dataclass(frozen=True)
class SetupAction:
    """Staging-directory preparation performed before recording starts."""

    kind: str  # "file" | "dir" | "fifo" | "symlink"
    path: str
    mode: int = 0o644
    content: bytes = b"benchmark data\n"
    link_target: str = ""


def create_file(path: str, mode: int = 0o644, content: bytes = b"benchmark data\n") -> SetupAction:
    return SetupAction("file", path, mode=mode, content=content)


def create_dir(path: str, mode: int = 0o755) -> SetupAction:
    return SetupAction("dir", path, mode=mode)


def create_fifo(path: str) -> SetupAction:
    return SetupAction("fifo", path)


def create_symlink(path: str, target: str) -> SetupAction:
    return SetupAction("symlink", path, link_target=target)


@dataclass(frozen=True)
class Program:
    """A complete benchmark: staging setup plus the op sequence."""

    name: str
    ops: Tuple[Op, ...]
    setup: Tuple[SetupAction, ...] = ()
    group: int = 1
    group_name: str = "Files"
    run_as_uid: int = 0
    run_as_gid: int = 0
    description: str = ""
    #: expected Table 2 classification per tool: "ok" or "empty", with an
    #: optional note (NR/SC/LP/DV); used by the analysis stage.
    expected: Tuple[Tuple[str, str, str], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "ops", tuple(self.ops))
        object.__setattr__(self, "setup", tuple(self.setup))
        object.__setattr__(self, "expected", tuple(self.expected))

    def foreground_ops(self) -> Tuple[Op, ...]:
        """All ops — the program compiled with ``-DTARGET``."""
        return self.ops

    def background_ops(self) -> Tuple[Op, ...]:
        """Ops outside ``#ifdef TARGET`` — the background program."""
        return tuple(op for op in self.ops if not op.target)

    def target_ops(self) -> Tuple[Op, ...]:
        return tuple(op for op in self.ops if op.target)

    def expectation(self, tool: str) -> Optional[Tuple[str, str]]:
        """(classification, note) expected for a tool, if declared."""
        for name, classification, note in self.expected:
            if name == tool:
                return classification, note
        return None

    def to_c_source(self) -> str:
        """Render the benchmark as the C program the paper would use.

        This is documentation/reporting output (the HTML report shows it);
        the simulator executes the op list directly.
        """
        lines = [
            f"// {self.name}.c",
            "#include <fcntl.h>",
            "#include <unistd.h>",
            "void main() {",
        ]
        in_target = False
        for op in self.ops:
            if op.target and not in_target:
                lines.append("#ifdef TARGET")
                in_target = True
            if not op.target and in_target:
                lines.append("#endif")
                in_target = False
            rendered_args = ", ".join(_c_arg(a) for a in op.args)
            call = f"{op.call}({rendered_args});"
            if op.result:
                call = f"int {op.result} = " + call.replace("int ", "")
            lines.append("  " + call)
        if in_target:
            lines.append("#endif")
        lines.append("}")
        return "\n".join(lines) + "\n"


def _c_arg(arg: Arg) -> str:
    if isinstance(arg, bytes):
        return '"' + arg.decode("utf-8", "replace").replace("\n", "\\n") + '"'
    if isinstance(arg, str):
        if arg.startswith("$"):
            return arg[1:]
        if arg.startswith(("O_", "S_", "SIG", "AT_", "CLONE", "PROT")):
            return arg
        return f'"{arg}"'
    return str(arg)
