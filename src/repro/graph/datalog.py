"""Datalog graph format (paper Listing 1).

Nodes, edges, and properties of a property graph become logical facts::

    n<gid>(<nodeID>, "<label>").
    e<gid>(<edgeID>, <srcID>, <tgtID>, "<label>").
    p<gid>(<nodeID/edgeID>, "<key>", "<value>").

This module renders a :class:`~repro.graph.model.PropertyGraph` to that
textual form and parses it back.  The Datalog text is also what the mini-ASP
engine consumes, what the regression tester stores on disk, and what the
comparison stage feeds to the solver.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Tuple

from repro.graph.model import PropertyGraph


class DatalogError(Exception):
    """Raised when Datalog text cannot be parsed."""


_ATOM_RE = re.compile(r"^([a-z]\w*)\((.*)\)\.$")


def quote(value: str) -> str:
    """Quote a string constant for Datalog output."""
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _unquote(token: str) -> str:
    token = token.strip()
    if len(token) >= 2 and token.startswith('"') and token.endswith('"'):
        body = token[1:-1]
        return body.replace('\\"', '"').replace("\\\\", "\\")
    return token


def _split_args(body: str) -> List[str]:
    """Split a fact's argument list on commas not inside quotes."""
    args: List[str] = []
    current: List[str] = []
    in_quote = False
    escaped = False
    for ch in body:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\":
            current.append(ch)
            escaped = True
        elif ch == '"':
            current.append(ch)
            in_quote = not in_quote
        elif ch == "," and not in_quote:
            args.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if in_quote:
        raise DatalogError(f"unterminated string in fact body: {body!r}")
    args.append("".join(current).strip())
    return args


def graph_to_datalog(graph: PropertyGraph, gid: str = "") -> str:
    """Render ``graph`` as Datalog facts with relation suffix ``gid``.

    The suffix defaults to the graph's own ``gid``.
    """
    suffix = gid or graph.gid
    lines: List[str] = []
    for node in sorted(graph.nodes(), key=lambda n: n.id):
        lines.append(f"n{suffix}({node.id},{quote(node.label)}).")
        for key in sorted(node.props):
            lines.append(
                f"p{suffix}({node.id},{quote(key)},{quote(node.props[key])})."
            )
    for edge in sorted(graph.edges(), key=lambda e: e.id):
        lines.append(
            f"e{suffix}({edge.id},{edge.src},{edge.tgt},{quote(edge.label)})."
        )
        for key in sorted(edge.props):
            lines.append(
                f"p{suffix}({edge.id},{quote(key)},{quote(edge.props[key])})."
            )
    return "\n".join(lines) + ("\n" if lines else "")


def iter_facts(text: str) -> Iterator[Tuple[str, List[str]]]:
    """Yield ``(relation, args)`` for each fact line in ``text``.

    Blank lines and ``%`` comments are skipped.
    """
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("%"):
            continue
        match = _ATOM_RE.match(line)
        if not match:
            raise DatalogError(f"line {lineno}: not a fact: {raw!r}")
        relation, body = match.groups()
        yield relation, [_unquote(a) for a in _split_args(body)]


def datalog_to_graph(text: str, gid: str = "") -> PropertyGraph:
    """Parse Datalog facts back into a :class:`PropertyGraph`.

    ``gid`` selects which relation family (``n<gid>``/``e<gid>``/``p<gid>``)
    to read; with the default empty string the suffix is inferred from the
    first node or edge fact.
    """
    suffix = gid
    nodes: List[Tuple[str, str]] = []
    edges: List[Tuple[str, str, str, str]] = []
    props: List[Tuple[str, str, str]] = []
    for relation, args in iter_facts(text):
        if not suffix:
            if relation.startswith("n") or relation.startswith("e"):
                suffix = relation[1:]
        if suffix and relation == f"n{suffix}":
            if len(args) != 2:
                raise DatalogError(f"node fact arity != 2: {args}")
            nodes.append((args[0], args[1]))
        elif suffix and relation == f"e{suffix}":
            if len(args) != 4:
                raise DatalogError(f"edge fact arity != 4: {args}")
            edges.append((args[0], args[1], args[2], args[3]))
        elif suffix and relation == f"p{suffix}":
            if len(args) != 3:
                raise DatalogError(f"property fact arity != 3: {args}")
            props.append((args[0], args[1], args[2]))
    graph = PropertyGraph(suffix or "g")
    for node_id, label in nodes:
        graph.add_node(node_id, label)
    for edge_id, src, tgt, label in edges:
        graph.add_edge(edge_id, src, tgt, label)
    for element_id, key, value in props:
        graph.set_prop(element_id, key, value)
    return graph
