"""Property-graph data model.

This is the common representation every other subsystem works on.  It
follows Section 3.3 of the paper: a property graph
``G = (V, E, src, tgt, lab, prop)`` where nodes and edges carry a label
from a label alphabet and a partial map of string properties.

Node and edge identifiers live in disjoint namespaces (the paper requires
``V`` and ``E`` disjoint); :class:`PropertyGraph` enforces this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple


class GraphError(Exception):
    """Raised on malformed graph operations (duplicate ids, dangling edges)."""


@dataclass(frozen=True)
class Node:
    """A labelled vertex with string properties."""

    id: str
    label: str
    props: Mapping[str, str] = field(default_factory=dict)

    def prop(self, key: str, default: Optional[str] = None) -> Optional[str]:
        return self.props.get(key, default)


@dataclass(frozen=True)
class Edge:
    """A labelled, directed edge with string properties."""

    id: str
    src: str
    tgt: str
    label: str
    props: Mapping[str, str] = field(default_factory=dict)

    def prop(self, key: str, default: Optional[str] = None) -> Optional[str]:
        return self.props.get(key, default)


class PropertyGraph:
    """A mutable directed multigraph with labelled, attributed nodes and edges.

    >>> g = PropertyGraph()
    >>> g.add_node("n1", "File", {"name": "test.txt"})
    >>> g.add_node("n2", "Process")
    >>> g.add_edge("e1", "n1", "n2", "Used")
    >>> g.node_count, g.edge_count
    (2, 1)
    """

    def __init__(self, gid: str = "g") -> None:
        self.gid = gid
        self._nodes: Dict[str, Node] = {}
        self._edges: Dict[str, Edge] = {}
        self._out: Dict[str, List[str]] = {}
        self._in: Dict[str, List[str]] = {}
        #: bumped on every mutation; lets derived-structure caches (the
        #: matching engine's indexes) validate themselves cheaply
        self._version = 0

    @property
    def version(self) -> int:
        return self._version

    def __getstate__(self) -> Dict[str, object]:
        # Derived-structure caches must not cross process boundaries:
        # WL colors are hash()-based and only comparable under one hash
        # seed, and shipping the indexes would bloat every pickle.
        state = dict(self.__dict__)
        state.pop("_matcher_cache", None)
        return state

    # -- construction -----------------------------------------------------

    def add_node(
        self, node_id: str, label: str, props: Optional[Mapping[str, str]] = None
    ) -> Node:
        if node_id in self._nodes or node_id in self._edges:
            raise GraphError(f"duplicate identifier {node_id!r}")
        node = Node(node_id, label, dict(props or {}))
        self._nodes[node_id] = node
        self._out[node_id] = []
        self._in[node_id] = []
        self._version += 1
        return node

    def add_edge(
        self,
        edge_id: str,
        src: str,
        tgt: str,
        label: str,
        props: Optional[Mapping[str, str]] = None,
    ) -> Edge:
        if edge_id in self._edges or edge_id in self._nodes:
            raise GraphError(f"duplicate identifier {edge_id!r}")
        if src not in self._nodes:
            raise GraphError(f"edge {edge_id!r} has unknown source {src!r}")
        if tgt not in self._nodes:
            raise GraphError(f"edge {edge_id!r} has unknown target {tgt!r}")
        edge = Edge(edge_id, src, tgt, label, dict(props or {}))
        self._edges[edge_id] = edge
        self._out[src].append(edge_id)
        self._in[tgt].append(edge_id)
        self._version += 1
        return edge

    def set_prop(self, element_id: str, key: str, value: str) -> None:
        """Set one property on a node or edge (replacing the element)."""
        if element_id in self._nodes:
            node = self._nodes[element_id]
            props = dict(node.props)
            props[key] = value
            self._nodes[element_id] = Node(node.id, node.label, props)
        elif element_id in self._edges:
            edge = self._edges[element_id]
            props = dict(edge.props)
            props[key] = value
            self._edges[element_id] = Edge(
                edge.id, edge.src, edge.tgt, edge.label, props
            )
        else:
            raise GraphError(f"unknown element {element_id!r}")
        self._version += 1

    def remove_node(self, node_id: str) -> None:
        """Remove a node and every edge incident to it."""
        if node_id not in self._nodes:
            raise GraphError(f"unknown node {node_id!r}")
        for edge_id in list(self._out[node_id]) + list(self._in[node_id]):
            if edge_id in self._edges:
                self.remove_edge(edge_id)
        del self._nodes[node_id]
        del self._out[node_id]
        del self._in[node_id]
        self._version += 1

    def remove_edge(self, edge_id: str) -> None:
        if edge_id not in self._edges:
            raise GraphError(f"unknown edge {edge_id!r}")
        edge = self._edges.pop(edge_id)
        self._out[edge.src].remove(edge_id)
        self._in[edge.tgt].remove(edge_id)
        self._version += 1

    # -- access -----------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    @property
    def size(self) -> int:
        """Total number of elements (the paper's size measure for trials)."""
        return len(self._nodes) + len(self._edges)

    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id!r}") from None

    def edge(self, edge_id: str) -> Edge:
        try:
            return self._edges[edge_id]
        except KeyError:
            raise GraphError(f"unknown edge {edge_id!r}") from None

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def has_edge(self, edge_id: str) -> bool:
        return edge_id in self._edges

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges.values())

    def node_ids(self) -> Iterator[str]:
        return iter(self._nodes)

    def edge_ids(self) -> Iterator[str]:
        return iter(self._edges)

    def out_edges(self, node_id: str) -> List[Edge]:
        return [self._edges[e] for e in self._out.get(node_id, [])]

    def in_edges(self, node_id: str) -> List[Edge]:
        return [self._edges[e] for e in self._in.get(node_id, [])]

    def degree(self, node_id: str) -> int:
        return len(self._out.get(node_id, [])) + len(self._in.get(node_id, []))

    def element_props(self, element_id: str) -> Mapping[str, str]:
        if element_id in self._nodes:
            return self._nodes[element_id].props
        if element_id in self._edges:
            return self._edges[element_id].props
        raise GraphError(f"unknown element {element_id!r}")

    # -- derived graphs ---------------------------------------------------

    def copy(self, gid: Optional[str] = None) -> "PropertyGraph":
        out = PropertyGraph(gid or self.gid)
        for node in self.nodes():
            out.add_node(node.id, node.label, node.props)
        for edge in self.edges():
            out.add_edge(edge.id, edge.src, edge.tgt, edge.label, edge.props)
        return out

    def subgraph(self, node_ids: Iterable[str], edge_ids: Iterable[str]) -> "PropertyGraph":
        """Induced sub-multigraph over explicit node and edge id sets."""
        keep_nodes: Set[str] = set(node_ids)
        keep_edges: Set[str] = set(edge_ids)
        out = PropertyGraph(self.gid)
        for node_id in keep_nodes:
            node = self.node(node_id)
            out.add_node(node.id, node.label, node.props)
        for edge_id in keep_edges:
            edge = self.edge(edge_id)
            if edge.src not in keep_nodes or edge.tgt not in keep_nodes:
                raise GraphError(f"edge {edge_id!r} endpoints outside subgraph")
            out.add_edge(edge.id, edge.src, edge.tgt, edge.label, edge.props)
        return out

    def relabel(self, prefix: str) -> "PropertyGraph":
        """Return an isomorphic copy with fresh, prefixed element ids."""
        mapping: Dict[str, str] = {}
        out = PropertyGraph(self.gid)
        for i, node in enumerate(self.nodes()):
            mapping[node.id] = f"{prefix}n{i}"
            out.add_node(mapping[node.id], node.label, node.props)
        for i, edge in enumerate(self.edges()):
            mapping[edge.id] = f"{prefix}e{i}"
            out.add_edge(
                mapping[edge.id], mapping[edge.src], mapping[edge.tgt],
                edge.label, edge.props,
            )
        return out

    # -- structural summaries ----------------------------------------------

    def label_histogram(self) -> Dict[str, int]:
        hist: Dict[str, int] = {}
        for node in self.nodes():
            hist[node.label] = hist.get(node.label, 0) + 1
        for edge in self.edges():
            hist[edge.label] = hist.get(edge.label, 0) + 1
        return hist

    def structural_signature(self) -> Tuple:
        """A cheap isomorphism-invariant used to pre-partition trial graphs.

        Two isomorphic graphs always share a signature; unequal signatures
        prove non-similarity without running the solver.
        """
        node_part = sorted(
            (n.label, len(self._out[n.id]), len(self._in[n.id]))
            for n in self.nodes()
        )
        edge_part = sorted(
            (e.label, self.node(e.src).label, self.node(e.tgt).label)
            for e in self.edges()
        )
        return (tuple(node_part), tuple(edge_part))

    def is_empty(self) -> bool:
        return not self._nodes and not self._edges

    def __eq__(self, other: object) -> bool:
        """Exact equality (same ids, labels, props) — *not* isomorphism."""
        if not isinstance(other, PropertyGraph):
            return NotImplemented
        return self._nodes == other._nodes and self._edges == other._edges

    def __repr__(self) -> str:
        return (
            f"PropertyGraph(gid={self.gid!r}, nodes={self.node_count}, "
            f"edges={self.edge_count})"
        )
