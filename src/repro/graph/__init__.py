"""Property-graph model, Datalog format, and serializers."""

from repro.graph.datalog import (
    DatalogError,
    datalog_to_graph,
    graph_to_datalog,
)
from repro.graph.dot import DotError, dot_to_graph, graph_to_dot
from repro.graph.model import Edge, GraphError, Node, PropertyGraph
from repro.graph.provjson import (
    ProvJsonError,
    graph_to_provjson,
    provjson_to_graph,
)
from repro.graph.stats import GraphSummary, connected_components, summarize
from repro.graph.visualize import render_ascii, render_benchmark

__all__ = [
    "DatalogError",
    "DotError",
    "Edge",
    "GraphError",
    "GraphSummary",
    "Node",
    "PropertyGraph",
    "ProvJsonError",
    "connected_components",
    "datalog_to_graph",
    "dot_to_graph",
    "graph_to_datalog",
    "graph_to_dot",
    "graph_to_provjson",
    "provjson_to_graph",
    "render_ascii",
    "render_benchmark",
    "summarize",
]
