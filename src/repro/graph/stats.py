"""Structural summaries of provenance graphs.

Used by the Table 3 reproduction (example benchmark graph shapes) and by
the analysis package to describe results without rendering images.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.graph.model import PropertyGraph


@dataclass(frozen=True)
class GraphSummary:
    """Shape summary of one graph: counts and label/edge-type histograms."""

    nodes: int
    edges: int
    node_labels: Tuple[Tuple[str, int], ...]
    edge_labels: Tuple[Tuple[str, int], ...]
    components: int

    def describe(self) -> str:
        if self.nodes == 0 and self.edges == 0:
            return "Empty"
        node_part = ", ".join(f"{count}x {label}" for label, count in self.node_labels)
        edge_part = ", ".join(f"{count}x {label}" for label, count in self.edge_labels)
        pieces = [f"{self.nodes} nodes ({node_part})", f"{self.edges} edges"]
        if edge_part:
            pieces.append(f"({edge_part})")
        if self.components > 1:
            pieces.append(f"[{self.components} components]")
        return " ".join(pieces)


def connected_components(graph: PropertyGraph) -> int:
    """Number of weakly connected components."""
    parent: Dict[str, str] = {node_id: node_id for node_id in graph.node_ids()}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for edge in graph.edges():
        root_a, root_b = find(edge.src), find(edge.tgt)
        if root_a != root_b:
            parent[root_a] = root_b
    return len({find(node_id) for node_id in graph.node_ids()})


def summarize(graph: PropertyGraph) -> GraphSummary:
    node_hist: Dict[str, int] = {}
    for node in graph.nodes():
        node_hist[node.label] = node_hist.get(node.label, 0) + 1
    edge_hist: Dict[str, int] = {}
    for edge in graph.edges():
        edge_hist[edge.label] = edge_hist.get(edge.label, 0) + 1
    return GraphSummary(
        nodes=graph.node_count,
        edges=graph.edge_count,
        node_labels=tuple(sorted(node_hist.items())),
        edge_labels=tuple(sorted(edge_hist.items())),
        components=connected_components(graph) if graph.node_count else 0,
    )


def degree_sequence(graph: PropertyGraph) -> List[int]:
    return sorted(graph.degree(node_id) for node_id in graph.node_ids())


def motif_signature(
    graph: PropertyGraph,
) -> Tuple[Tuple[str, ...], Tuple[Tuple[str, str, str], ...]]:
    """Label-level shape of a graph: node labels and edge-label triples.

    The first element is the sorted multiset of node labels, the second
    the sorted multiset of ``(source label, edge label, target label)``
    triples.  Two graphs share a motif signature iff they exercise the
    same vocabulary of provenance structure — the granularity at which
    the synthesis engine's coverage model tracks what the suite's result
    graphs have already expressed (node ids and volatile properties are
    deliberately ignored; generalization rewrites both).
    """
    labels = tuple(sorted(node.label for node in graph.nodes()))
    triples = tuple(sorted(
        (graph.node(edge.src).label, edge.label, graph.node(edge.tgt).label)
        for edge in graph.edges()
    ))
    return labels, triples


def graph_fingerprint(graph: PropertyGraph) -> str:
    """Order- and id-insensitive content digest of a generalized graph.

    Hashes :meth:`PropertyGraph.structural_signature` — the solver's
    isomorphism invariant (per-node ``(label, out-degree, in-degree)``
    plus labelled edge triples) — so isomorphic relabellings collapse
    to one fingerprint while structurally distinct graphs (extra edges,
    different fan-in/fan-out splits) separate.  Used by the synthesis
    curation loop to deduplicate candidate benchmarks whose target
    graphs are equivalent.
    """
    material = repr(graph.structural_signature())
    return hashlib.sha256(material.encode("utf-8")).hexdigest()
