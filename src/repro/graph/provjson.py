"""W3C PROV-JSON serialization (CamFlow's output format).

PROV-JSON groups elements by PROV type::

    {"entity":   {"id": {props...}},
     "activity": {"id": {props...}},
     "agent":    {"id": {props...}},
     "used":     {"id": {"prov:activity": a, "prov:entity": e, props...}},
     "wasGeneratedBy": {...},  ...}

CamFlow labels its nodes with ``prov:type`` values such as ``task``,
``inode``, ``path``; we keep that value as the property-graph label.
"""

from __future__ import annotations

import json
from typing import Dict, Tuple

from repro.graph.model import PropertyGraph

# PROV relation name -> (source key, target key).  Source/target follow the
# PROV-DM direction (effect -> cause), which is also how CamFlow emits them.
RELATION_KEYS: Dict[str, Tuple[str, str]] = {
    "used": ("prov:activity", "prov:entity"),
    "wasGeneratedBy": ("prov:entity", "prov:activity"),
    "wasInformedBy": ("prov:informed", "prov:informant"),
    "wasDerivedFrom": ("prov:generatedEntity", "prov:usedEntity"),
    "wasAssociatedWith": ("prov:activity", "prov:agent"),
    "wasAttributedTo": ("prov:entity", "prov:agent"),
}

_NODE_KINDS = ("entity", "activity", "agent")


class ProvJsonError(Exception):
    """Raised when PROV-JSON input is malformed."""


def graph_to_provjson(graph: PropertyGraph) -> str:
    """Render ``graph`` as a PROV-JSON document string."""
    doc: Dict[str, Dict[str, Dict[str, str]]] = {}
    for node in graph.nodes():
        kind = node.props.get("prov:kind", "entity")
        if kind not in _NODE_KINDS:
            kind = "entity"
        body = {"prov:type": node.label}
        body.update(
            {k: v for k, v in node.props.items() if k != "prov:kind"}
        )
        doc.setdefault(kind, {})[node.id] = body
    for edge in graph.edges():
        relation = edge.label if edge.label in RELATION_KEYS else "used"
        src_key, tgt_key = RELATION_KEYS[relation]
        body = {src_key: edge.src, tgt_key: edge.tgt}
        if edge.label not in RELATION_KEYS:
            body["prov:type"] = edge.label
        body.update(edge.props)
        doc.setdefault(relation, {})[edge.id] = body
    return json.dumps(doc, indent=2, sort_keys=True)


def _node_kind_of(kind: str) -> str:
    return kind


def provjson_to_graph(text: str, gid: str = "prov") -> PropertyGraph:
    """Parse a PROV-JSON document into a property graph."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProvJsonError(f"invalid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProvJsonError("top level must be an object")
    graph = PropertyGraph(gid)
    for kind in _NODE_KINDS:
        for node_id, body in doc.get(kind, {}).items():
            props = {k: str(v) for k, v in body.items() if k != "prov:type"}
            props["prov:kind"] = kind
            label = str(body.get("prov:type", kind))
            graph.add_node(node_id, label, props)
    for relation, (src_key, tgt_key) in RELATION_KEYS.items():
        for edge_id, body in doc.get(relation, {}).items():
            src = body.get(src_key)
            tgt = body.get(tgt_key)
            if src is None or tgt is None:
                raise ProvJsonError(
                    f"relation {edge_id!r} missing {src_key}/{tgt_key}"
                )
            label = str(body.get("prov:type", relation))
            if label == relation or "prov:type" not in body:
                label = relation if "prov:type" not in body else str(body["prov:type"])
            props = {
                k: str(v)
                for k, v in body.items()
                if k not in (src_key, tgt_key, "prov:type")
            }
            for endpoint in (src, tgt):
                if not graph.has_node(endpoint):
                    graph.add_node(endpoint, "entity", {"prov:kind": "entity"})
            graph.add_edge(edge_id, src, tgt, label, props)
    return graph
