"""Terminal-friendly rendering of provenance graphs.

The paper's results pages show clickable graph images; in a library
setting an ASCII rendering is more useful.  :func:`render_ascii` prints a
topologically-ordered adjacency view; :func:`render_benchmark` adds the
benchmark framing (target vs. dummy context nodes).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.graph.model import PropertyGraph

_GLYPHS = {
    "Process": "[{}]",
    "Activity": "[{}]",
    "task": "[{}]",
    "Agent": "<{}>",
    "Dummy": "({})",
    "machine": "<{}>",
}


def _glyph(label: str, text: str) -> str:
    return _GLYPHS.get(label, "({})").format(text)


def _display_name(graph: PropertyGraph, node_id: str) -> str:
    node = graph.node(node_id)
    for key in ("path", "name", "cf:pathname", "comm", "exe", "function"):
        value = node.props.get(key)
        if value:
            return f"{node.label}:{value.rsplit('/', 1)[-1]}"
    if node.label == "Dummy":
        was = node.props.get("was", "")
        return f"dummy:{was}" if was else "dummy"
    return node.label


def _topological_order(graph: PropertyGraph) -> List[str]:
    """Kahn's algorithm; cycles fall back to insertion order at the end."""
    indegree: Dict[str, int] = {n: 0 for n in graph.node_ids()}
    for edge in graph.edges():
        indegree[edge.tgt] += 1
    queue = sorted(n for n, d in indegree.items() if d == 0)
    order: List[str] = []
    while queue:
        node_id = queue.pop(0)
        order.append(node_id)
        for edge in sorted(graph.out_edges(node_id), key=lambda e: e.id):
            indegree[edge.tgt] -= 1
            if indegree[edge.tgt] == 0:
                queue.append(edge.tgt)
    for node_id in graph.node_ids():
        if node_id not in order:
            order.append(node_id)
    return order


def render_ascii(graph: PropertyGraph, show_props: bool = False) -> str:
    """Adjacency rendering, one node per block::

        [Process:sh]
          --Used--> (Artifact:test.txt)
    """
    if graph.is_empty():
        return "(empty graph)\n"
    lines: List[str] = []
    for node_id in _topological_order(graph):
        node = graph.node(node_id)
        lines.append(_glyph(node.label, _display_name(graph, node_id)))
        if show_props:
            for key in sorted(node.props):
                lines.append(f"    . {key} = {node.props[key]}")
        for edge in sorted(graph.out_edges(node_id), key=lambda e: e.id):
            target = _glyph(
                graph.node(edge.tgt).label, _display_name(graph, edge.tgt)
            )
            operation = edge.props.get("operation") or edge.props.get("cf:type")
            suffix = f" ({operation})" if operation else ""
            lines.append(f"  --{edge.label}--> {target}{suffix}")
    return "\n".join(lines) + "\n"


def render_benchmark(
    target: PropertyGraph,
    title: Optional[str] = None,
    show_props: bool = False,
) -> str:
    """Benchmark-result framing around :func:`render_ascii`."""
    dummies = sum(1 for n in target.nodes() if n.label == "Dummy")
    real_nodes = target.node_count - dummies
    header = title or "benchmark target"
    summary = (
        f"{header}: {real_nodes} new node(s), {target.edge_count} new "
        f"edge(s), {dummies} anchor(s) into the background"
    )
    return summary + "\n" + render_ascii(target, show_props=show_props)
