"""Graphviz DOT serialization.

SPADE's Graphviz storage emits one DOT statement per vertex and edge with
the provenance annotations packed into the ``label`` attribute
(``key1:value1\\nkey2:value2``) and the element kind in ``shape``
(box = Process, ellipse = Artifact, octagon = Agent).  The transformation
stage parses exactly this dialect; the writer is also used to visualize
benchmark results.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.graph.model import PropertyGraph

_SHAPE_FOR_LABEL = {
    "Process": "box",
    "Activity": "box",
    "Artifact": "ellipse",
    "Entity": "ellipse",
    "Agent": "octagon",
    "Dummy": "egg",
}

_LABEL_FOR_SHAPE = {
    "box": "Process",
    "ellipse": "Artifact",
    "octagon": "Agent",
    "egg": "Dummy",
}

_NODE_RE = re.compile(r'^\s*"?([\w.]+)"?\s*\[(.*)\];?\s*$')
_EDGE_RE = re.compile(r'^\s*"?([\w.]+)"?\s*->\s*"?([\w.]+)"?\s*\[(.*)\];?\s*$')
_ATTR_RE = re.compile(r'(\w+)\s*=\s*"((?:[^"\\]|\\.)*)"')


class DotError(Exception):
    """Raised when DOT text cannot be parsed."""


def _pack_label(label: str, props: Dict[str, str]) -> str:
    parts = [f"type:{label}"]
    for key in sorted(props):
        parts.append(f"{key}:{props[key]}")
    return "\\n".join(parts)


def _unpack_label(packed: str) -> Tuple[str, Dict[str, str]]:
    label = ""
    props: Dict[str, str] = {}
    for part in packed.split("\\n"):
        if not part:
            continue
        key, _, value = part.partition(":")
        if key == "type" and not label:
            label = value
        else:
            props[key] = value
    return label or "Unknown", props


def graph_to_dot(graph: PropertyGraph, name: str = "provenance") -> str:
    """Render ``graph`` in the SPADE-like DOT dialect."""
    lines = [f"digraph {name} {{"]
    for node in sorted(graph.nodes(), key=lambda n: n.id):
        shape = _SHAPE_FOR_LABEL.get(node.label, "ellipse")
        packed = _pack_label(node.label, dict(node.props))
        lines.append(f'  "{node.id}" [label="{packed}" shape="{shape}"];')
    for edge in sorted(graph.edges(), key=lambda e: e.id):
        packed = _pack_label(edge.label, dict(edge.props))
        lines.append(
            f'  "{edge.src}" -> "{edge.tgt}" [id="{edge.id}" label="{packed}"];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def dot_to_graph(text: str, gid: str = "dot") -> PropertyGraph:
    """Parse the SPADE-like DOT dialect back into a property graph."""
    graph = PropertyGraph(gid)
    edge_seq = 0
    pending_edges: List[Tuple[str, str, str, Dict[str, str]]] = []
    for raw in text.splitlines():
        line = raw.strip()
        if (
            not line
            or line.startswith(("digraph", "}", "//", "#"))
            or line in ("{",)
        ):
            continue
        edge_match = _EDGE_RE.match(line)
        if edge_match:
            src, tgt, attrs_text = edge_match.groups()
            attrs = dict(_ATTR_RE.findall(attrs_text))
            label, props = _unpack_label(attrs.get("label", ""))
            edge_id = attrs.get("id") or f"e{edge_seq}"
            edge_seq += 1
            pending_edges.append((edge_id, src, tgt, {"label": label, **props}))
            continue
        node_match = _NODE_RE.match(line)
        if node_match:
            node_id, attrs_text = node_match.groups()
            attrs = dict(_ATTR_RE.findall(attrs_text))
            if "label" in attrs:
                label, props = _unpack_label(attrs["label"])
            else:
                label = _LABEL_FOR_SHAPE.get(attrs.get("shape", ""), "Unknown")
                props = {}
            graph.add_node(node_id, label, props)
            continue
        raise DotError(f"unparseable DOT line: {raw!r}")
    for edge_id, src, tgt, attrs in pending_edges:
        label = attrs.pop("label")
        for endpoint in (src, tgt):
            if not graph.has_node(endpoint):
                graph.add_node(endpoint, "Unknown")
        graph.add_edge(edge_id, src, tgt, label, attrs)
    return graph
