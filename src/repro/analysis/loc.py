"""Table 4 — module sizes (lines of code).

The paper reports the size of each per-tool recording and transformation
module to argue ProvMark is easy to extend (§5.3).  We measure the same
quantities over this reproduction: the per-tool capture modules
(recording) and the format transformers (transformation).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Tuple

import repro.capture.camflow
import repro.capture.opus
import repro.capture.spade
import repro.graph.dot
import repro.graph.provjson
import repro.storage.neo4jsim

#: tool -> (recording module, transformation module)
MODULES: Dict[str, Tuple[object, object]] = {
    "spade": (repro.capture.spade, repro.graph.dot),
    "opus": (repro.capture.opus, repro.storage.neo4jsim),
    "camflow": (repro.capture.camflow, repro.graph.provjson),
}


def count_loc(module: object) -> int:
    """Non-blank, non-comment lines of a module's source file."""
    path = Path(getattr(module, "__file__"))
    count = 0
    in_docstring = False
    delimiter = ""
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if in_docstring:
            if delimiter in line:
                in_docstring = False
            continue
        if line.startswith(('"""', "'''")):
            delimiter = line[:3]
            if line.count(delimiter) == 1:
                in_docstring = True
            continue
        if not line or line.startswith("#"):
            continue
        count += 1
    return count


@dataclass
class Table4:
    recording: Dict[str, int]
    transformation: Dict[str, int]

    def render(self) -> str:
        tools = sorted(self.recording)
        lines = [
            "Module          " + "  ".join(f"{t:<10}" for t in tools),
            "Recording       "
            + "  ".join(f"{self.recording[t]:<10}" for t in tools),
            "Transformation  "
            + "  ".join(f"{self.transformation[t]:<10}" for t in tools),
        ]
        return "\n".join(lines)


def generate_table4() -> Table4:
    recording = {}
    transformation = {}
    for tool, (record_module, transform_module) in MODULES.items():
        recording[tool] = count_loc(record_module)
        transformation[tool] = count_loc(transform_module)
    return Table4(recording=recording, transformation=transformation)
