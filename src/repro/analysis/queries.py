"""Provenance-graph queries.

The applications the paper motivates — forensic audit, intrusion
detection, compliance — all reduce to queries over provenance graphs:
*where did this come from*, *what did this process touch*, *does this
attack pattern occur*.  This module provides those primitives over the
common property-graph representation, so benchmark outputs (and any graph
a capture system produced) can be interrogated directly.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.graph.model import Edge, Node, PropertyGraph

NodePredicate = Callable[[Node], bool]


def find_nodes(graph: PropertyGraph, predicate: NodePredicate) -> List[Node]:
    return [node for node in graph.nodes() if predicate(node)]


def by_label(label: str) -> NodePredicate:
    return lambda node: node.label == label

def by_prop(key: str, value: Optional[str] = None) -> NodePredicate:
    if value is None:
        return lambda node: key in node.props
    return lambda node: node.props.get(key) == value


def _neighbors(
    graph: PropertyGraph, node_id: str, forward: bool
) -> Iterator[Tuple[Edge, str]]:
    edges = graph.out_edges(node_id) if forward else graph.in_edges(node_id)
    for edge in edges:
        yield edge, (edge.tgt if forward else edge.src)


def reachable(
    graph: PropertyGraph,
    start: str,
    forward: bool = True,
    max_depth: Optional[int] = None,
) -> Set[str]:
    """Nodes reachable from ``start`` following edge direction.

    In provenance terms, following *outgoing* edges walks toward what an
    element depends on (its ancestry), since provenance edges point from
    effect to cause.
    """
    seen: Set[str] = set()
    queue = deque([(start, 0)])
    while queue:
        node_id, depth = queue.popleft()
        if max_depth is not None and depth >= max_depth:
            continue
        for _, neighbor in _neighbors(graph, node_id, forward):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append((neighbor, depth + 1))
    seen.discard(start)
    return seen


def ancestry(graph: PropertyGraph, node_id: str) -> Set[str]:
    """Everything ``node_id`` causally depends on (provenance closure)."""
    return reachable(graph, node_id, forward=True)


def influence(graph: PropertyGraph, node_id: str) -> Set[str]:
    """Everything that causally depends on ``node_id``."""
    return reachable(graph, node_id, forward=False)


def shortest_path(
    graph: PropertyGraph, source: str, target: str
) -> Optional[List[Edge]]:
    """Shortest directed edge path from ``source`` to ``target``."""
    if source == target:
        return []
    parents: Dict[str, Tuple[str, Edge]] = {}
    queue = deque([source])
    while queue:
        node_id = queue.popleft()
        for edge, neighbor in _neighbors(graph, node_id, forward=True):
            if neighbor in parents or neighbor == source:
                continue
            parents[neighbor] = (node_id, edge)
            if neighbor == target:
                path: List[Edge] = []
                current = target
                while current != source:
                    previous, via = parents[current]
                    path.append(via)
                    current = previous
                path.reverse()
                return path
            queue.append(neighbor)
    return None


def flows_between(
    graph: PropertyGraph,
    source_predicate: NodePredicate,
    sink_predicate: NodePredicate,
) -> List[Tuple[str, str, List[Edge]]]:
    """Information-flow witnesses: paths from a source to a sink node.

    The classic detection query: does anything read from X (e.g.
    /etc/shadow) flow into Y (e.g. a socket)?  Provenance edges point
    effect→cause, so data flowing source→sink appears as a path
    *sink→...→source*; we search that direction and report it
    source-first.
    """
    sources = {n.id for n in find_nodes(graph, source_predicate)}
    flows: List[Tuple[str, str, List[Edge]]] = []
    for sink in find_nodes(graph, sink_predicate):
        if sink.id in sources:
            continue
        for source_id in sources:
            path = shortest_path(graph, sink.id, source_id)
            if path is not None and path:
                flows.append((source_id, sink.id, path))
    return flows


def match_pattern(
    graph: PropertyGraph,
    node_constraints: Dict[str, NodePredicate],
    edge_constraints: Sequence[Tuple[str, str, Optional[str]]],
) -> List[Dict[str, str]]:
    """Small subgraph-pattern matcher for detection rules.

    ``node_constraints`` binds pattern variables to predicates;
    ``edge_constraints`` is a list of (src_var, tgt_var, edge_label-or-None)
    requirements.  Returns all assignments of variables to node ids.

    >>> # a task that read some inode and generated another
    >>> match_pattern(g, {"t": by_label("task"),
    ...                   "r": by_label("inode"),
    ...                   "w": by_label("inode")},
    ...               [("t", "r", "used"), ("w", "t", "wasGeneratedBy")])
    """
    variables = list(node_constraints)
    candidates: Dict[str, List[str]] = {
        var: [n.id for n in find_nodes(graph, predicate)]
        for var, predicate in node_constraints.items()
    }
    results: List[Dict[str, str]] = []

    def satisfied(assignment: Dict[str, str]) -> bool:
        for src_var, tgt_var, label in edge_constraints:
            if src_var not in assignment or tgt_var not in assignment:
                continue
            found = any(
                edge.tgt == assignment[tgt_var]
                and (label is None or edge.label == label)
                for edge in graph.out_edges(assignment[src_var])
            )
            if not found:
                return False
        return True

    def search(index: int, assignment: Dict[str, str]) -> None:
        if index == len(variables):
            results.append(dict(assignment))
            return
        var = variables[index]
        for candidate in candidates[var]:
            if candidate in assignment.values():
                continue
            assignment[var] = candidate
            if satisfied(assignment):
                search(index + 1, assignment)
            del assignment[var]

    search(0, {})
    return results
