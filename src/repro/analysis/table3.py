"""Table 3 — example benchmark result structures.

The paper shows the target graphs of six representative syscalls (open,
read, write, dup, setuid, setresuid) for all three tools.  We summarize
each cell structurally (node/edge counts, labels, components) and keep the
DOT source for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.pipeline import PipelineConfig, ProvMark
from repro.graph.dot import graph_to_dot
from repro.graph.stats import GraphSummary, summarize

TABLE3_SYSCALLS = ("open", "read", "write", "dup", "setuid", "setresuid")
TOOLS = ("spade", "opus", "camflow")


@dataclass
class Table3Cell:
    summary: GraphSummary
    dot: str

    @property
    def rendered(self) -> str:
        return self.summary.describe()


@dataclass
class Table3:
    cells: Dict[str, Dict[str, Table3Cell]]

    def render(self) -> str:
        lines = []
        syscalls = sorted({s for cells in self.cells.values() for s in cells})
        width = max(len(s) for s in syscalls) + 2
        for tool in self.cells:
            lines.append(f"--- {tool} ---")
            for syscall in syscalls:
                cell = self.cells[tool].get(syscall)
                if cell is not None:
                    lines.append(f"  {syscall:<{width}} {cell.rendered}")
        return "\n".join(lines)


def generate_table3(
    syscalls: Sequence[str] = TABLE3_SYSCALLS,
    tools: Sequence[str] = TOOLS,
    seed: Optional[int] = 2019,
) -> Table3:
    cells: Dict[str, Dict[str, Table3Cell]] = {}
    for tool in tools:
        provmark = ProvMark._internal(config=PipelineConfig(tool=tool, seed=seed))
        cells[tool] = {}
        for syscall in syscalls:
            result = provmark.run_benchmark(syscall)
            cells[tool][syscall] = Table3Cell(
                summary=summarize(result.target_graph),
                dot=graph_to_dot(result.target_graph),
            )
    return Table3(cells=cells)
