"""Coverage queries over benchmark results.

Answers the expressiveness questions the paper motivates: what does each
tool record, where are the blind spots, and how do tools compare per
syscall group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.result import BenchmarkResult, Classification
from repro.suite.registry import TABLE1_GROUPS, TABLE2_BENCHMARKS


@dataclass
class CoverageReport:
    """Per-tool coverage statistics over a set of results."""

    tool: str
    recorded: List[str]
    blind_spots: List[str]
    failed: List[str]

    @property
    def coverage_ratio(self) -> float:
        total = len(self.recorded) + len(self.blind_spots)
        return len(self.recorded) / total if total else 0.0


def coverage_for(results: Sequence[BenchmarkResult]) -> Dict[str, CoverageReport]:
    """Group results by tool and split into recorded/blind/failed."""
    by_tool: Dict[str, CoverageReport] = {}
    for result in results:
        report = by_tool.setdefault(
            result.tool, CoverageReport(result.tool, [], [], [])
        )
        if result.classification is Classification.OK:
            report.recorded.append(result.benchmark)
        elif result.classification is Classification.EMPTY:
            report.blind_spots.append(result.benchmark)
        else:
            report.failed.append(result.benchmark)
    return by_tool


def group_coverage(
    results: Sequence[BenchmarkResult],
) -> Dict[str, Dict[int, Tuple[int, int]]]:
    """tool -> group -> (recorded, total) over Table 2 benchmarks."""
    out: Dict[str, Dict[int, Tuple[int, int]]] = {}
    for result in results:
        program = TABLE2_BENCHMARKS.get(result.benchmark)
        if program is None:
            continue
        groups = out.setdefault(result.tool, {})
        recorded, total = groups.get(program.group, (0, 0))
        if result.classification is Classification.OK:
            recorded += 1
        groups[program.group] = (recorded, total + 1)
    return out


def blind_spot_overlap(
    results: Sequence[BenchmarkResult],
) -> List[str]:
    """Syscalls no tool records — the ecosystem-wide blind spots."""
    by_benchmark: Dict[str, List[Classification]] = {}
    for result in results:
        by_benchmark.setdefault(result.benchmark, []).append(
            result.classification
        )
    return sorted(
        name
        for name, classes in by_benchmark.items()
        if classes and all(c is Classification.EMPTY for c in classes)
    )


def render_group_coverage(results: Sequence[BenchmarkResult]) -> str:
    coverage = group_coverage(results)
    lines = ["Per-group coverage (recorded/total):"]
    for tool in sorted(coverage):
        parts = []
        for group, (name, _) in sorted(TABLE1_GROUPS.items()):
            recorded, total = coverage[tool].get(group, (0, 0))
            parts.append(f"{name} {recorded}/{total}")
        lines.append(f"  {tool:<8} " + "  ".join(parts))
    return "\n".join(lines)
