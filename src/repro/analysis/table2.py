"""Table 2 — the validation matrix (ok/empty per syscall per tool)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import PipelineConfig, ProvMark
from repro.core.result import BenchmarkResult
from repro.suite.registry import TABLE2_BENCHMARKS, TABLE2_ORDER

NOTE_MEANINGS = {
    "NR": "Behavior not recorded (by default configuration)",
    "SC": "Only state changes monitored",
    "LP": "Limitation in ProvMark",
    "DV": "Disconnected vforked process",
}

TOOLS = ("spade", "opus", "camflow")


@dataclass
class Table2Cell:
    classification: str
    note: str
    expected_classification: str
    expected_note: str

    @property
    def rendered(self) -> str:
        note = f" ({self.note})" if self.note else ""
        return f"{self.classification}{note}"

    @property
    def expected_rendered(self) -> str:
        note = f" ({self.expected_note})" if self.expected_note else ""
        return f"{self.expected_classification}{note}"

    @property
    def matches_expectation(self) -> bool:
        return self.classification == self.expected_classification


@dataclass
class Table2:
    """The full matrix plus agreement statistics."""

    rows: Dict[str, Dict[str, Table2Cell]]

    def mismatches(self) -> List[Tuple[str, str, Table2Cell]]:
        out = []
        for benchmark, cells in self.rows.items():
            for tool, cell in cells.items():
                if not cell.matches_expectation:
                    out.append((benchmark, tool, cell))
        return out

    @property
    def agreement(self) -> float:
        total = sum(len(cells) for cells in self.rows.values())
        good = total - len(self.mismatches())
        return good / total if total else 1.0

    def render(self) -> str:
        """Text rendering in the paper's row order."""
        lines = [
            f"{'syscall':<12} {'group':>5}  "
            + "  ".join(f"{tool:<14}" for tool in TOOLS)
        ]
        for benchmark in self.rows:
            group = TABLE2_BENCHMARKS[benchmark].group
            cells = self.rows[benchmark]
            lines.append(
                f"{benchmark:<12} {group:>5}  "
                + "  ".join(f"{cells[tool].rendered:<14}" for tool in TOOLS)
            )
        lines.append("")
        for note, meaning in NOTE_MEANINGS.items():
            lines.append(f"  {note}: {meaning}")
        return "\n".join(lines)


def generate_table2(
    tools: Sequence[str] = TOOLS,
    benchmarks: Optional[Sequence[str]] = None,
    seed: Optional[int] = 2019,
    trials: Optional[int] = None,
) -> Table2:
    """Run the full pipeline for every (tool, benchmark) cell."""
    names = list(benchmarks or TABLE2_ORDER)
    rows: Dict[str, Dict[str, Table2Cell]] = {name: {} for name in names}
    for tool in tools:
        provmark = ProvMark._internal(
            config=PipelineConfig(tool=tool, seed=seed, trials=trials)
        )
        for name in names:
            result = provmark.run_benchmark(name)
            rows[name][tool] = _to_cell(result)
    return Table2(rows=rows)


def _to_cell(result: BenchmarkResult) -> Table2Cell:
    program = TABLE2_BENCHMARKS.get(result.benchmark)
    expectation = program.expectation(result.tool) if program else None
    expected_classification, expected_note = expectation or ("?", "")
    note = expected_note if result.classification.value == expected_classification else ""
    return Table2Cell(
        classification=result.classification.value,
        note=note,
        expected_classification=expected_classification,
        expected_note=expected_note,
    )
