"""Analysis: regenerating the paper's tables and coverage queries."""

from repro.analysis.coverage import (
    CoverageReport,
    blind_spot_overlap,
    coverage_for,
    group_coverage,
    render_group_coverage,
)
from repro.analysis.loc import Table4, count_loc, generate_table4
from repro.analysis.queries import (
    ancestry,
    by_label,
    by_prop,
    find_nodes,
    flows_between,
    influence,
    match_pattern,
    reachable,
    shortest_path,
)
from repro.analysis.table2 import (
    NOTE_MEANINGS,
    Table2,
    Table2Cell,
    generate_table2,
)
from repro.analysis.table3 import (
    TABLE3_SYSCALLS,
    Table3,
    Table3Cell,
    generate_table3,
)

__all__ = [
    "CoverageReport",
    "NOTE_MEANINGS",
    "TABLE3_SYSCALLS",
    "Table2",
    "Table2Cell",
    "Table3",
    "Table3Cell",
    "Table4",
    "ancestry",
    "blind_spot_overlap",
    "by_label",
    "by_prop",
    "find_nodes",
    "flows_between",
    "influence",
    "match_pattern",
    "reachable",
    "shortest_path",
    "count_loc",
    "coverage_for",
    "generate_table2",
    "generate_table3",
    "generate_table4",
    "group_coverage",
    "render_group_coverage",
]
