"""repro.sched — priority-aware admission and scheduling for the execution plane.

The subsystem sits between request admission (the API facade and the
middleware chain) and the durable :class:`~repro.exec.queue.JobQueue`:

* :mod:`repro.sched.policy` — the vocabulary: priority classes
  (``urgent < interactive < batch < background``), per-client/per-role
  :class:`QuotaPolicy` limits, the weighted fair-share ledger, and the
  JSON-loadable :class:`SchedulerConfig` that ties them together.
* :mod:`repro.sched.admission` — the :class:`AdmissionController` both
  job managers consult at submit: request + role → priority class,
  quota enforcement (:class:`~repro.api.errors.QuotaExceededError`).
* :mod:`repro.sched.autoscale` — the :class:`QueueAutoscaler` the
  supervisor ticks to grow/shrink worker slots from queue pressure.
"""

from repro.sched.admission import AdmissionController
from repro.sched.autoscale import QueueAutoscaler
from repro.sched.policy import (
    ADMIN_ONLY_CLASSES,
    AGING_FLOOR,
    DEFAULT_CLASS_BY_KIND,
    PRIORITY_CLASSES,
    AutoscalePolicy,
    FairShareLedger,
    PriorityClass,
    QuotaPolicy,
    QuotaTable,
    SchedulerConfig,
    class_rank,
    class_of_rank,
    load_scheduler_config,
    summarize_class_stats,
    zeroed_class_stats,
)

__all__ = [
    "ADMIN_ONLY_CLASSES",
    "AGING_FLOOR",
    "DEFAULT_CLASS_BY_KIND",
    "PRIORITY_CLASSES",
    "AdmissionController",
    "AutoscalePolicy",
    "FairShareLedger",
    "PriorityClass",
    "QueueAutoscaler",
    "QuotaPolicy",
    "QuotaTable",
    "SchedulerConfig",
    "class_rank",
    "class_of_rank",
    "load_scheduler_config",
    "summarize_class_stats",
    "zeroed_class_stats",
]
