"""AdmissionController: request + role → priority class, under quota.

Both job managers — the in-process thread pool and the durable fleet —
consult one controller at ``submit``.  It does two things:

* **Class resolution.**  A request carrying an explicit ``priority``
  gets it (validated; ``urgent`` needs the ``admin`` role whenever a
  role is present — direct CLI/embedding callers have ``role == ""``
  and are trusted, the HTTP edge always resolves a role when auth is
  configured).  Without one, the kind's default class applies
  (run → interactive, batch → batch, synth → background).
* **Quota enforcement.**  The resolved :class:`QuotaPolicy` (client
  override → role override → default) is checked against the client's
  live jobs; over quota raises :class:`QuotaExceededError` — a 429 with
  ``Retry-After``, deliberately a *distinct type* from whole-queue
  :class:`~repro.api.errors.BackpressureError` so clients and metrics
  can tell "you specifically are over quota" from "the plane is full".
"""

from __future__ import annotations

from typing import Callable, Iterable, Tuple, Union

from repro.api.errors import ForbiddenError, QuotaExceededError
from repro.sched.policy import (
    ADMIN_ONLY_CLASSES,
    SchedulerConfig,
    class_rank,
)

#: the job states that count against quotas (live jobs only)
_QUEUED = ("queued",)
_RUNNING = ("running",)


class AdmissionController:
    """Stateless policy gate in front of both job managers."""

    def __init__(self, config: SchedulerConfig) -> None:
        self.config = config

    def resolve_class(self, request, kind: str, role: str = "") -> str:
        """The priority class this submit runs under (may raise 400/403)."""
        explicit = getattr(request, "priority", None)
        if explicit:
            name = str(explicit)
            class_rank(name)  # ValidationError on unknown names
            if name in ADMIN_ONLY_CLASSES and role and role != "admin":
                raise ForbiddenError(
                    f"priority class {name!r} requires the admin role "
                    f"(authenticated as {role!r})"
                )
            return name
        return self.config.class_for_kind(kind)

    def admit(
        self,
        request,
        kind: str,
        role: str,
        client_id: str,
        active: Iterable[Tuple[str, str]],
        retry_after: Union[float, Callable[[], float]] = 1.0,
    ) -> str:
        """Gate one submit; returns the class to stamp into the record.

        ``active`` yields ``(client_id, state)`` pairs for the manager's
        current jobs and ``retry_after`` may be a thunk — both are only
        consumed when the resolved quota is actually bounded (and, for
        the thunk, actually exceeded), so the unlimited default costs
        nothing per submit.
        """
        name = self.resolve_class(request, kind, role)
        quota = self.config.quotas.resolve(client_id, role)
        if quota.unlimited:
            return name
        if callable(retry_after):
            hint = retry_after
        else:
            hint = lambda: retry_after  # noqa: E731 — tiny closure
        queued = running = 0
        for cid, state in active:
            if cid != client_id:
                continue
            if state in _QUEUED:
                queued += 1
            elif state in _RUNNING:
                running += 1
        if quota.max_queued is not None and queued >= quota.max_queued:
            raise QuotaExceededError(
                f"client {client_id!r} is over its queued-depth quota "
                f"({queued}/{quota.max_queued} queued jobs); retry later",
                retry_after=hint(),
            )
        if (
            quota.max_in_flight is not None
            and queued + running >= quota.max_in_flight
        ):
            raise QuotaExceededError(
                f"client {client_id!r} is over its in-flight quota "
                f"({queued + running}/{quota.max_in_flight} live jobs); "
                f"retry later",
                retry_after=hint(),
            )
        return name
