"""QueueAutoscaler: grow/shrink the fleet from queue pressure.

The supervisor's monitor thread calls :meth:`maybe_scale` every tick;
the autoscaler reads queue depth and the pending class mix (both are
cheap directory scans, no record parsing) and nudges the supervisor's
worker target one slot at a time between the policy's
``min_workers``/``max_workers``:

* **Up** when latency-sensitive work is waiting behind a fully leased
  fleet (any pending urgent/interactive job while every slot holds a
  lease), or when total backlog exceeds ``backlog_per_worker`` per
  current slot — whichever fires first, rate-limited by
  ``scale_up_cooldown``.
* **Down** one slot per ``scale_down_cooldown`` once the pending queue
  has been empty (with at least one idle worker) for ``idle_grace``
  seconds continuously.  Shrinking goes through the supervisor's drain
  machinery: the retired worker finishes its in-flight job, then exits.

Scale events are counted (``scale_up_total``/``scale_down_total``) and
surfaced through ``queue_stats()`` → ``/v1/health`` and ``/v1/metrics``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.sched.policy import AGING_FLOOR, AutoscalePolicy, class_rank

#: classes whose queueing alone (not depth) justifies growing the fleet
_LATENCY_RANK = class_rank(AGING_FLOOR)


class QueueAutoscaler:
    """One fleet's scaling loop state (cooldowns, counters)."""

    def __init__(
        self,
        queue,
        policy: AutoscalePolicy,
        clock: Callable[[], float] = time.monotonic,
        fleet_workers: Optional[Callable[[], int]] = None,
        on_scale: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        """``fleet_workers`` reports *remote* worker slots (a cluster
        coordinator's registry count) so pressure is judged against the
        whole fleet's capacity, not just local slots.  ``on_scale`` is
        called with ``(old_target, new_target)`` after each change —
        the coordinator publishes it as an ``autoscale`` event."""
        self.queue = queue
        self.policy = policy
        self.clock = clock
        self.fleet_workers = fleet_workers
        self.on_scale = on_scale
        self.scale_up_total = 0
        self.scale_down_total = 0
        self._last_up: Optional[float] = None
        self._last_down: Optional[float] = None
        self._idle_since: Optional[float] = None

    # -- decision ------------------------------------------------------------

    def desired_target(
        self,
        target: int,
        pending: int,
        leased: int,
        latency_pending: int,
        now: float,
        remote: int = 0,
    ) -> int:
        """The next worker target (pure decision logic, no side effects
        beyond idle-tracking — injectable inputs make it unit-testable).

        ``remote`` adds cluster agents' worker slots to capacity: the
        autoscaler only moves *local* slots, but judges busyness and
        backlog against the fleet-wide total.
        """
        pol = self.policy
        # clamp drifted targets (e.g. a fleet started outside the band)
        bounded = min(max(target, pol.min_workers), pol.max_workers)
        if bounded != target:
            return bounded
        capacity = target + max(0, int(remote))
        busy = leased >= capacity
        pressure = (
            (latency_pending > 0 and busy)
            or pending > capacity * pol.backlog_per_worker
        )
        if pressure:
            self._idle_since = None
            if target < pol.max_workers and self._cooled(
                self._last_up, pol.scale_up_cooldown, now
            ):
                return target + 1
            return target
        if pending == 0 and leased < capacity:
            if self._idle_since is None:
                self._idle_since = now
            if (
                target > pol.min_workers
                and now - self._idle_since >= pol.idle_grace
                and self._cooled(self._last_down, pol.scale_down_cooldown, now)
            ):
                return target - 1
        else:
            self._idle_since = None
        return target

    @staticmethod
    def _cooled(last: Optional[float], cooldown: float, now: float) -> bool:
        return last is None or now - last >= cooldown

    # -- supervisor hook -----------------------------------------------------

    def maybe_scale(self, supervisor) -> Optional[int]:
        """One scaling pass; returns the new target when it changed."""
        target = supervisor.target
        depth = self.queue.depth()
        by_class = self.queue.pending_by_class()
        latency_pending = sum(
            count for name, count in by_class.items()
            if class_rank(name) <= _LATENCY_RANK
        )
        now = self.clock()
        remote = self.fleet_workers() if self.fleet_workers is not None else 0
        new = self.desired_target(
            target, depth["pending"], depth["leased"], latency_pending, now,
            remote=remote,
        )
        if new == target:
            return None
        if not supervisor.set_target(new):
            return None  # draining; leave counters alone
        if new > target:
            self.scale_up_total += 1
            self._last_up = now
        else:
            self.scale_down_total += 1
            self._last_down = now
        if self.on_scale is not None:
            self.on_scale(target, new)
        return new

    def stats(self) -> Dict[str, object]:
        remote = self.fleet_workers() if self.fleet_workers is not None else 0
        return {
            "min_workers": self.policy.min_workers,
            "max_workers": self.policy.max_workers,
            "scale_up_total": self.scale_up_total,
            "scale_down_total": self.scale_down_total,
            "remote_workers": remote,
        }
