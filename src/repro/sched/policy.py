"""Scheduling vocabulary: priority classes, quotas, fair share, config.

Everything here is policy *data* — small frozen dataclasses with strict
JSON codecs (unknown keys rejected, like the rest of the typed API) and
one on-disk ledger.  The mechanisms that consume them live elsewhere:
admission in :mod:`repro.sched.admission`, claim-order integration in
:mod:`repro.exec.queue`, autoscaling in :mod:`repro.sched.autoscale`.

Priority classes order ``urgent < interactive < batch < background``
(lower rank claims first).  ``urgent`` is admin-only at admission; aging
never promotes into it, so it stays a strict operator override lane.
The rank is what the queue encodes into pending-token names (``p<rank>.``
prefix), which makes strict-priority claim order a plain lexicographic
scan.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.api.errors import ValidationError

#: claim order, best first; ranks are the tuple indexes
PRIORITY_CLASSES: Tuple[str, ...] = (
    "urgent", "interactive", "batch", "background",
)

#: classes only the ``admin`` role may request explicitly
ADMIN_ONLY_CLASSES: Tuple[str, ...] = ("urgent",)

#: aging promotes starved jobs at most up to this class — never into
#: ``urgent``, which stays reserved for explicit admin submits
AGING_FLOOR: str = "interactive"

#: the class a request lands in when it names none: interactive runs,
#: batch sweeps, background synthesis campaigns
DEFAULT_CLASS_BY_KIND: Mapping[str, str] = {
    "run": "interactive",
    "batch": "batch",
    "synth": "background",
}

_RANKS: Dict[str, int] = {name: i for i, name in enumerate(PRIORITY_CLASSES)}


def class_rank(name: str) -> int:
    """The claim rank of a priority class name (0 claims first)."""
    try:
        return _RANKS[name]
    except KeyError:
        raise ValidationError(
            f"unknown priority class {name!r} (choose from "
            f"{', '.join(PRIORITY_CLASSES)})"
        ) from None


def class_of_rank(rank: int) -> str:
    if 0 <= rank < len(PRIORITY_CLASSES):
        return PRIORITY_CLASSES[rank]
    raise ValidationError(f"unknown priority rank {rank!r}")


@dataclass(frozen=True, order=True)
class PriorityClass:
    """One named priority level (orderable by claim rank)."""

    rank: int
    name: str = field(compare=False)

    @staticmethod
    def of(name: str) -> "PriorityClass":
        return PriorityClass(rank=class_rank(name), name=name)


def _check_unknown(payload: Mapping[str, object], known, what: str) -> None:
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise ValidationError(
            f"unknown {what} key(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )


def _opt_count(payload: Mapping[str, object], key: str, what: str):
    value = payload.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise ValidationError(
            f"{what}.{key} must be a non-negative integer or null, "
            f"got {value!r}"
        )
    return value


@dataclass(frozen=True)
class QuotaPolicy:
    """Per-client admission limits (``None`` = unlimited).

    ``max_in_flight`` bounds a client's queued+running jobs together;
    ``max_queued`` bounds just the waiting portion, so a client with
    many running jobs can still be stopped from stacking a deep backlog.
    """

    max_in_flight: Optional[int] = None
    max_queued: Optional[int] = None

    @property
    def unlimited(self) -> bool:
        return self.max_in_flight is None and self.max_queued is None

    def to_payload(self) -> Dict[str, object]:
        return {
            "max_in_flight": self.max_in_flight,
            "max_queued": self.max_queued,
        }

    @staticmethod
    def from_payload(payload: Mapping[str, object]) -> "QuotaPolicy":
        if not isinstance(payload, Mapping):
            raise ValidationError(
                f"a quota policy must be an object, got {payload!r}"
            )
        _check_unknown(payload, ("max_in_flight", "max_queued"), "quota")
        return QuotaPolicy(
            max_in_flight=_opt_count(payload, "max_in_flight", "quota"),
            max_queued=_opt_count(payload, "max_queued", "quota"),
        )


@dataclass(frozen=True)
class QuotaTable:
    """Quota resolution: client override → role override → default."""

    default: QuotaPolicy = QuotaPolicy()
    roles: Mapping[str, QuotaPolicy] = field(default_factory=dict)
    clients: Mapping[str, QuotaPolicy] = field(default_factory=dict)

    def resolve(self, client_id: str, role: str = "") -> QuotaPolicy:
        if client_id in self.clients:
            return self.clients[client_id]
        if role and role in self.roles:
            return self.roles[role]
        return self.default

    def to_payload(self) -> Dict[str, object]:
        return {
            "default": self.default.to_payload(),
            "roles": {k: v.to_payload() for k, v in self.roles.items()},
            "clients": {k: v.to_payload() for k, v in self.clients.items()},
        }

    @staticmethod
    def from_payload(payload: Mapping[str, object]) -> "QuotaTable":
        if not isinstance(payload, Mapping):
            raise ValidationError(
                f"quotas must be an object, got {payload!r}"
            )
        _check_unknown(payload, ("default", "roles", "clients"), "quotas")

        def _table(key: str) -> Dict[str, QuotaPolicy]:
            raw = payload.get(key) or {}
            if not isinstance(raw, Mapping):
                raise ValidationError(
                    f"quotas.{key} must be an object, got {raw!r}"
                )
            return {
                str(name): QuotaPolicy.from_payload(value)
                for name, value in raw.items()
            }

        return QuotaTable(
            default=QuotaPolicy.from_payload(payload.get("default") or {}),
            roles=_table("roles"),
            clients=_table("clients"),
        )


@dataclass(frozen=True)
class AutoscalePolicy:
    """When the fleet grows and shrinks (consumed by QueueAutoscaler).

    Scale-up triggers on either latency pressure (any urgent/interactive
    job waiting while every worker is leased) or backlog pressure (total
    pending beyond ``backlog_per_worker`` per current worker), stepped
    one slot at a time under ``scale_up_cooldown``.  Scale-down waits
    out ``idle_grace`` of an empty pending queue with spare workers,
    then steps down one slot per ``scale_down_cooldown`` — asymmetric on
    purpose: adding capacity is cheap, thrashing workers is not.
    """

    min_workers: int = 1
    max_workers: int = 4
    backlog_per_worker: float = 2.0
    scale_up_cooldown: float = 0.5
    scale_down_cooldown: float = 5.0
    idle_grace: float = 2.0

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValidationError("autoscale.min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValidationError(
                f"autoscale.max_workers ({self.max_workers}) must be >= "
                f"min_workers ({self.min_workers})"
            )
        if self.backlog_per_worker <= 0:
            raise ValidationError("autoscale.backlog_per_worker must be > 0")
        for name in ("scale_up_cooldown", "scale_down_cooldown", "idle_grace"):
            if getattr(self, name) < 0:
                raise ValidationError(f"autoscale.{name} must be >= 0")

    def to_payload(self) -> Dict[str, object]:
        return {
            "min_workers": self.min_workers,
            "max_workers": self.max_workers,
            "backlog_per_worker": self.backlog_per_worker,
            "scale_up_cooldown": self.scale_up_cooldown,
            "scale_down_cooldown": self.scale_down_cooldown,
            "idle_grace": self.idle_grace,
        }

    @staticmethod
    def from_payload(payload: Mapping[str, object]) -> "AutoscalePolicy":
        if not isinstance(payload, Mapping):
            raise ValidationError(
                f"autoscale must be an object, got {payload!r}"
            )
        known = (
            "min_workers", "max_workers", "backlog_per_worker",
            "scale_up_cooldown", "scale_down_cooldown", "idle_grace",
        )
        _check_unknown(payload, known, "autoscale")
        kwargs: Dict[str, object] = {}
        for name in ("min_workers", "max_workers"):
            if name in payload:
                value = payload[name]
                if isinstance(value, bool) or not isinstance(value, int):
                    raise ValidationError(
                        f"autoscale.{name} must be an integer, got {value!r}"
                    )
                kwargs[name] = value
        for name in ("backlog_per_worker", "scale_up_cooldown",
                     "scale_down_cooldown", "idle_grace"):
            if name in payload:
                value = payload[name]
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    raise ValidationError(
                        f"autoscale.{name} must be a number, got {value!r}"
                    )
                kwargs[name] = float(value)
        return AutoscalePolicy(**kwargs)


class FairShareLedger:
    """On-disk, decaying per-client runtime charges (the fair-share key).

    Every completed job charges its wall-clock runtime to its client;
    within one priority class the queue serves the client with the
    *lowest* decayed charge-per-weight first (deficit round robin: heavy
    users accumulate charge and yield to light ones, and the exponential
    ``halflife`` decay forgives history so nobody is starved forever).

    One JSON file per client under the spool (atomic temp+rename writes,
    corruption read as zero) — the same no-locks coordination style as
    the queue itself, so every worker process shares one ledger.
    """

    def __init__(
        self,
        root: Union[str, Path],
        weights: Optional[Mapping[str, float]] = None,
        halflife: float = 300.0,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.weights = dict(weights or {})
        self.halflife = max(1e-9, float(halflife))

    def _path(self, client_id: str) -> Path:
        # client ids come off the wire; keep filenames boring
        safe = "".join(
            ch if ch.isalnum() or ch in "._-" else "_" for ch in client_id
        )
        return self.root / f"{safe or 'anonymous'}.json"

    def _decayed(self, charge: float, since: float, now: float) -> float:
        if now <= since:
            return charge
        return charge * 0.5 ** ((now - since) / self.halflife)

    def charge(
        self, client_id: str, runtime: float, now: Optional[float] = None
    ) -> float:
        """Add one completed job's runtime; returns the new raw charge."""
        now = time.time() if now is None else now
        path = self._path(client_id)
        current = self._read(path)
        total = self._decayed(
            float(current.get("charge") or 0.0),
            float(current.get("ts") or now),
            now,
        ) + max(0.0, float(runtime))
        payload = {"client_id": client_id, "charge": total, "ts": now}
        blob = json.dumps(payload, sort_keys=True)
        fd, tmp = tempfile.mkstemp(
            prefix=f".{path.stem}.", suffix=".tmp", dir=str(self.root)
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        return total

    def usage(self, client_id: str, now: Optional[float] = None) -> float:
        """The decayed, weight-normalized charge (the claim sort key)."""
        now = time.time() if now is None else now
        current = self._read(self._path(client_id))
        charge = self._decayed(
            float(current.get("charge") or 0.0),
            float(current.get("ts") or now),
            now,
        )
        weight = float(self.weights.get(client_id, 1.0))
        return charge / max(1e-9, weight)

    @staticmethod
    def _read(path: Path) -> Dict[str, object]:
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return {}
        return payload if isinstance(payload, dict) else {}


@dataclass(frozen=True)
class SchedulerConfig:
    """Everything ``provmark serve --scheduler CONFIG.json`` loads.

    The default-constructed config is deliberately a no-op: no quotas,
    no aging, no autoscaling — existing planes behave exactly as before
    until an operator opts in.
    """

    #: seconds a pending job waits before aging promotes it one class
    #: (None disables aging)
    aging_wait: Optional[float] = None
    default_classes: Mapping[str, str] = field(
        default_factory=lambda: dict(DEFAULT_CLASS_BY_KIND)
    )
    quotas: QuotaTable = QuotaTable()
    fair_share_weights: Mapping[str, float] = field(default_factory=dict)
    fair_share_halflife: float = 300.0
    autoscale: Optional[AutoscalePolicy] = None

    def __post_init__(self) -> None:
        if self.aging_wait is not None and self.aging_wait <= 0:
            raise ValidationError("aging_wait must be > 0 (or null)")
        if self.fair_share_halflife <= 0:
            raise ValidationError("fair_share.halflife must be > 0")
        for kind, name in self.default_classes.items():
            class_rank(name)  # raises on unknown class names
        for client, weight in self.fair_share_weights.items():
            if not isinstance(weight, (int, float)) or weight <= 0:
                raise ValidationError(
                    f"fair_share.weights[{client!r}] must be > 0, "
                    f"got {weight!r}"
                )

    def class_for_kind(self, kind: str) -> str:
        return self.default_classes.get(
            kind, DEFAULT_CLASS_BY_KIND.get(kind, "batch")
        )

    def with_autoscale(self, autoscale: AutoscalePolicy) -> "SchedulerConfig":
        return replace(self, autoscale=autoscale)

    def to_payload(self) -> Dict[str, object]:
        return {
            "aging_wait": self.aging_wait,
            "default_classes": dict(self.default_classes),
            "quotas": self.quotas.to_payload(),
            "fair_share": {
                "halflife": self.fair_share_halflife,
                "weights": dict(self.fair_share_weights),
            },
            "autoscale": (
                self.autoscale.to_payload()
                if self.autoscale is not None else None
            ),
        }

    @staticmethod
    def from_payload(payload: Mapping[str, object]) -> "SchedulerConfig":
        if not isinstance(payload, Mapping):
            raise ValidationError(
                f"scheduler config must be an object, got {payload!r}"
            )
        known = (
            "aging_wait", "default_classes", "quotas", "fair_share",
            "autoscale",
        )
        _check_unknown(payload, known, "scheduler")
        aging = payload.get("aging_wait")
        if aging is not None and (
            isinstance(aging, bool) or not isinstance(aging, (int, float))
        ):
            raise ValidationError(
                f"aging_wait must be a number or null, got {aging!r}"
            )
        classes = payload.get("default_classes") or {}
        if not isinstance(classes, Mapping):
            raise ValidationError(
                f"default_classes must be an object, got {classes!r}"
            )
        fair = payload.get("fair_share") or {}
        if not isinstance(fair, Mapping):
            raise ValidationError(
                f"fair_share must be an object, got {fair!r}"
            )
        _check_unknown(fair, ("halflife", "weights"), "fair_share")
        weights = fair.get("weights") or {}
        if not isinstance(weights, Mapping):
            raise ValidationError(
                f"fair_share.weights must be an object, got {weights!r}"
            )
        autoscale = payload.get("autoscale")
        merged_classes = dict(DEFAULT_CLASS_BY_KIND)
        merged_classes.update(
            {str(k): str(v) for k, v in classes.items()}
        )
        return SchedulerConfig(
            aging_wait=float(aging) if aging is not None else None,
            default_classes=merged_classes,
            quotas=QuotaTable.from_payload(payload.get("quotas") or {}),
            fair_share_weights={
                str(k): float(v) if isinstance(v, (int, float)) else v
                for k, v in weights.items()
            },
            fair_share_halflife=float(fair.get("halflife", 300.0)),
            autoscale=(
                AutoscalePolicy.from_payload(autoscale)
                if autoscale is not None else None
            ),
        )


def load_scheduler_config(path: Union[str, Path]) -> SchedulerConfig:
    """Parse a ``--scheduler`` JSON file (strict: unknown keys reject)."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ValidationError(
            f"cannot read scheduler config {path}: {exc}"
        ) from exc
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ValidationError(
            f"scheduler config {path} is not valid JSON: {exc}"
        ) from exc
    return SchedulerConfig.from_payload(payload)


def zeroed_class_stats() -> Dict[str, Dict[str, object]]:
    """One accumulator row per priority class, all zero.

    Shared by every ``sched_stats()`` implementation so an empty spool
    still reports all classes — dashboards get a stable schema instead
    of keys that appear when traffic does.
    """
    return {
        name: {"pending": 0, "running": 0, "waits": []}
        for name in PRIORITY_CLASSES
    }


def summarize_class_stats(
    per: Mapping[str, Mapping[str, object]],
) -> Dict[str, Dict[str, object]]:
    """Fold accumulator rows into the wire shape, covering every class.

    Classes missing from ``per`` (or with no traffic) come out zeroed,
    in canonical priority order — the satellite guarantee that the
    ``/v1/health`` sched block never omits a class.
    """
    classes: Dict[str, Dict[str, object]] = {}
    for name in PRIORITY_CLASSES:
        row = per.get(name) or {}
        waits = sorted(row.get("waits") or ())
        classes[name] = {
            "pending": int(row.get("pending") or 0),
            "running": int(row.get("running") or 0),
            "waited": len(waits),
            "wait_p50": waits[len(waits) // 2] if waits else 0.0,
            "wait_max": waits[-1] if waits else 0.0,
        }
    return classes
