"""repro — a reproduction of ProvMark (Middleware 2019).

ProvMark is an automated expressiveness benchmarking system for
system-level provenance capture tools.  This package reimplements the
whole stack in Python: the property-graph/Datalog core, the graph-matching
solvers (native and mini-ASP), a simulated Linux-like kernel substrate,
three simulated capture systems (SPADE, OPUS, CamFlow), the four-stage
ProvMark pipeline, the benchmark suite, and the analysis tooling that
regenerates every table and figure of the paper.

Quickstart::

    from repro import ProvMark
    provmark = ProvMark(tool="spade")
    result = provmark.run_benchmark("open")
    print(result.classification, result.target_graph.size)
"""

__version__ = "1.0.0"

from repro.core.pipeline import PipelineConfig, ProvMark  # noqa: E402
from repro.core.result import BenchmarkResult, Classification  # noqa: E402

__all__ = [
    "BenchmarkResult",
    "Classification",
    "PipelineConfig",
    "ProvMark",
    "__version__",
]
