"""repro — a reproduction of ProvMark (Middleware 2019).

ProvMark is an automated expressiveness benchmarking system for
system-level provenance capture tools.  This package reimplements the
whole stack in Python: the property-graph/Datalog core, the graph-matching
solvers (native and mini-ASP), a simulated Linux-like kernel substrate,
three simulated capture systems (SPADE, OPUS, CamFlow), the four-stage
ProvMark pipeline, the benchmark suite, and the analysis tooling that
regenerates every table and figure of the paper.

Quickstart (the supported surface is :mod:`repro.api`)::

    from repro.api import BenchmarkService, RunRequest
    service = BenchmarkService()
    response = service.run(RunRequest(benchmark="open", tool="spade"))
    print(response.result.classification, response.result.target_graph.size)

The legacy ``ProvMark`` driver remains importable as a deprecated
compatibility shim over the service (identical results).
"""

__version__ = "1.2.0"

from repro.core.pipeline import PipelineConfig, ProvMark  # noqa: E402
from repro.core.result import BenchmarkResult, Classification  # noqa: E402
from repro.api import (  # noqa: E402
    API_VERSION,
    BatchRequest,
    BenchmarkService,
    JobStatus,
    RunRequest,
    RunResponse,
    SynthConfig,
    SynthReport,
    ToolQuery,
)

__all__ = [
    "API_VERSION",
    "BatchRequest",
    "BenchmarkResult",
    "BenchmarkService",
    "Classification",
    "JobStatus",
    "PipelineConfig",
    "ProvMark",
    "RunRequest",
    "RunResponse",
    "SynthConfig",
    "SynthReport",
    "ToolQuery",
    "__version__",
]
