"""Tool profiles and ``config.ini`` support (paper appendix A.4).

ProvMark configures each supported tool through a profile in
``config/config.ini``::

    [spg]
    stage1tool = spade
    stage2handler = dot
    filtergraphs = false
    trials = 2

``stage1tool`` selects the recording module, ``stage2handler`` the
transformation handler, and ``filtergraphs`` the incomplete-graph filter
(default false for SPADE and OPUS, true for CamFlow).  The short profile
names match the paper's CLI: ``spg`` (SPADE+Graphviz), ``spn``
(SPADE+Neo4j), ``opu`` (OPUS), ``cam`` (CamFlow).
"""

from __future__ import annotations

import configparser
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from repro.capture import CaptureSystem
from repro.capture.registry import UnknownToolError, get_backend
from repro.capture.spade import SpadeConfig
from repro.core.pipeline import PipelineConfig, ProvMark


class ProfileError(Exception):
    """Raised for unknown profiles or malformed configuration files."""


@dataclass(frozen=True)
class ToolProfile:
    """One profile: which recorder, which transformer, which knobs."""

    name: str
    stage1tool: str
    stage2handler: str
    filtergraphs: bool
    trials: int

    def make_capture(self) -> CaptureSystem:
        try:
            backend = get_backend(self.stage1tool)
        except UnknownToolError as exc:
            raise ProfileError(str(exc)) from None
        if self.stage1tool == "spade":
            # SPADE's storage module is selectable (dot vs. neo4j).
            return backend.make(SpadeConfig(storage=self.stage2handler))
        expected = backend.cls.output_format
        if self.stage2handler != expected:
            raise ProfileError(
                f"{self.stage1tool} only supports the {expected} handler"
            )
        return backend.make()

    def make_provmark(self, seed: Optional[int] = None, engine: str = "native") -> ProvMark:
        # Pass the (picklable) factory rather than a built capture so
        # run_many can rebuild the capture in worker processes.
        return ProvMark._internal(
            capture_factory=self.make_capture,
            config=PipelineConfig(
                tool=self.stage1tool,
                trials=self.trials,
                filtergraphs=self.filtergraphs,
                seed=seed,
                engine=engine,
            ),
        )


#: The paper's four stock profiles.
DEFAULT_PROFILES: Dict[str, ToolProfile] = {
    "spg": ToolProfile("spg", "spade", "dot", filtergraphs=False, trials=2),
    "spn": ToolProfile("spn", "spade", "neo4j", filtergraphs=False, trials=2),
    "opu": ToolProfile("opu", "opus", "neo4j", filtergraphs=False, trials=2),
    "cam": ToolProfile("cam", "camflow", "provjson", filtergraphs=True, trials=5),
}


def default_config_ini() -> str:
    """Render the stock profiles as a config.ini document."""
    parser = configparser.ConfigParser()
    for name, profile in DEFAULT_PROFILES.items():
        parser[name] = {
            "stage1tool": profile.stage1tool,
            "stage2handler": profile.stage2handler,
            "filtergraphs": str(profile.filtergraphs).lower(),
            "trials": str(profile.trials),
        }
    import io
    buffer = io.StringIO()
    parser.write(buffer)
    return buffer.getvalue()


def load_profiles(path: Union[str, Path]) -> Dict[str, ToolProfile]:
    """Parse a config.ini into tool profiles."""
    parser = configparser.ConfigParser()
    read = parser.read(str(path))
    if not read:
        raise ProfileError(f"cannot read config file {path}")
    profiles: Dict[str, ToolProfile] = {}
    for section in parser.sections():
        body = parser[section]
        try:
            profiles[section] = ToolProfile(
                name=section,
                stage1tool=body["stage1tool"],
                stage2handler=body["stage2handler"],
                filtergraphs=body.getboolean("filtergraphs", fallback=False),
                trials=body.getint("trials", fallback=2),
            )
        except (KeyError, ValueError) as exc:
            raise ProfileError(f"profile [{section}]: {exc}") from exc
    return profiles


def get_profile(
    name: str, config_path: Optional[Union[str, Path]] = None
) -> ToolProfile:
    """Look a profile up by name, optionally from a config.ini file."""
    profiles = (
        load_profiles(config_path) if config_path else DEFAULT_PROFILES
    )
    try:
        return profiles[name]
    except KeyError:
        raise ProfileError(
            f"unknown profile {name!r}; available: {sorted(profiles)}"
        ) from None
